//! The multi-session scheduler: N concurrent browsing sessions over one
//! simulated link and one object server (§5).
//!
//! "We envision the overall system architecture for MINOS as being composed
//! of a multimedia object server subsystem and a number of workstations
//! interconnected through high capacity links." The framed transport
//! ([`minos_net::frame`]) lets one server interleave many connections;
//! this module supplies the client half: a [`SessionScheduler`] that
//! multiplexes several [`BrowsingSession`]s over one shared link, driving
//! their clocks together and serving their transfers with round-robin
//! fairness *except* that audio-driven sessions are always served first —
//! a stalled reader re-reads a sentence, a stalled playback is an audible
//! glitch, so audio has the earlier deadline.
//!
//! [`simulate_page_workload`] is the module's measuring stick (experiment
//! E12): the same page-sequential workload run once over the old blocking
//! discipline and once pipelined, at varying session counts.
//!
//! [`simulate_faulty_page_workload`] is its fault-tolerant sibling
//! (experiment E13): one reader over a link that drops, corrupts, and
//! duplicates frames, measuring the goodput the recovery machinery
//! (deadlines, retransmission, duplicate suppression) preserves. Inside the
//! scheduler, [`SessionScheduler::inject_faults`] scopes a [`FaultPlan`] to
//! one session's connection: its lost prefetches degrade to demand fetches
//! with a bounded retry budget, while every other session's event stream
//! stays untouched.
//!
//! [`simulate_overload_workload`] is the robustness sibling (experiment
//! E14): N sessions offer roughly four times their demand load as
//! anticipatory prefetch-class traffic against a server whose admission
//! control ([`ServiceConfig`]) sheds prefetches first. Audio-class pages
//! are never shed and are served ahead of the rotation, so their tail
//! latency tracks the admitted demand backlog instead of collapsing with
//! the offered overload. The client half of the same policy lives in
//! [`HubStore::note_upcoming`]: when the server queue is under admission
//! pressure, anticipation is suspended rather than submitted-and-shed —
//! the hint degrades to a later demand miss, never to wire noise.
//!
//! [`simulate_sched_workload`] is the scale sibling (experiment E15): a
//! fleet of up to 10,000 connected sessions of which only a few hundred
//! are active, driven entirely by the discrete-event [`Kernel`] — work
//! scales with armed deadlines, so the idle sessions cost nothing.

use crate::command::{BrowseCommand, BrowseEvent};
use crate::kernel::{Kernel, KernelEvent, KernelStats};
use crate::prefetch::page_spans;
use crate::remote::{Connection, Ticket, TransportStats};
use crate::session::{BrowsingSession, ObjectStore};
use minos_net::{
    BufferPool, FaultPlan, FaultRng, FaultStats, Frame, FramePayload, Link, LinkStats, Priority,
    ServerRequest, ServerResponse,
};
use minos_object::MultimediaObject;
use minos_server::{ObjectServer, ServiceConfig, ServiceStats};
use minos_text::PaginateConfig;
use minos_types::{ByteSpan, MinosError, ObjectId, Result, SimClock, SimDuration, SimInstant};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// Fault state for one connection whose frames misbehave on the shared
/// link: the plan, its deterministic stream, and what it did so far.
struct ConnFaults {
    plan: FaultPlan,
    rng: FaultRng,
    stats: FaultStats,
}

/// The shared server side of a scheduled workstation group: one server,
/// one link, one clock, and the three serially-reusable resources
/// (uplink, device, downlink) as "free at" instants.
struct Hub {
    server: ObjectServer,
    link: Link,
    clock: SimClock,
    up_free: SimInstant,
    dev_free: SimInstant,
    down_free: SimInstant,
    /// When each submitted request frame finishes arriving at the server.
    arrivals: HashMap<(u64, u64), SimInstant>,
    /// Served responses per connection, each with its delivery instant.
    landed: HashMap<u64, Vec<(u64, ServerResponse, SimInstant)>>,
    /// Per-connection fault injection; connections not listed are clean.
    faults: HashMap<u64, ConnFaults>,
    /// The discrete-event kernel: audio deadlines and completion wakes
    /// flow through it in event-driven mode, so only sessions with a
    /// fired deadline or a landed response are ever visited.
    kernel: Kernel,
    next_request_id: u64,
    next_conn: u64,
}

impl Hub {
    fn new(server: ObjectServer, link: Link) -> Self {
        Hub {
            server,
            link,
            clock: SimClock::new(),
            up_free: SimInstant::EPOCH,
            dev_free: SimInstant::EPOCH,
            down_free: SimInstant::EPOCH,
            arrivals: HashMap::new(),
            landed: HashMap::new(),
            faults: HashMap::new(),
            kernel: Kernel::new(),
            next_request_id: 1,
            next_conn: 1,
        }
    }

    /// Attaches a fault plan to `conn`'s frames (a clean plan detaches).
    fn set_fault_plan(&mut self, conn: u64, plan: FaultPlan) {
        if plan.is_clean() {
            self.faults.remove(&conn);
        } else {
            let rng = FaultRng::new(plan.seed);
            self.faults.insert(conn, ConnFaults { plan, rng, stats: FaultStats::default() });
        }
    }

    /// Whether the server's inbound queue is under admission pressure:
    /// with half the global headroom already spoken for, anticipatory
    /// traffic should pause and leave the rest to demand fetches.
    fn under_pressure(&self) -> bool {
        let cap = self.server.service_config().global_cap;
        cap != usize::MAX && 2 * self.server.pending_frames() >= cap
    }

    /// Puts one request frame of the given service class on the shared
    /// uplink and queues it at the server, returning its request id. On a
    /// faulty connection the frame's bytes cross the fault layer first:
    /// wire time is charged for the original transmission, but only copies
    /// that still decode reach the server's queue — a lost request simply
    /// never produces a response.
    fn send(&mut self, conn: u64, priority: Priority, request: ServerRequest) -> Result<u64> {
        let rid = self.next_request_id;
        self.next_request_id += 1;
        let frame = Frame::request_with_priority(conn, rid, priority, request);
        let up = self.link.transfer(frame.wire_size());
        let arrival = self.clock.now().max(self.up_free) + up;
        self.up_free = arrival;
        self.arrivals.insert((conn, rid), arrival);
        if let Some(f) = self.faults.get_mut(&conn) {
            let bytes = frame.encode();
            for delivery in f.plan.apply(&mut f.rng, &bytes, &mut f.stats) {
                if let Ok(delivered) = Frame::decode(&delivery.bytes) {
                    if delivered.as_request().is_some() {
                        self.server.enqueue(delivered)?;
                    }
                }
            }
        } else {
            self.server.enqueue(frame)?;
        }
        Ok(rid)
    }

    /// Serves everything queued at the server, connections in `order`
    /// first (the scheduler's fairness policy), then whatever remains in
    /// the server's own round-robin rotation.
    fn pump(&mut self, order: &[u64]) {
        for &conn in order {
            while let Some((frame, charge)) = self.server.poll_conn(conn) {
                self.deliver(frame, charge);
            }
        }
        while let Some((frame, charge)) = self.server.poll_timed() {
            self.deliver(frame, charge);
        }
    }

    /// [`Hub::pump`] for the event-driven path: serves exactly the woken
    /// connections in `order` (same per-connection discipline, so the
    /// response stream is byte-identical to pumping all N), counting
    /// wakes that found their work already collected, then drains
    /// whatever remains in the server's own rotation.
    fn pump_woken(&mut self, order: &[u64]) {
        for &conn in order {
            let mut served = false;
            while let Some((frame, charge)) = self.server.poll_conn(conn) {
                served = true;
                self.deliver(frame, charge);
            }
            if !served {
                self.kernel.note_spurious();
            }
        }
        while let Some((frame, charge)) = self.server.poll_timed() {
            self.deliver(frame, charge);
        }
    }

    /// Charges device and downlink time for one served response frame and
    /// lands it for its connection. A faulty connection's response crosses
    /// its fault layer on the way down: corrupt copies are discarded,
    /// duplicates land twice (the store's pending map suppresses the second
    /// copy), and losses leave the requester to retry.
    fn deliver(&mut self, frame: Frame, charge: SimDuration) {
        let key = (frame.conn_id, frame.request_id);
        let arrival = self.arrivals.remove(&key).unwrap_or(self.up_free);
        let done = arrival.max(self.dev_free) + charge;
        self.dev_free = done;
        let down = self.link.transfer(frame.wire_size());
        let delivered = done.max(self.down_free) + down;
        self.down_free = delivered;
        if let Some(f) = self.faults.get_mut(&frame.conn_id) {
            let conn = frame.conn_id;
            let bytes = frame.encode();
            for delivery in f.plan.apply(&mut f.rng, &bytes, &mut f.stats) {
                let Ok(received) = Frame::decode(&delivery.bytes) else {
                    continue;
                };
                let FramePayload::Response(response) = received.payload else {
                    continue;
                };
                self.landed.entry(conn).or_default().push((
                    received.request_id,
                    response,
                    delivered + delivery.delay,
                ));
            }
            return;
        }
        let FramePayload::Response(response) = frame.payload else {
            return;
        };
        self.landed.entry(frame.conn_id).or_default().push((frame.request_id, response, delivered));
    }
}

/// An [`ObjectStore`] backed by a scheduler [`Hub`]: demand fetches pump
/// the shared service loop immediately; `note_upcoming` hints become
/// request frames whose transfers land during subsequent scheduler ticks,
/// hidden behind every session's dwell.
pub struct HubStore {
    hub: Rc<RefCell<Hub>>,
    conn_id: u64,
    /// Service class of this session's demand fetches (audio-driven
    /// sessions upgrade to [`Priority::Audio`]; prefetch hints always go
    /// out as [`Priority::Prefetch`]).
    demand_class: Priority,
    /// Objects whose transfer has completed, with their delivery instant.
    cache: HashMap<ObjectId, (MultimediaObject, SimInstant)>,
    /// Outstanding object requests by request id.
    pending: HashMap<u64, ObjectId>,
    waited: SimDuration,
}

impl HubStore {
    fn new(hub: Rc<RefCell<Hub>>, conn_id: u64) -> Self {
        HubStore {
            hub,
            conn_id,
            demand_class: Priority::Demand,
            cache: HashMap::new(),
            pending: HashMap::new(),
            waited: SimDuration::ZERO,
        }
    }

    /// The connection id this store submits on.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Service class this store's demand fetches are tagged with.
    pub fn demand_class(&self) -> Priority {
        self.demand_class
    }

    /// Tags future demand fetches with `class` — the scheduler marks
    /// audio-driven sessions [`Priority::Audio`] so the server's shed
    /// policy can never reject their transfers.
    pub fn set_demand_class(&mut self, class: Priority) {
        self.demand_class = class;
    }

    /// Total time this session's user spent waiting on transfers.
    pub fn waited(&self) -> SimDuration {
        self.waited
    }

    /// Moves landed responses for this connection into the object cache.
    fn collect(&mut self) {
        let mut hub = self.hub.borrow_mut();
        let Some(landed) = hub.landed.remove(&self.conn_id) else {
            return;
        };
        for (rid, response, delivered) in landed {
            let Some(id) = self.pending.remove(&rid) else {
                continue;
            };
            if !matches!(response, ServerResponse::Object(_)) {
                continue;
            }
            if let Some(object) = hub.server.resident_object(id).cloned() {
                self.cache.insert(id, (object, delivered));
            }
        }
    }
}

/// Demand-fetch attempts before a [`HubStore`] gives up on an object: the
/// initial submission plus retransmissions of requests whose frames (or
/// response frames) were lost on a faulty connection.
const FETCH_ATTEMPTS: usize = 4;

impl ObjectStore for HubStore {
    fn fetch(&mut self, id: ObjectId) -> Result<MultimediaObject> {
        self.collect();
        let mut attempts = 0;
        while !self.cache.contains_key(&id) && attempts < FETCH_ATTEMPTS {
            if attempts > 0 {
                // The previous attempt's frames are lost on the wire. Its
                // pending entries are stale — left in place they would
                // suppress resubmission forever (a prefetch whose response
                // was dropped has the same signature), so drop them before
                // submitting afresh.
                self.pending.retain(|_, p| *p != id);
            }
            // Demand fetch: submit (unless a prefetch is already in
            // flight) and serve this connection's queue now.
            if !self.pending.values().any(|&p| p == id) {
                let rid = self.hub.borrow_mut().send(
                    self.conn_id,
                    self.demand_class,
                    ServerRequest::FetchObject { id },
                )?;
                self.pending.insert(rid, id);
            }
            self.hub.borrow_mut().pump(&[self.conn_id]);
            self.collect();
            attempts += 1;
        }
        let Some((object, available)) = self.cache.remove(&id) else {
            return Err(MinosError::UnknownObject(id.to_string()));
        };
        let mut hub = self.hub.borrow_mut();
        let wait = available.saturating_since(hub.clock.now());
        hub.clock.advance_to_at_least(available);
        self.waited += wait;
        Ok(object)
    }

    fn note_upcoming(&mut self, targets: &[ObjectId]) {
        self.collect();
        for &id in targets {
            if self.cache.contains_key(&id) || self.pending.values().any(|&p| p == id) {
                continue;
            }
            // Deadline-aware shedding, client half: with the server's
            // queue under admission pressure, anticipation is suspended
            // rather than submitted-and-shed. The hint degrades to a
            // later demand miss (the fault-recovery path), never to wire
            // noise the server must reject.
            if self.hub.borrow().under_pressure() {
                return;
            }
            // Anticipation must never fail the operation that triggered
            // it; a rejected prefetch frame is simply no prefetch.
            if let Ok(rid) = self.hub.borrow_mut().send(
                self.conn_id,
                Priority::Prefetch,
                ServerRequest::FetchObject { id },
            ) {
                self.pending.insert(rid, id);
            }
        }
    }
}

/// A handle to one session slot in a [`SessionScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionKey(usize);

struct Slot {
    conn_id: u64,
    session: BrowsingSession<HubStore>,
    events: Vec<BrowseEvent>,
}

/// Which service loop a [`SessionScheduler`] runs per tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SchedMode {
    /// Wake-list driven: the kernel fires audio deadlines and completion
    /// wakes, and only woken sessions/connections are visited.
    EventKernel,
    /// The original full rotation scan, kept as the reference
    /// implementation the equivalence tests pin the kernel path against.
    LegacyRotation,
}

/// N concurrent browsing sessions multiplexed over one simulated link and
/// one object server.
///
/// Each [`SessionScheduler::tick`] advances session presentations by the
/// same wall-clock slice and then serves the shared service loop.
/// Service order is round-robin with a rotating head — no session can
/// starve — except that audio-driven sessions always go first: their
/// transfers have real-time deadlines, a text reader's do not.
///
/// By default the tick is event-driven: the [`Kernel`] wakes exactly the
/// audio-paced sessions and the connections the server completed work
/// for, in the same deadline-aware order the full rotation would have
/// produced, so an idle text session costs nothing per tick. The
/// pre-kernel full scan survives behind [`SessionScheduler::legacy`] and
/// is pinned byte-identical by the golden-stream equivalence tests.
pub struct SessionScheduler {
    hub: Rc<RefCell<Hub>>,
    slots: Vec<Slot>,
    cursor: usize,
    mode: SchedMode,
    /// Slot indices of audio-driven sessions — the kernel arms their
    /// playback deadlines; everyone else sleeps until a response lands.
    audio_set: BTreeSet<usize>,
    /// Connection id → slot index, for ordering completion wakes.
    conn_slots: HashMap<u64, usize>,
}

impl SessionScheduler {
    /// A scheduler over `server` reached through `link`.
    pub fn new(server: ObjectServer, link: Link) -> Self {
        Self::with_mode(server, link, SchedMode::EventKernel)
    }

    /// A scheduler running the pre-kernel full rotation scan every tick.
    /// Retained as the reference implementation for equivalence pinning;
    /// prefer [`SessionScheduler::new`].
    pub fn legacy(server: ObjectServer, link: Link) -> Self {
        Self::with_mode(server, link, SchedMode::LegacyRotation)
    }

    fn with_mode(server: ObjectServer, link: Link, mode: SchedMode) -> Self {
        SessionScheduler {
            hub: Rc::new(RefCell::new(Hub::new(server, link))),
            slots: Vec::new(),
            cursor: 0,
            mode,
            audio_set: BTreeSet::new(),
            conn_slots: HashMap::new(),
        }
    }

    /// Opens a new browsing session on `id` over its own connection,
    /// returning its key and the initial presentation events.
    pub fn open(
        &mut self,
        id: ObjectId,
        config: PaginateConfig,
        audio_page_len: SimDuration,
    ) -> Result<(SessionKey, Vec<BrowseEvent>)> {
        let conn_id = {
            let mut hub = self.hub.borrow_mut();
            let conn = hub.next_conn;
            hub.next_conn += 1;
            conn
        };
        let store = HubStore::new(Rc::clone(&self.hub), conn_id);
        let (mut session, events) = BrowsingSession::open(store, id, config, audio_page_len)?;
        if session.audio().is_some() {
            // A voice-driven session's transfers have playback deadlines:
            // tag its demand fetches audio-class so the server's shed
            // policy can never reject them.
            session.store_mut().set_demand_class(Priority::Audio);
        }
        self.slots.push(Slot { conn_id, session, events: Vec::new() });
        let index = self.slots.len() - 1;
        if self.slots[index].session.audio().is_some() {
            self.audio_set.insert(index);
        }
        self.conn_slots.insert(conn_id, index);
        Ok((SessionKey(index), events))
    }

    /// Replaces the shared server's admission-control knobs (queue caps
    /// and the busy retry hint) for every session.
    pub fn set_service_config(&mut self, config: ServiceConfig) {
        self.hub.borrow_mut().server.set_service_config(config);
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Applies one browsing command to the session behind `key`, returning
    /// the events it produced (exactly what a standalone session would).
    pub fn apply(&mut self, key: SessionKey, command: BrowseCommand) -> Result<Vec<BrowseEvent>> {
        let slot = self.slot_mut(key)?;
        let events = slot.session.apply(command);
        // Commands can switch the driving mode; keep the kernel's audio
        // wake membership current.
        let is_audio = slot.session.audio().is_some();
        self.set_audio_membership(key.0, is_audio);
        events
    }

    fn set_audio_membership(&mut self, index: usize, is_audio: bool) {
        if is_audio {
            self.audio_set.insert(index);
        } else {
            self.audio_set.remove(&index);
        }
    }

    /// The session behind `key` (menus, positions, objects).
    pub fn session(&self, key: SessionKey) -> Result<&BrowsingSession<HubStore>> {
        self.slots
            .get(key.0)
            .map(|s| &s.session)
            .ok_or_else(|| MinosError::Internal(format!("no session slot {}", key.0)))
    }

    /// The deadline-aware service order for the next tick: a rotating
    /// round-robin of all sessions, stably re-sorted so audio-driven
    /// sessions come first.
    pub fn service_order(&self) -> Vec<SessionKey> {
        let n = self.slots.len();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..n).map(|i| (self.cursor + i) % n).collect();
        order.sort_by_key(|&i| self.slots[i].session.audio().is_none());
        order.into_iter().map(SessionKey).collect()
    }

    /// Advances every session's presentation by `dt` and serves the shared
    /// service loop in deadline-aware order. Events produced by the tick
    /// accumulate per session; drain them with
    /// [`SessionScheduler::drain_events`].
    pub fn tick(&mut self, dt: SimDuration) {
        match self.mode {
            SchedMode::EventKernel => self.tick_kernel(dt),
            SchedMode::LegacyRotation => self.tick_legacy(dt),
        }
    }

    /// The reference full scan: ticks every session and pumps every
    /// connection, woken or not.
    fn tick_legacy(&mut self, dt: SimDuration) {
        let order = self.service_order();
        for &SessionKey(i) in &order {
            if let Some(slot) = self.slots.get_mut(i) {
                let events = slot.session.tick(dt);
                slot.events.extend(events);
            }
        }
        let conns: Vec<u64> = order
            .iter()
            .filter_map(|&SessionKey(i)| self.slots.get(i).map(|s| s.conn_id))
            .collect();
        let mut hub = self.hub.borrow_mut();
        hub.pump(&conns);
        // The legacy scan never consults the wake list; drain it so marks
        // cannot pile up across a mode's lifetime.
        let _ = hub.server.take_woken();
        hub.clock.advance(dt);
        drop(hub);
        self.cursor = (self.cursor + 1) % self.slots.len().max(1);
    }

    /// The event-driven tick. A visual session's per-tick advance is a
    /// pure no-op and an idle connection's pump visit finds nothing, so
    /// this path visits only sessions with an armed audio deadline and
    /// connections with a completion wake — byte-identical to the full
    /// scan because it preserves the scan's deadline-aware relative
    /// order for exactly the members the scan would have done work for.
    fn tick_kernel(&mut self, dt: SimDuration) {
        let n = self.slots.len();
        if n == 0 {
            let mut hub = self.hub.borrow_mut();
            hub.pump(&[]);
            hub.clock.advance(dt);
            return;
        }
        let cursor = self.cursor;
        // Audio-first ordering must see the same mode snapshot the legacy
        // scan's single pre-tick service_order() saw.
        let audio_before = self.audio_set.clone();
        // Fire this tick's audio playback deadlines through the kernel.
        let mut audio_wake: Vec<usize> = Vec::new();
        {
            let mut hub = self.hub.borrow_mut();
            let now = hub.clock.now();
            for &i in &self.audio_set {
                hub.kernel.post(now, KernelEvent::AudioDeadline { session: i as u64 });
            }
            hub.kernel.advance_to(now);
            while let Some(event) = hub.kernel.take_ready() {
                match event {
                    KernelEvent::AudioDeadline { session } => audio_wake.push(session as usize),
                    _ => hub.kernel.note_spurious(),
                }
            }
        }
        // Advance woken audio sessions in the rotation order the full
        // scan would have reached them in.
        audio_wake.sort_by_key(|&i| (n + i - cursor) % n);
        for &i in &audio_wake {
            if let Some(slot) = self.slots.get_mut(i) {
                let events = slot.session.tick(dt);
                slot.events.extend(events);
                let is_audio = slot.session.audio().is_some();
                self.set_audio_membership(i, is_audio);
            }
        }
        // Completion wakes: every connection the server enqueued or
        // finished work for since the last drain, routed through the
        // kernel so the trace and counters see them.
        let mut conn_wake: Vec<u64> = Vec::new();
        {
            let mut hub = self.hub.borrow_mut();
            let now = hub.clock.now();
            // request_id 0 marks a connection-level wake: it covers every
            // response in the connection's ready batch.
            let woken = hub.server.take_woken();
            for conn in woken {
                hub.kernel.post(now, KernelEvent::ResponseLanded { conn, request_id: 0 });
            }
            hub.kernel.advance_to(now);
            while let Some(event) = hub.kernel.take_ready() {
                match event {
                    KernelEvent::ResponseLanded { conn, .. } => conn_wake.push(conn),
                    _ => hub.kernel.note_spurious(),
                }
            }
        }
        // Deadline-aware order over the woken subset: audio-driven
        // connections first, rotation position breaking ties — the same
        // total order the full scan serves.
        conn_wake.sort_by_key(|conn| match self.conn_slots.get(conn).copied() {
            Some(i) => (!audio_before.contains(&i), (n + i - cursor) % n),
            None => (true, usize::MAX),
        });
        {
            let mut hub = self.hub.borrow_mut();
            hub.pump_woken(&conn_wake);
            // Marks recorded during the pump refer to responses the pump
            // itself delivered; drop them so they don't wake next tick.
            let _ = hub.server.take_woken();
            hub.clock.advance(dt);
        }
        self.cursor = (self.cursor + 1) % n;
    }

    /// The event kernel's counters: events fired, timers armed, spurious
    /// wakes, and the ready queue's high-water mark. Zeros under
    /// [`SessionScheduler::legacy`].
    pub fn kernel_stats(&self) -> KernelStats {
        self.hub.borrow().kernel.stats()
    }

    /// Drains the kernel's trace ring as a JSON array (see
    /// [`Kernel::drain_trace_json`]).
    pub fn drain_kernel_trace(&mut self) -> String {
        self.hub.borrow_mut().kernel.drain_trace_json()
    }

    /// Takes the events `key`'s session produced during ticks since the
    /// last drain.
    pub fn drain_events(&mut self, key: SessionKey) -> Result<Vec<BrowseEvent>> {
        Ok(std::mem::take(&mut self.slot_mut(key)?.events))
    }

    /// Total simulated time across the whole scheduled group.
    pub fn elapsed(&self) -> SimDuration {
        self.hub.borrow().clock.now().since(SimInstant::EPOCH)
    }

    /// Shared-link transfer statistics.
    pub fn link_stats(&self) -> LinkStats {
        self.hub.borrow().link.stats()
    }

    /// Makes `key`'s connection misbehave according to `plan` from now on
    /// (a clean plan heals the connection). Every other session's frames
    /// stay untouched: faults are scoped to one connection's traffic, never
    /// to the shared link itself.
    pub fn inject_faults(&mut self, key: SessionKey, plan: FaultPlan) -> Result<()> {
        let conn_id = self
            .slots
            .get(key.0)
            .map(|s| s.conn_id)
            .ok_or_else(|| MinosError::Internal(format!("no session slot {}", key.0)))?;
        self.hub.borrow_mut().set_fault_plan(conn_id, plan);
        Ok(())
    }

    /// What the fault layer did to `key`'s connection so far (zeros for a
    /// connection that was never injected).
    pub fn fault_stats(&self, key: SessionKey) -> Result<FaultStats> {
        let conn_id = self
            .slots
            .get(key.0)
            .map(|s| s.conn_id)
            .ok_or_else(|| MinosError::Internal(format!("no session slot {}", key.0)))?;
        Ok(self.hub.borrow().faults.get(&conn_id).map(|f| f.stats).unwrap_or_default())
    }

    /// The shared server's service-loop accounting.
    pub fn service_stats(&self) -> ServiceStats {
        self.hub.borrow().server.service_stats().clone()
    }

    fn slot_mut(&mut self, key: SessionKey) -> Result<&mut Slot> {
        self.slots
            .get_mut(key.0)
            .ok_or_else(|| MinosError::Internal(format!("no session slot {}", key.0)))
    }
}

/// How [`simulate_page_workload`] moves pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportMode {
    /// The old discipline: one request at a time, each paying a full
    /// uplink + device + downlink round trip before the next starts.
    Blocking,
    /// Framed pipelining: up to `window` request frames in flight per
    /// session, the server interleaving and coalescing across sessions.
    Pipelined {
        /// In-flight request frames per session.
        window: usize,
    },
}

/// What one [`simulate_page_workload`] run measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Wall-clock time until the last page was delivered.
    pub elapsed: SimDuration,
    /// Pages delivered (sessions × pages per session).
    pub pages: u64,
    /// Bytes moved over the shared link.
    pub bytes: u64,
    /// Fresh payload-buffer allocations on the serving hot path. The
    /// workload recycles every consumed page, so after warmup each page is
    /// served from a pooled buffer.
    pub payload_allocs: u64,
}

impl WorkloadReport {
    /// Aggregate throughput in pages per simulated second.
    pub fn pages_per_sec(&self) -> f64 {
        let micros = self.elapsed.as_micros();
        if micros == 0 {
            return 0.0;
        }
        self.pages as f64 * 1_000_000.0 / micros as f64
    }

    /// Fresh allocations per delivered page — the zero-copy pin. A
    /// warmed-up pipeline re-serves pooled buffers, so this stays (well)
    /// under one.
    pub fn allocations_per_page(&self) -> f64 {
        if self.pages == 0 {
            return 0.0;
        }
        self.payload_allocs as f64 / self.pages as f64
    }
}

/// What one [`simulate_faulty_page_workload`] run measured — the E13
/// goodput report: pages that arrived byte-identical, pages lost to
/// exhausted retries, and what the recovery machinery did to get there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultyWorkloadReport {
    /// Wall-clock time until the last response (or expiry) was collected.
    pub elapsed: SimDuration,
    /// Pages delivered byte-identical to the stored pattern.
    pub pages: u64,
    /// Pages whose request exhausted its retry budget.
    pub failed: u64,
    /// Bytes moved over the link, retransmissions included.
    pub bytes: u64,
    /// What the recovery machinery had to do.
    pub transport: TransportStats,
    /// What the fault layer actually did to the frames.
    pub faults: FaultStats,
}

impl FaultyWorkloadReport {
    /// Goodput in verified pages per simulated second.
    pub fn pages_per_sec(&self) -> f64 {
        let micros = self.elapsed.as_micros();
        if micros == 0 {
            return 0.0;
        }
        self.pages as f64 * 1_000_000.0 / micros as f64
    }
}

/// Runs the E13 workload: one page reader fetching `pages` pages of
/// `page_len` bytes through a [`Connection`] whose link misbehaves
/// according to `plan`, with `window` requests in flight (window 1 is the
/// old blocking discipline). Every delivered page is verified
/// byte-for-byte against the stored pattern — a page is either perfect or
/// counted failed, never partial.
///
/// Pages are submitted in a strided order (even indices, then odd), so no
/// two adjacent spans ever sit next to each other in the pipeline: the
/// clean baseline cannot coalesce runs that a faulty link must serve
/// frame-by-frame, and the comparison therefore measures recovery cost
/// alone.
pub fn simulate_faulty_page_workload(
    pages: usize,
    page_len: u64,
    window: usize,
    plan: FaultPlan,
) -> Result<FaultyWorkloadReport> {
    if pages == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs pages and bytes".into()));
    }
    let mut server = ObjectServer::new();
    let data: Vec<u8> = (0..pages as u64 * page_len).map(|i| (i % 251) as u8).collect();
    let (record, _) = server.archiver_mut().store(ObjectId::new(1), &data)?;
    let base = record.span.start;
    let spans = page_spans(record.span, pages);
    let order: Vec<usize> = (0..pages).step_by(2).chain((1..pages).step_by(2)).collect();
    let mut conn = Connection::with_faults(server, Link::ethernet(), window.max(1), plan);
    let mut tickets: Vec<(Ticket, usize)> = Vec::with_capacity(pages);
    for &page in &order {
        tickets.push((conn.submit(ServerRequest::FetchSpan { span: spans[page] }), page));
    }
    let mut delivered = 0u64;
    let mut failed = 0u64;
    for (ticket, page) in tickets {
        let span = spans[page];
        let (response, _) = conn.wait(ticket)?;
        match response {
            ServerResponse::Span(bytes) => {
                let expect: Vec<u8> =
                    (span.start - base..span.end - base).map(|i| (i % 251) as u8).collect();
                if bytes != expect {
                    return Err(MinosError::Internal(format!("wrong bytes for {span}")));
                }
                delivered += 1;
            }
            ServerResponse::Error(_) => failed += 1,
            other => {
                return Err(MinosError::Internal(format!("unexpected response {other:?}")));
            }
        }
    }
    Ok(FaultyWorkloadReport {
        elapsed: conn.elapsed(),
        pages: delivered,
        failed,
        bytes: conn.bytes_transferred(),
        transport: conn.transport_stats(),
        faults: conn.fault_stats(),
    })
}

/// Demand-page window each overload session keeps in flight.
const OVERLOAD_WINDOW: usize = 2;

/// Speculative prefetch-class fetches issued per demand page by the
/// overload workload — one demand page plus three anticipatory fetches is
/// the paper-scale "4x offered load".
const OVERLOAD_PREFETCH_FACTOR: usize = 3;

/// What one [`simulate_overload_workload`] run measured — the E14 report:
/// demand goodput, audio-class tail latency, and what the admission
/// control shed to keep them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadReport {
    /// Wall-clock time until the last demand page was delivered.
    pub elapsed: SimDuration,
    /// Demand pages delivered byte-identical (audio pages included).
    pub pages: u64,
    /// Audio-class pages delivered (session 0's stream).
    pub audio_pages: u64,
    /// 99th-percentile audio-page service latency (submit to delivery) —
    /// the playback-stall proxy: latency beyond the page period is time
    /// the listener hears silence.
    pub audio_p99: SimDuration,
    /// Worst audio-page service latency.
    pub audio_worst: SimDuration,
    /// Request frames offered, speculative prefetches included.
    pub offered: u64,
    /// Speculative prefetch pages the server actually served.
    pub prefetch_served: u64,
    /// Prefetch-class frames the admission control shed.
    pub shed: u64,
    /// Demand/audio frames rejected outright (no sheddable victim).
    pub busy_rejections: u64,
    /// Most request frames queued at once across all connections.
    pub queue_high_water: u64,
    /// Bytes moved over the shared link.
    pub bytes: u64,
    /// Fresh payload-buffer allocations on the serving hot path
    /// (speculative pages included — their buffers recycle too).
    pub payload_allocs: u64,
    /// Demand/audio pages resubmitted after a [`ServerResponse::Busy`]
    /// turn-away — each waited out the server's `retry_after` hint on a
    /// kernel timer before going back on the wire.
    pub busy_retries: u64,
    /// Busy resubmissions that left the client before their `retry_after`
    /// hint elapsed. Always zero: the retry timer gates the uplink, and
    /// the E14 pin asserts it stays that way.
    pub premature_retries: u64,
}

impl OverloadReport {
    /// Demand goodput in verified pages per simulated second.
    pub fn goodput_pages_per_sec(&self) -> f64 {
        let micros = self.elapsed.as_micros();
        if micros == 0 {
            return 0.0;
        }
        self.pages as f64 * 1_000_000.0 / micros as f64
    }

    /// Fresh allocations per delivered demand page — the zero-copy pin
    /// under overload. Recycled buffers absorb the 4x offered load, so
    /// steady state stays (well) under one.
    pub fn allocations_per_page(&self) -> f64 {
        if self.pages == 0 {
            return 0.0;
        }
        self.payload_allocs as f64 / self.pages as f64
    }
}

/// Runs the E14 workload: `sessions` concurrent readers, each keeping
/// [`OVERLOAD_WINDOW`] demand pages in flight and fanning every demand
/// page out into [`OVERLOAD_PREFETCH_FACTOR`] speculative prefetch-class
/// fetches — a 4x offered load against a server admitting under `config`
/// (pass [`ServiceConfig::unbounded`] for the no-shedding baseline).
///
/// Session 0 is the audio-driven reader: its demand pages are
/// [`Priority::Audio`] (never sheddable) and its connection is served
/// ahead of the rotation, mirroring the scheduler's deadline policy. Its
/// per-page service latency distribution is the experiment's stall curve.
/// Prefetch spans are stride-scattered so the service loop cannot coalesce
/// them away — the overload is real device work, not adjacent-run sugar.
///
/// Every demand page is verified byte-for-byte; a demand page the server
/// turns away with [`ServerResponse::Busy`] is parked on a kernel
/// `RetryDue` timer armed at delivery time plus the reply's `retry_after`
/// hint, and resubmitted only once that timer fires — the client honors
/// the server's own backlog estimate instead of hammering an overloaded
/// admission gate on the very next round. A run either completes or
/// reports the failure typed.
pub fn simulate_overload_workload(
    sessions: usize,
    pages_per_session: usize,
    page_len: u64,
    config: ServiceConfig,
) -> Result<OverloadReport> {
    if sessions == 0 || pages_per_session == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs sessions, pages, and bytes".into()));
    }
    let mut server = ObjectServer::new();
    server.set_service_config(config);
    // Stock the payload pool up front so cold-start leases hit the free
    // list: payload_allocs then measures steady state, not warmup.
    server.prewarm_payloads(BufferPool::DEFAULT_RETAIN_CAP, page_len as usize);
    let mut plans: Vec<(u64, Vec<ByteSpan>)> = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let data: Vec<u8> =
            (0..pages_per_session as u64 * page_len).map(|i| (i % 251) as u8).collect();
        let (record, _) = server.archiver_mut().store(ObjectId::new(s as u64 + 1), &data)?;
        plans.push((record.span.start, page_spans(record.span, pages_per_session)));
    }
    let mut link = Link::ethernet();
    let verify = |base: u64, span: ByteSpan, bytes: &[u8]| -> Result<()> {
        let expect: Vec<u8> =
            (span.start - base..span.end - base).map(|i| (i % 251) as u8).collect();
        if bytes != expect {
            return Err(MinosError::Internal(format!("wrong bytes for {span}")));
        }
        Ok(())
    };

    struct InFlightPage {
        span: ByteSpan,
        page: usize,
        submitted: SimInstant,
        prefetch: bool,
    }
    let mut up_free = SimInstant::EPOCH;
    let mut dev_free = SimInstant::EPOCH;
    let mut down_free = SimInstant::EPOCH;
    let mut arrivals: HashMap<(u64, u64), SimInstant> = HashMap::new();
    let mut inflight: HashMap<(u64, u64), InFlightPage> = HashMap::new();
    let mut todo: Vec<VecDeque<usize>> =
        (0..sessions).map(|_| (0..pages_per_session).collect()).collect();
    let mut outstanding = vec![0usize; sessions];
    let mut batch: Vec<(usize, usize, bool)> = Vec::new();
    let mut next_rid = 1u64;
    let mut last_delivered = SimInstant::EPOCH;
    let mut delivered = 0u64;
    let mut audio_pages = 0u64;
    let mut audio_lat: Vec<SimDuration> = Vec::new();
    let mut offered = 0u64;
    let mut prefetch_served = 0u64;
    let mut busy_retries = 0u64;
    let mut premature_retries = 0u64;
    // Demand pages turned away with `Busy` park here (keyed by the
    // rejected request id) until their kernel `RetryDue` timer fires;
    // their window slot stays held so the session does not overdrive the
    // server while it waits.
    let mut kernel = Kernel::new();
    let mut deferred: HashMap<u64, (usize, usize, SimInstant)> = HashMap::new();
    let mut retry_batch: Vec<(usize, usize, SimInstant)> = Vec::new();
    let drain_due_retries =
        |kernel: &mut Kernel,
         deferred: &mut HashMap<u64, (usize, usize, SimInstant)>,
         retry_batch: &mut Vec<(usize, usize, SimInstant)>| {
            while let Some(event) = kernel.take_ready() {
                if let KernelEvent::RetryDue { request_id, .. } = event {
                    if let Some(entry) = deferred.remove(&request_id) {
                        retry_batch.push(entry);
                    }
                }
            }
        };
    let mut rounds = 0u32;
    while todo.iter().any(|q| !q.is_empty()) || outstanding.iter().any(|&o| o > 0) {
        rounds += 1;
        if rounds > 100_000 {
            return Err(MinosError::Internal("overload workload failed to converge".into()));
        }
        kernel.advance_to(up_free.max(down_free));
        drain_due_retries(&mut kernel, &mut deferred, &mut retry_batch);
        for s in 0..sessions {
            while outstanding[s] < OVERLOAD_WINDOW {
                let Some(page) = todo[s].pop_front() else {
                    break;
                };
                outstanding[s] += 1;
                batch.push((s, page, false));
                for j in 1..=OVERLOAD_PREFETCH_FACTOR {
                    // Stride-scattered speculation: never adjacent to the
                    // demand span, so runs cannot coalesce it into a
                    // single cheap device pass.
                    batch.push((s, (page + j * 7) % pages_per_session, true));
                }
            }
        }
        if batch.is_empty() && retry_batch.is_empty() && !deferred.is_empty() {
            // Every live page is parked on a retry timer and the server is
            // drained: nothing can move until a timer fires, so jump
            // simulated time to the next deadline. Intermediate
            // `next_deadline` values may be cascade ticks that ready
            // nothing — keep stepping until a retry surfaces.
            while retry_batch.is_empty() {
                let Some(deadline) = kernel.next_deadline() else {
                    return Err(MinosError::Internal(
                        "deferred retries with no armed timer".into(),
                    ));
                };
                kernel.advance_to(deadline);
                drain_due_retries(&mut kernel, &mut deferred, &mut retry_batch);
            }
            // The wait was real wall-clock idleness for the client side.
            up_free = up_free.max(kernel.now());
        }
        for (s, page, due) in retry_batch.drain(..) {
            let span = plans[s].1[page];
            let class = if s == 0 { Priority::Audio } else { Priority::Demand };
            let frame = Frame::request_with_priority(
                s as u64 + 1,
                next_rid,
                class,
                ServerRequest::FetchSpan { span },
            );
            next_rid += 1;
            offered += 1;
            busy_retries += 1;
            // The retry may not leave before the server's hint elapses —
            // the uplink timeline is pushed out to the due instant if it
            // would otherwise be free earlier.
            let leave = up_free.max(due);
            if leave < due {
                premature_retries += 1;
            }
            let arrival = leave + link.transfer(frame.wire_size());
            up_free = arrival;
            arrivals.insert((frame.conn_id, frame.request_id), arrival);
            inflight.insert(
                (frame.conn_id, frame.request_id),
                InFlightPage { span, page, submitted: leave, prefetch: false },
            );
            server.enqueue(frame)?;
        }
        for (s, page, prefetch) in batch.drain(..) {
            let span = plans[s].1[page];
            let class = if prefetch {
                Priority::Prefetch
            } else if s == 0 {
                Priority::Audio
            } else {
                Priority::Demand
            };
            let frame = Frame::request_with_priority(
                s as u64 + 1,
                next_rid,
                class,
                ServerRequest::FetchSpan { span },
            );
            next_rid += 1;
            offered += 1;
            let submitted = up_free;
            let arrival = up_free + link.transfer(frame.wire_size());
            up_free = arrival;
            arrivals.insert((frame.conn_id, frame.request_id), arrival);
            inflight.insert(
                (frame.conn_id, frame.request_id),
                InFlightPage { span, page, submitted, prefetch },
            );
            server.enqueue(frame)?;
        }
        // Deadline-aware service: the audio connection drains first, then
        // the server's own round-robin rotation.
        while let Some((frame, charge)) = server.poll_conn(1).or_else(|| server.poll_timed()) {
            let key = (frame.conn_id, frame.request_id);
            let arrival = arrivals.remove(&key).unwrap_or(up_free);
            let done = arrival.max(dev_free) + charge;
            dev_free = done;
            let at = done.max(down_free) + link.transfer(frame.wire_size());
            down_free = at;
            last_delivered = last_delivered.max(at);
            let Some(meta) = inflight.remove(&key) else {
                continue;
            };
            let s = frame.conn_id as usize - 1;
            let FramePayload::Response(response) = frame.payload else {
                continue;
            };
            match response {
                ServerResponse::Span(bytes) => {
                    if meta.prefetch {
                        // Speculative bytes cost real device and downlink
                        // time; the workload discards the contents but
                        // hands the buffer back to the server's pool.
                        prefetch_served += 1;
                        server.recycle_payload(bytes);
                        continue;
                    }
                    verify(plans[s].0, meta.span, &bytes)?;
                    server.recycle_payload(bytes);
                    outstanding[s] -= 1;
                    delivered += 1;
                    if s == 0 {
                        audio_pages += 1;
                        audio_lat.push(at.since(meta.submitted));
                    }
                }
                ServerResponse::Busy { retry_after } => {
                    if meta.prefetch {
                        continue;
                    }
                    // Honor the hint: the turned-away demand page parks on
                    // a retry timer and resubmits only after `retry_after`
                    // has elapsed past the reply's delivery. Its window
                    // slot stays held — the session must not use the
                    // rejection as licence to offer even more load.
                    kernel.arm(
                        at + retry_after,
                        KernelEvent::RetryDue { request_id: key.1, attempt: 0 },
                    );
                    deferred.insert(key.1, (s, meta.page, at + retry_after));
                }
                other => {
                    return Err(MinosError::Internal(format!("unexpected response {other:?}")));
                }
            }
        }
    }
    audio_lat.sort();
    let p99_rank = (audio_lat.len() * 99).div_ceil(100).saturating_sub(1);
    let stats = server.service_stats();
    Ok(OverloadReport {
        elapsed: last_delivered.since(SimInstant::EPOCH),
        pages: delivered,
        audio_pages,
        audio_p99: audio_lat.get(p99_rank).copied().unwrap_or(SimDuration::ZERO),
        audio_worst: audio_lat.last().copied().unwrap_or(SimDuration::ZERO),
        offered,
        prefetch_served,
        shed: stats.shed,
        busy_rejections: stats.busy_rejections,
        queue_high_water: stats.queue_high_water,
        bytes: link.stats().bytes,
        payload_allocs: stats.payload_allocs,
        busy_retries,
        premature_retries,
    })
}

/// Runs the E12 workload: `sessions` concurrent page-sequential readers,
/// each fetching `pages_per_session` pages of `page_len` bytes from its
/// own archived record, over one shared Ethernet-class link and one
/// optical-disk server. Every delivered page is verified byte-for-byte
/// against the stored pattern.
pub fn simulate_page_workload(
    sessions: usize,
    pages_per_session: usize,
    page_len: u64,
    mode: TransportMode,
) -> Result<WorkloadReport> {
    if sessions == 0 || pages_per_session == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs sessions, pages, and bytes".into()));
    }
    let mut server = ObjectServer::new();
    // Stock the payload pool up front so cold-start leases hit the free
    // list: payload_allocs then measures steady state, not warmup.
    server.prewarm_payloads(BufferPool::DEFAULT_RETAIN_CAP, page_len as usize);
    let mut plans: Vec<(u64, Vec<ByteSpan>)> = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let data: Vec<u8> =
            (0..pages_per_session as u64 * page_len).map(|i| (i % 251) as u8).collect();
        let (record, _) = server.archiver_mut().store(ObjectId::new(s as u64 + 1), &data)?;
        plans.push((record.span.start, page_spans(record.span, pages_per_session)));
    }
    let mut link = Link::ethernet();
    let verify = |base: u64, span: ByteSpan, bytes: &[u8]| -> Result<()> {
        let expect: Vec<u8> =
            (span.start - base..span.end - base).map(|i| (i % 251) as u8).collect();
        if bytes != expect {
            return Err(MinosError::Internal(format!("wrong bytes for {span}")));
        }
        Ok(())
    };

    match mode {
        TransportMode::Blocking => {
            let mut now = SimInstant::EPOCH;
            let mut delivered = 0u64;
            for page in 0..pages_per_session {
                for (conn0, (base, spans)) in plans.iter().enumerate() {
                    let span = spans[page];
                    let frame = Frame::request(
                        conn0 as u64 + 1,
                        delivered + 1,
                        ServerRequest::FetchSpan { span },
                    );
                    now = now + link.transfer(frame.wire_size());
                    let (response, took) = server.handle(&ServerRequest::FetchSpan { span });
                    now = now + took;
                    let reply = Frame::response(frame.conn_id, frame.request_id, response);
                    now = now + link.transfer(reply.wire_size());
                    let FramePayload::Response(ServerResponse::Span(bytes)) = reply.payload else {
                        return Err(MinosError::Internal(format!("no span bytes for {span}")));
                    };
                    verify(*base, span, &bytes)?;
                    server.recycle_payload(bytes);
                    delivered += 1;
                }
            }
            Ok(WorkloadReport {
                elapsed: now.since(SimInstant::EPOCH),
                pages: delivered,
                bytes: link.stats().bytes,
                payload_allocs: server.service_stats().payload_allocs,
            })
        }
        TransportMode::Pipelined { window } => {
            let window = window.max(1);
            let mut up_free = SimInstant::EPOCH;
            let mut dev_free = SimInstant::EPOCH;
            let mut down_free = SimInstant::EPOCH;
            let mut arrivals: HashMap<(u64, u64), SimInstant> = HashMap::new();
            let mut requested: HashMap<(u64, u64), ByteSpan> = HashMap::new();
            let mut next_page = vec![0usize; sessions];
            let mut next_rid = 1u64;
            let mut last_delivered = SimInstant::EPOCH;
            let mut delivered = 0u64;
            while next_page.iter().any(|&p| p < pages_per_session) {
                for (conn0, (_, spans)) in plans.iter().enumerate() {
                    let from = next_page[conn0];
                    let to = (from + window).min(pages_per_session);
                    for span in &spans[from..to] {
                        let frame = Frame::request(
                            conn0 as u64 + 1,
                            next_rid,
                            ServerRequest::FetchSpan { span: *span },
                        );
                        next_rid += 1;
                        let up = link.transfer(frame.wire_size());
                        let arrival = up_free + up;
                        up_free = arrival;
                        arrivals.insert((frame.conn_id, frame.request_id), arrival);
                        requested.insert((frame.conn_id, frame.request_id), *span);
                        server.enqueue(frame)?;
                    }
                    next_page[conn0] = to;
                }
                while let Some((frame, charge)) = server.poll_timed() {
                    let key = (frame.conn_id, frame.request_id);
                    let arrival = arrivals.remove(&key).unwrap_or(up_free);
                    let done = arrival.max(dev_free) + charge;
                    dev_free = done;
                    let down = link.transfer(frame.wire_size());
                    let at = done.max(down_free) + down;
                    down_free = at;
                    last_delivered = last_delivered.max(at);
                    let FramePayload::Response(ServerResponse::Span(bytes)) = frame.payload else {
                        return Err(MinosError::Internal(format!(
                            "unexpected response frame {}/{}",
                            frame.conn_id, frame.request_id
                        )));
                    };
                    let (base, _) = plans.get(frame.conn_id as usize - 1).ok_or_else(|| {
                        MinosError::Internal(format!("unknown connection {}", frame.conn_id))
                    })?;
                    let span = requested.remove(&key).ok_or_else(|| {
                        MinosError::Internal(format!("unrequested response {key:?}"))
                    })?;
                    verify(*base, span, &bytes)?;
                    server.recycle_payload(bytes);
                    delivered += 1;
                }
            }
            Ok(WorkloadReport {
                elapsed: last_delivered.since(SimInstant::EPOCH),
                pages: delivered,
                bytes: link.stats().bytes,
                payload_allocs: server.service_stats().payload_allocs,
            })
        }
    }
}

/// Audio page period for [`simulate_sched_workload`]'s audio sessions.
const SCHED_AUDIO_PERIOD: SimDuration = SimDuration::from_millis(250);

/// Reading dwell between page turns for the workload's text sessions.
const SCHED_TEXT_DWELL: SimDuration = SimDuration::from_secs(1);

/// Every eighth active session in [`simulate_sched_workload`] is
/// audio-paced; the rest are text readers.
const SCHED_AUDIO_STRIDE: usize = 8;

/// What one [`simulate_sched_workload`] run measured — the E15 report:
/// how the event kernel's work scales with *active* sessions while idle
/// sessions cost nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedReport {
    /// Sessions in the fleet, idle dwellers included.
    pub sessions: u64,
    /// Sessions actually turning pages.
    pub active: u64,
    /// Of the active, sessions paced by an audio playback deadline.
    pub audio_sessions: u64,
    /// Pages delivered (active sessions × pages per session).
    pub pages: u64,
    /// Of those, pages delivered to audio-paced sessions.
    pub audio_pages: u64,
    /// Kernel events fired over the whole run — the work actually done,
    /// which scales with `active`, never with `sessions`.
    pub events: u64,
    /// Timers armed over the whole run.
    pub timers_armed: u64,
    /// Wakes that found nothing to do.
    pub spurious_wakes: u64,
    /// Most events ever pending delivery at once.
    pub ready_high_water: u64,
    /// 99th-percentile audio page service latency (deadline to delivery).
    pub audio_p99: SimDuration,
    /// Simulated time until the last page landed.
    pub sim_elapsed: SimDuration,
}

/// Runs the E15 workload: a fleet of `sessions` connected sessions of
/// which only `active` are doing anything — every
/// [`SCHED_AUDIO_STRIDE`]th active session turns a page each
/// [`SCHED_AUDIO_PERIOD`] on an audio playback deadline, the rest dwell
/// [`SCHED_TEXT_DWELL`] between page turns. Each page turn is one
/// request/response through shared uplink, device, and downlink
/// timelines (the E14 resource model), with the response's arrival armed
/// back into the [`Kernel`] as a completion wake.
///
/// The run loop is pure discrete-event simulation: it jumps from armed
/// deadline to armed deadline via [`Kernel::next_deadline`], so the
/// `sessions - active` idle dwellers — who have no timer armed — are
/// never visited. Total events fired is a function of `active` alone;
/// that invariant is the experiment's headline and is pinned by the
/// `exp_sched` smoke gate.
pub fn simulate_sched_workload(
    sessions: usize,
    active: usize,
    pages_per_session: usize,
    page_len: u64,
) -> Result<SchedReport> {
    if sessions == 0 || pages_per_session == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs sessions, pages, and bytes".into()));
    }
    let active = active.min(sessions);
    let mut kernel = Kernel::new();
    let mut link = Link::ethernet();
    // The shared resource timelines: one uplink, one storage device, one
    // downlink — the same serialization model the E14 workload charges.
    let mut up_free = SimInstant::EPOCH;
    let mut dev_free = SimInstant::EPOCH;
    let mut down_free = SimInstant::EPOCH;
    // Device charge for one page: optical seek-free streaming at the
    // archive's sustained rate, folded into a single per-page figure.
    let device_charge = SimDuration::from_micros(200 + page_len / 4);

    struct ActiveSession {
        remaining: usize,
        period: SimDuration,
        audio: bool,
        /// When the in-flight page's deadline fired, for latency.
        fired_at: SimInstant,
    }
    let mut states: Vec<ActiveSession> = (0..active)
        .map(|i| ActiveSession {
            remaining: pages_per_session,
            period: if i % SCHED_AUDIO_STRIDE == 0 { SCHED_AUDIO_PERIOD } else { SCHED_TEXT_DWELL },
            audio: i % SCHED_AUDIO_STRIDE == 0,
            fired_at: SimInstant::EPOCH,
        })
        .collect();
    let audio_sessions = states.iter().filter(|s| s.audio).count() as u64;
    // Arm each active session's first page deadline. Idle sessions arm
    // nothing: they exist only as the fleet headcount.
    for (i, s) in states.iter().enumerate() {
        let event = if s.audio {
            KernelEvent::AudioDeadline { session: i as u64 }
        } else {
            KernelEvent::DeadlineFired { key: i as u64 }
        };
        kernel.arm(SimInstant::EPOCH + s.period, event);
    }
    let mut pages = 0u64;
    let mut audio_pages = 0u64;
    let mut audio_lat: Vec<SimDuration> = Vec::new();
    let frame_wire = Frame::request(
        1,
        1,
        ServerRequest::FetchSpan { span: ByteSpan { start: 0, end: page_len } },
    )
    .wire_size();
    while let Some(at) = kernel.next_deadline() {
        kernel.advance_to(at);
        while let Some(event) = kernel.take_ready() {
            let session = match event {
                KernelEvent::AudioDeadline { session } => session as usize,
                KernelEvent::DeadlineFired { key } => key as usize,
                KernelEvent::ResponseLanded { conn, .. } => {
                    // The page landed: count it and, if the session has
                    // pages left, arm its next dwell/playback deadline.
                    let i = conn as usize;
                    let Some(state) = states.get_mut(i) else {
                        kernel.note_spurious();
                        continue;
                    };
                    state.remaining -= 1;
                    pages += 1;
                    if state.audio {
                        audio_pages += 1;
                        audio_lat.push(kernel.now().since(state.fired_at));
                    }
                    if state.remaining > 0 {
                        let next = if state.audio {
                            KernelEvent::AudioDeadline { session: conn }
                        } else {
                            KernelEvent::DeadlineFired { key: conn }
                        };
                        kernel.arm(kernel.now() + state.period, next);
                    }
                    continue;
                }
                _ => {
                    kernel.note_spurious();
                    continue;
                }
            };
            // A page deadline fired: issue the request through the shared
            // resources and arm the delivery as a completion wake.
            let Some(state) = states.get_mut(session) else {
                kernel.note_spurious();
                continue;
            };
            state.fired_at = kernel.now();
            let arrival = kernel.now().max(up_free) + link.transfer(frame_wire);
            up_free = arrival;
            let done = arrival.max(dev_free) + device_charge;
            dev_free = done;
            let delivered = done.max(down_free) + link.transfer(frame_wire + page_len);
            down_free = delivered;
            kernel.arm(
                delivered,
                KernelEvent::ResponseLanded { conn: session as u64, request_id: 0 },
            );
        }
    }
    audio_lat.sort();
    let p99_rank = (audio_lat.len() * 99).div_ceil(100).saturating_sub(1);
    let stats = kernel.stats();
    Ok(SchedReport {
        sessions: sessions as u64,
        active: active as u64,
        audio_sessions,
        pages,
        audio_pages,
        events: stats.events_fired,
        timers_armed: stats.timers_armed,
        spurious_wakes: stats.spurious_wakes,
        ready_high_water: stats.ready_high_water,
        audio_p99: audio_lat.get(p99_rank).copied().unwrap_or(SimDuration::ZERO),
        sim_elapsed: kernel.now().since(SimInstant::EPOCH),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::objects::archived_form;
    use minos_corpus::{audio_xray_report, medical_report, subway_map_object};

    fn corpus_server() -> ObjectServer {
        let mut server = ObjectServer::new();
        let report = medical_report(ObjectId::new(1), 42);
        server.publish(report.clone(), &archived_form(&report)).unwrap();
        let dictation = audio_xray_report(ObjectId::new(2), 7);
        server.publish(dictation.clone(), &archived_form(&dictation)).unwrap();
        let (parent, overlays) =
            subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
        server.publish(parent.clone(), &archived_form(&parent)).unwrap();
        for o in overlays {
            let a = archived_form(&o);
            server.publish(o, &a).unwrap();
        }
        server
    }

    fn baseline_store() -> HashMap<ObjectId, MultimediaObject> {
        let mut map = HashMap::new();
        let report = medical_report(ObjectId::new(1), 42);
        map.insert(report.id, report);
        let dictation = audio_xray_report(ObjectId::new(2), 7);
        map.insert(dictation.id, dictation);
        let (parent, overlays) =
            subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
        map.insert(parent.id, parent);
        for o in overlays {
            map.insert(o.id, o);
        }
        map
    }

    #[test]
    fn scheduled_session_matches_standalone_events() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let (mut baseline, base_open) =
            BrowsingSession::open(baseline_store(), ObjectId::new(3), config, page).unwrap();

        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (key, open_events) = sched.open(ObjectId::new(3), config, page).unwrap();
        assert_eq!(open_events, base_open);

        for cmd in [
            BrowseCommand::SelectRelevant(0),
            BrowseCommand::NextPage,
            BrowseCommand::ReturnFromRelevant,
            BrowseCommand::SelectRelevant(1),
            BrowseCommand::ReturnFromRelevant,
        ] {
            let expect = baseline.apply(cmd.clone()).unwrap();
            let got = sched.apply(key, cmd).unwrap();
            assert_eq!(got, expect);
        }
        assert_eq!(sched.session(key).unwrap().object().id, ObjectId::new(3));
        // The scheduled run actually moved bytes for the shared link.
        assert!(sched.link_stats().bytes > 0);
    }

    #[test]
    fn concurrent_sessions_stay_isolated() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (map_key, _) = sched.open(ObjectId::new(3), config, page).unwrap();
        let (report_key, _) = sched.open(ObjectId::new(1), config, page).unwrap();
        let (audio_key, _) = sched.open(ObjectId::new(2), config, page).unwrap();
        assert_eq!(sched.len(), 3);

        sched.apply(map_key, BrowseCommand::SelectRelevant(0)).unwrap();
        sched.apply(report_key, BrowseCommand::NextPage).unwrap();
        sched.tick(SimDuration::from_secs(8));
        sched.apply(audio_key, BrowseCommand::Interrupt).unwrap();

        assert_eq!(sched.session(map_key).unwrap().object().id, ObjectId::new(4));
        assert_eq!(sched.session(report_key).unwrap().object().id, ObjectId::new(1));
        assert!(sched.session(audio_key).unwrap().audio().is_some());
        // The audio tick produced playback events for that session only.
        assert!(!sched.drain_events(audio_key).unwrap().is_empty());
        assert!(sched.drain_events(report_key).unwrap().is_empty());
    }

    #[test]
    fn audio_sessions_are_served_first() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (visual_a, _) = sched.open(ObjectId::new(1), config, page).unwrap();
        let (audio, _) = sched.open(ObjectId::new(2), config, page).unwrap();
        let (visual_b, _) = sched.open(ObjectId::new(3), config, page).unwrap();

        // Whatever the rotation, the audio session leads every tick.
        for _ in 0..4 {
            let order = sched.service_order();
            assert_eq!(order[0], audio, "audio deadline beats the rotation");
            sched.tick(SimDuration::from_millis(100));
        }
        // Across a full rotation, each visual session leads the non-audio
        // tail at least once — the rotation cannot starve either.
        let mut heads = Vec::new();
        for _ in 0..3 {
            heads.push(sched.service_order()[1]);
            sched.tick(SimDuration::from_millis(100));
        }
        assert!(heads.contains(&visual_a) && heads.contains(&visual_b), "rotation is fair");
    }

    #[test]
    fn prefetched_relevant_objects_cost_no_demand_wait() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (key, _) = sched.open(ObjectId::new(3), config, page).unwrap();
        // Opening announced the visible indicators; ticks land their
        // transfers while the user dwells on the map.
        for _ in 0..4 {
            sched.tick(SimDuration::from_secs(1));
        }
        let waited_before = sched.session(key).unwrap().store().waited();
        sched.apply(key, BrowseCommand::SelectRelevant(0)).unwrap();
        let waited_after = sched.session(key).unwrap().store().waited();
        assert_eq!(sched.session(key).unwrap().object().id, ObjectId::new(4));
        assert_eq!(waited_after, waited_before, "the overlay had already landed");
    }

    #[test]
    fn faulty_connection_leaves_other_sessions_untouched() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let run = |plan: Option<FaultPlan>| {
            let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
            let (report_key, _) = sched.open(ObjectId::new(1), config, page).unwrap();
            let (audio_key, _) = sched.open(ObjectId::new(2), config, page).unwrap();
            // The faulty session opens last: its overlay prefetches are
            // still queued at the server when the plan attaches, so their
            // response frames really cross the fault layer.
            let (map_key, _) = sched.open(ObjectId::new(3), config, page).unwrap();
            if let Some(plan) = plan {
                sched.inject_faults(map_key, plan).unwrap();
            }
            sched.apply(report_key, BrowseCommand::NextPage).unwrap();
            sched.tick(SimDuration::from_secs(2));
            sched.apply(map_key, BrowseCommand::SelectRelevant(0)).unwrap();
            sched.tick(SimDuration::from_secs(2));
            let map_obj = sched.session(map_key).unwrap().object().id;
            let faults = sched.fault_stats(map_key).unwrap();
            let report_events = sched.drain_events(report_key).unwrap();
            let audio_events = sched.drain_events(audio_key).unwrap();
            (map_obj, faults, report_events, audio_events)
        };
        let (clean_obj, _, clean_report, clean_audio) = run(None);
        let (faulty_obj, faults, faulty_report, faulty_audio) =
            run(Some(FaultPlan::dropping(21, 0.3)));
        // The injected session's frames were really lost, yet its demand
        // fetch retried through the losses and landed the right overlay...
        assert!(faults.dropped > 0, "the plan dropped frames: {faults:?}");
        assert_eq!(faulty_obj, ObjectId::new(4));
        assert_eq!(faulty_obj, clean_obj);
        // ...and the other sessions' event streams are untouched by a
        // neighbor's faulty connection.
        assert_eq!(faulty_report, clean_report);
        assert_eq!(faulty_audio, clean_audio);
    }

    #[test]
    fn dropped_prefetches_degrade_to_demand_fetches() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (key, _) = sched.open(ObjectId::new(3), config, page).unwrap();
        // Every frame vanishes while the user dwells on the map: the
        // overlay prefetches announced at open are all lost in flight.
        sched.inject_faults(key, FaultPlan::dropping(5, 1.0)).unwrap();
        for _ in 0..3 {
            sched.tick(SimDuration::from_secs(1));
        }
        assert!(sched.fault_stats(key).unwrap().dropped > 0, "prefetch responses were lost");
        // The link heals. Selection must still work: the lost prefetch
        // degrades to a demand fetch — the stale pending entry it left
        // behind must not suppress the resubmission — and the user pays a
        // demand wait, never gets a stale page or a session abort.
        sched.inject_faults(key, FaultPlan::none()).unwrap();
        let waited_before = sched.session(key).unwrap().store().waited();
        sched.apply(key, BrowseCommand::SelectRelevant(0)).unwrap();
        assert_eq!(sched.session(key).unwrap().object().id, ObjectId::new(4));
        let waited_after = sched.session(key).unwrap().store().waited();
        assert!(waited_after > waited_before, "the demand miss paid the transfer wait");
    }

    #[test]
    fn faulty_workload_retries_to_byte_identical_completion() {
        let clean = simulate_faulty_page_workload(16, 4_096, 8, FaultPlan::none()).unwrap();
        assert_eq!(clean.pages, 16);
        assert_eq!(clean.failed, 0);
        assert_eq!(clean.transport, TransportStats::default());
        let faulty =
            simulate_faulty_page_workload(16, 4_096, 8, FaultPlan::corrupting(42, 0.1)).unwrap();
        assert_eq!(faulty.pages, 16, "every page recovered: {:?}", faulty.transport);
        assert_eq!(faulty.failed, 0);
        assert!(faulty.faults.corrupted > 0, "{:?}", faulty.faults);
        assert!(faulty.transport.retries > 0, "{:?}", faulty.transport);
        assert!(faulty.elapsed >= clean.elapsed, "recovery is never free");
    }

    #[test]
    fn workload_reports_are_verified_and_complete() {
        let blocking = simulate_page_workload(2, 4, 4_096, TransportMode::Blocking).unwrap();
        assert_eq!(blocking.pages, 8);
        assert!(blocking.elapsed > SimDuration::ZERO);
        let piped =
            simulate_page_workload(2, 4, 4_096, TransportMode::Pipelined { window: 4 }).unwrap();
        assert_eq!(piped.pages, 8);
        assert!(piped.elapsed < blocking.elapsed);
        // Pipelining reorders transfers; it never inflates them. (The
        // workload charges response frames individually, so byte counts
        // match the blocking run exactly.)
        assert!(piped.bytes <= blocking.bytes, "pipelining must not inflate transfer");
    }

    #[test]
    fn pipelining_doubles_aggregate_throughput_at_sixteen_sessions() {
        // The E12 headline, pinned as a test: 16 concurrent page readers,
        // 8 KB pages, window 8 — pipelined throughput at least doubles.
        let blocking = simulate_page_workload(16, 8, 8_192, TransportMode::Blocking).unwrap();
        let piped =
            simulate_page_workload(16, 8, 8_192, TransportMode::Pipelined { window: 8 }).unwrap();
        let ratio = piped.pages_per_sec() / blocking.pages_per_sec();
        assert!(ratio >= 2.0, "pipelined/blocking ratio {ratio:.2}");
    }

    #[test]
    fn pipelined_workload_stays_under_one_allocation_per_page() {
        // The zero-copy pin: 8 sessions each streaming 64 pages at window
        // 8, every consumed page recycled — steady state serves pooled
        // buffers, so fresh allocations amortize to (well) under one per
        // page after the cold first round.
        let report =
            simulate_page_workload(8, 64, 8_192, TransportMode::Pipelined { window: 8 }).unwrap();
        assert_eq!(report.pages, 8 * 64);
        assert_eq!(
            report.payload_allocs, 0,
            "the prewarmed pool serves every page without a fresh allocation"
        );
        assert!(
            report.allocations_per_page() <= 1.0,
            "allocations per page {:.3} ({} allocs / {} pages)",
            report.allocations_per_page(),
            report.payload_allocs,
            report.pages
        );
        // The pin holds under admission-controlled overload too, with the
        // 4x speculative fan-out riding the same pooled buffers.
        let overload = simulate_overload_workload(16, 6, 4_096, ServiceConfig::default()).unwrap();
        assert!(
            overload.allocations_per_page() <= 1.0,
            "overload allocations per page {:.3} ({} allocs / {} pages)",
            overload.allocations_per_page(),
            overload.payload_allocs,
            overload.pages
        );
    }

    #[test]
    fn admission_control_sheds_prefetch_and_keeps_demand_whole() {
        let caps = ServiceConfig { per_conn_cap: 8, global_cap: 32, ..ServiceConfig::default() };
        let admitted = simulate_overload_workload(16, 6, 4_096, caps).unwrap();
        let unbounded =
            simulate_overload_workload(16, 6, 4_096, ServiceConfig::unbounded()).unwrap();
        // Every demand page lands byte-identical in both runs — shedding
        // costs speculation, never the user's page.
        assert_eq!(admitted.pages, 16 * 6);
        assert_eq!(unbounded.pages, 16 * 6);
        assert_eq!(admitted.audio_pages, 6);
        // The overload is real: the admission control had prefetches to
        // shed, and it only ever shed prefetches.
        assert!(admitted.shed > 0, "{admitted:?}");
        assert_eq!(admitted.busy_rejections, 0, "demand never turned away: {admitted:?}");
        assert_eq!(unbounded.shed, 0);
        assert!(admitted.prefetch_served < unbounded.prefetch_served);
        // The queue really is bounded, and the audio tail is the payoff:
        // shedding keeps the listener's p99 latency below the unbounded
        // collapse, and demand goodput above it.
        assert!(admitted.queue_high_water <= 32, "{admitted:?}");
        assert!(unbounded.queue_high_water > 32, "{unbounded:?}");
        assert!(
            admitted.audio_p99 < unbounded.audio_p99,
            "admitted {:?} vs unbounded {:?}",
            admitted.audio_p99,
            unbounded.audio_p99
        );
        assert!(admitted.elapsed < unbounded.elapsed);
        assert!(admitted.goodput_pages_per_sec() > unbounded.goodput_pages_per_sec());
    }

    #[test]
    fn busy_resubmissions_wait_out_the_retry_hint() {
        // A per-connection cap of 1 guarantees demand-class rejections:
        // the second windowed demand page finds its connection's queue
        // full of un-sheddable demand work and is turned away with a
        // `Busy { retry_after }` hint.
        let tight = ServiceConfig { per_conn_cap: 1, global_cap: 64, ..ServiceConfig::default() };
        let report = simulate_overload_workload(8, 6, 4_096, tight).unwrap();
        assert_eq!(report.pages, 8 * 6, "every turned-away page eventually lands");
        assert!(report.busy_rejections > 0, "the cap actually rejected demand: {report:?}");
        assert!(report.busy_retries > 0, "rejected pages came back as retries: {report:?}");
        // The pin: no resubmission ever left the client before the
        // server's hint elapsed. The retry timer gates the uplink.
        assert_eq!(report.premature_retries, 0, "{report:?}");
    }

    #[test]
    fn anticipation_suspends_under_admission_pressure() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        // One queued frame already counts as pressure under this cap, so
        // opening the map may announce both overlays but issue at most one
        // anticipatory fetch before suspending.
        sched.set_service_config(ServiceConfig {
            per_conn_cap: 1,
            global_cap: 1,
            ..ServiceConfig::default()
        });
        let (key, _) = sched.open(ObjectId::new(3), config, page).unwrap();
        for _ in 0..4 {
            sched.tick(SimDuration::from_secs(1));
        }
        // Suspension means no prefetch was submitted-and-shed: the server
        // never had to reject anything.
        assert_eq!(sched.service_stats().shed, 0);
        assert_eq!(sched.service_stats().busy_rejections, 0);
        // The first overlay's prefetch went out before pressure and
        // landed; the second was suspended and degrades to a demand miss.
        let waited_before = sched.session(key).unwrap().store().waited();
        sched.apply(key, BrowseCommand::SelectRelevant(0)).unwrap();
        assert_eq!(sched.session(key).unwrap().object().id, ObjectId::new(4));
        assert_eq!(sched.session(key).unwrap().store().waited(), waited_before);
        sched.apply(key, BrowseCommand::ReturnFromRelevant).unwrap();
        sched.apply(key, BrowseCommand::SelectRelevant(1)).unwrap();
        assert_eq!(sched.session(key).unwrap().object().id, ObjectId::new(5));
        assert!(
            sched.session(key).unwrap().store().waited() > waited_before,
            "the suspended prefetch degraded to a demand wait"
        );
    }

    #[test]
    fn sched_workload_cost_is_invariant_in_idle_sessions() {
        // The E15 invariant: a fleet 150x larger costs exactly the same
        // kernel work when the active set is the same — idle sessions arm
        // nothing and are never visited.
        let small = simulate_sched_workload(64, 32, 4, 4_096).unwrap();
        let large = simulate_sched_workload(10_000, 32, 4, 4_096).unwrap();
        assert_eq!(small.pages, 32 * 4);
        assert_eq!(small.audio_sessions, 4);
        assert_eq!(small.events, large.events);
        assert_eq!(small.timers_armed, large.timers_armed);
        assert_eq!(small.sim_elapsed, large.sim_elapsed);
        assert_eq!(small.audio_p99, large.audio_p99);
        assert_eq!(large.spurious_wakes, 0, "every wake did real work");
        assert_eq!(large.sessions, 10_000);
        assert!(large.audio_pages > 0);
        assert!(large.audio_p99 > SimDuration::ZERO);
    }

    #[test]
    fn kernel_and_legacy_ticks_produce_identical_event_streams() {
        // The in-module equivalence smoke (the fuzzed golden-stream
        // harness lives in tests/command_fuzz.rs): same sessions, same
        // commands, same ticks — byte-identical events and transfer
        // accounting in both modes.
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let run = |legacy: bool| {
            let mut sched = if legacy {
                SessionScheduler::legacy(corpus_server(), Link::ethernet())
            } else {
                SessionScheduler::new(corpus_server(), Link::ethernet())
            };
            let (map_key, open_map) = sched.open(ObjectId::new(3), config, page).unwrap();
            let (audio_key, open_audio) = sched.open(ObjectId::new(2), config, page).unwrap();
            let (report_key, open_report) = sched.open(ObjectId::new(1), config, page).unwrap();
            let mut events = vec![open_map, open_audio, open_report];
            for _ in 0..3 {
                sched.tick(SimDuration::from_secs(1));
            }
            events.push(sched.apply(map_key, BrowseCommand::SelectRelevant(0)).unwrap());
            events.push(sched.apply(report_key, BrowseCommand::NextPage).unwrap());
            sched.tick(SimDuration::from_secs(2));
            events.push(sched.apply(audio_key, BrowseCommand::Interrupt).unwrap());
            sched.tick(SimDuration::from_secs(2));
            for key in [map_key, audio_key, report_key] {
                events.push(sched.drain_events(key).unwrap());
            }
            (events, sched.link_stats(), sched.elapsed(), sched.kernel_stats())
        };
        let (kernel_events, kernel_link, kernel_elapsed, kernel_stats) = run(false);
        let (legacy_events, legacy_link, legacy_elapsed, legacy_stats) = run(true);
        assert_eq!(kernel_events, legacy_events);
        assert_eq!(kernel_link, legacy_link);
        assert_eq!(kernel_elapsed, legacy_elapsed);
        // Only the kernel path goes through the event kernel.
        assert!(kernel_stats.events_fired > 0);
        assert_eq!(legacy_stats, KernelStats::default());
    }

    #[test]
    fn audio_sessions_tag_their_demand_class() {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let (visual, _) = sched.open(ObjectId::new(1), config, page).unwrap();
        let (audio, _) = sched.open(ObjectId::new(2), config, page).unwrap();
        assert_eq!(sched.session(visual).unwrap().store().demand_class(), Priority::Demand);
        assert_eq!(sched.session(audio).unwrap().store().demand_class(), Priority::Audio);
    }

    #[test]
    fn zero_elapsed_reports_rate_as_zero() {
        // Pinned: a degenerate zero-length run reports zero throughput,
        // never a division-by-zero NaN or infinity.
        let report =
            WorkloadReport { elapsed: SimDuration::ZERO, pages: 5, bytes: 1, payload_allocs: 0 };
        assert_eq!(report.pages_per_sec(), 0.0);
        let empty =
            WorkloadReport { elapsed: SimDuration::ZERO, pages: 0, bytes: 0, payload_allocs: 3 };
        assert_eq!(empty.allocations_per_page(), 0.0);
        let faulty = FaultyWorkloadReport {
            elapsed: SimDuration::ZERO,
            pages: 5,
            failed: 0,
            bytes: 1,
            transport: TransportStats::default(),
            faults: FaultStats::default(),
        };
        assert_eq!(faulty.pages_per_sec(), 0.0);
        let overload = OverloadReport {
            elapsed: SimDuration::ZERO,
            pages: 5,
            audio_pages: 5,
            audio_p99: SimDuration::ZERO,
            audio_worst: SimDuration::ZERO,
            offered: 20,
            prefetch_served: 0,
            shed: 0,
            busy_rejections: 0,
            queue_high_water: 0,
            bytes: 1,
            payload_allocs: 0,
            busy_retries: 0,
            premature_retries: 0,
        };
        assert_eq!(overload.goodput_pages_per_sec(), 0.0);
    }
}
