//! Tour playing with logical messages and the voice-label option.
//!
//! "A tour is a sequence of views defined on an image by the multimedia
//! object designer. The sequence is played automatically … A logical
//! message (visual or audio) may be associated with each position of the
//! tour. The user may interrupt the tour and move the window all round."
//! (§2) And for views generally: "If the voice option has been turned on
//! the system plays the voice labels which are encountered as the view
//! moves." (§2)
//!
//! [`TourRunner`] drives an object's [`minos_object::TourSpec`] against the
//! simulated clock, reporting stop entries, attached logical messages, and
//! — with the voice option on — voice labels newly encountered by the
//! moving window.

use minos_image::tour::TourState;
use minos_image::view::MoveDirection;
use minos_image::{Bitmap, LabelIndex, TourPlayer};
use minos_object::MultimediaObject;
use minos_types::{MinosError, Rect, Result, SimDuration};
use std::collections::HashSet;

/// Events a playing tour reports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TourEvent {
    /// The window arrived at stop `index`.
    StopEntered(usize),
    /// The stop's attached voice message started playing (message index in
    /// the object's message table).
    VoiceMessagePlayed(usize),
    /// The stop's attached visual message went on display.
    VisualMessageShown(usize),
    /// The voice option played a voice label encountered by the window
    /// (the label's data-file tag).
    VoiceLabelPlayed(String),
    /// The last stop's dwell elapsed.
    Finished,
}

/// Plays one tour of an object.
pub struct TourRunner {
    player: TourPlayer,
    /// Rendered raster of the toured image (windows are cut from it).
    raster: Bitmap,
    /// Message body kinds, indexed like the object's message table.
    message_is_voice: Vec<bool>,
    voice_option: bool,
    /// Voice-label tags already played (each label plays once per tour).
    played_labels: HashSet<String>,
    /// Owned copy of the graphics for label lookups, if the image has any.
    graphics: Option<minos_image::GraphicsImage>,
}

impl TourRunner {
    /// Opens the object's `tour_index`-th tour. `voice_option` enables
    /// voice-label playing as the window moves.
    pub fn new(object: &MultimediaObject, tour_index: usize, voice_option: bool) -> Result<Self> {
        let spec = object
            .tours
            .get(tour_index)
            .ok_or_else(|| MinosError::UnknownComponent(format!("tour {tour_index}")))?;
        let image = object
            .images
            .get(spec.image)
            .ok_or_else(|| MinosError::UnknownComponent(format!("tour image {}", spec.image)))?;
        let raster = image.render();
        let graphics = image.as_graphics().cloned();
        let player = TourPlayer::new(spec.tour.clone())?;
        let message_is_voice = object.messages.iter().map(|m| m.body.is_voice()).collect();
        let mut runner = TourRunner {
            player,
            raster,
            message_is_voice,
            voice_option,
            played_labels: HashSet::new(),
            graphics,
        };
        // Labels under the opening window count as encountered.
        let _ = runner.labels_in(runner.player.current_rect());
        Ok(runner)
    }

    /// Current window rectangle.
    pub fn current_rect(&self) -> Rect {
        self.player.current_rect()
    }

    /// Current stop index.
    pub fn current_stop(&self) -> usize {
        self.player.current_stop()
    }

    /// Whether the tour is playing, interrupted, or done.
    pub fn state(&self) -> TourState {
        self.player.state()
    }

    /// The pixels currently in the window.
    pub fn current_window(&self) -> Result<Bitmap> {
        self.raster.extract(self.current_rect())
    }

    fn message_event(&self, message: usize) -> TourEvent {
        if self.message_is_voice.get(message).copied().unwrap_or(false) {
            TourEvent::VoiceMessagePlayed(message)
        } else {
            TourEvent::VisualMessageShown(message)
        }
    }

    /// Voice labels newly encountered in `rect` (marks them played).
    fn labels_in(&mut self, rect: Rect) -> Vec<String> {
        let Some(graphics) = &self.graphics else { return Vec::new() };
        if !self.voice_option {
            return Vec::new();
        }
        let index = LabelIndex::new(graphics);
        index
            .voice_labels_in(rect)
            .into_iter()
            .filter(|tag| self.played_labels.insert((*tag).to_string()))
            .map(str::to_string)
            .collect()
    }

    /// Advances the tour by `dt` of simulated time.
    pub fn tick(&mut self, dt: SimDuration) -> Vec<TourEvent> {
        let was_finished = self.player.state() == TourState::Finished;
        let entered = self.player.tick(dt);
        let mut events = Vec::new();
        for stop in entered {
            events.push(TourEvent::StopEntered(stop));
            if let Some(message) = self.player.tour().stops()[stop].message {
                events.push(self.message_event(message));
            }
            for tag in self.labels_in(self.player.tour().view_at(stop).expect("stop in range")) {
                events.push(TourEvent::VoiceLabelPlayed(tag));
            }
        }
        if !was_finished && self.player.state() == TourState::Finished {
            events.push(TourEvent::Finished);
        }
        events
    }

    /// Interrupts the automatic sequence; the window becomes free-moving.
    pub fn interrupt(&mut self) {
        self.player.interrupt();
    }

    /// Resumes the automatic sequence.
    pub fn resume(&mut self) {
        self.player.resume();
    }

    /// Moves the free window one step (valid while interrupted), playing
    /// any voice labels the move encounters.
    pub fn move_window(&mut self, direction: MoveDirection) -> Result<Vec<TourEvent>> {
        {
            let view = self.player.free_view_mut().ok_or_else(|| {
                MinosError::OperationUnavailable("window moves require an interrupted tour".into())
            })?;
            view.step(direction);
        }
        let rect = self.player.current_rect();
        Ok(self.labels_in(rect).into_iter().map(TourEvent::VoiceLabelPlayed).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::harbor_tour_object;
    use minos_types::ObjectId;

    fn runner(voice: bool) -> (minos_object::MultimediaObject, TourRunner) {
        let obj = harbor_tour_object(ObjectId::new(1), 5);
        let r = TourRunner::new(&obj, 0, voice).unwrap();
        (obj, r)
    }

    #[test]
    fn tour_plays_stops_and_messages() {
        let (obj, mut r) = runner(false);
        let stops = obj.tours[0].tour.stops().len();
        let mut entered = 0;
        let mut messages = 0;
        let mut finished = false;
        for _ in 0..200 {
            for e in r.tick(SimDuration::from_secs(1)) {
                match e {
                    TourEvent::StopEntered(_) => entered += 1,
                    TourEvent::VoiceMessagePlayed(_) | TourEvent::VisualMessageShown(_) => {
                        messages += 1
                    }
                    TourEvent::Finished => finished = true,
                    TourEvent::VoiceLabelPlayed(_) => panic!("voice option is off"),
                }
            }
            if finished {
                break;
            }
        }
        assert!(finished, "tour never finished");
        assert_eq!(entered, stops - 1, "every stop after the first entered once");
        assert!(messages >= 1);
    }

    #[test]
    fn voice_option_plays_labels_once() {
        let (_, mut r) = runner(true);
        let mut labels = Vec::new();
        for _ in 0..200 {
            for e in r.tick(SimDuration::from_secs(1)) {
                if let TourEvent::VoiceLabelPlayed(tag) = e {
                    labels.push(tag);
                }
            }
            if r.state() == TourState::Finished {
                break;
            }
        }
        assert!(!labels.is_empty(), "tour encountered no voice labels");
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels must play once: {labels:?}");
    }

    #[test]
    fn interrupt_frees_the_window_and_moves_play_labels() {
        let (_, mut r) = runner(true);
        assert!(r.move_window(MoveDirection::Right).is_err(), "moves need an interrupt");
        r.interrupt();
        let before = r.current_rect();
        let mut played = Vec::new();
        for _ in 0..30 {
            played.extend(r.move_window(MoveDirection::Right).unwrap());
            played.extend(r.move_window(MoveDirection::Down).unwrap());
        }
        assert_ne!(r.current_rect(), before);
        // Sweeping the map encounters labels the tour had not reached yet.
        assert!(
            played.iter().any(|e| matches!(e, TourEvent::VoiceLabelPlayed(_))),
            "free movement played nothing"
        );
        r.resume();
        assert_eq!(r.state(), TourState::Playing);
    }

    #[test]
    fn current_window_cuts_the_raster() {
        let (_, r) = runner(false);
        let window = r.current_window().unwrap();
        assert_eq!(window.size(), r.current_rect().size);
    }

    #[test]
    fn missing_tour_is_an_error() {
        let obj = harbor_tour_object(ObjectId::new(2), 5);
        assert!(TourRunner::new(&obj, 3, false).is_err());
    }
}
