//! The workstation side of the architecture.
//!
//! "The multimedia object presentation manager resides in the user's
//! workstation and requests the appropriate pieces of information from the
//! multimedia object server subsystems." (§5)
//!
//! A [`Workstation`] wraps a server endpoint behind a link model and
//! accounts for every simulated microsecond and byte: request transfer,
//! server device time, response transfer. Experiments E5 (views vs whole
//! images) and E6 (miniature-first browsing) read their numbers from here.
//!
//! Underneath, every request travels as a [`minos_net::Frame`] on a
//! pipelined [`Connection`]: [`Connection::submit`] puts a request frame on
//! the wire and returns a [`Ticket`] immediately, so several requests can
//! overlap link transfer with server device time; [`Connection::wait`]
//! collects the response and charges only the time the caller actually had
//! to wait. The blocking [`Workstation::request`]/
//! [`Workstation::request_batch`] calls are thin submit-then-wait shims
//! over this pipeline, so every pre-existing call site keeps its exact
//! semantics while anticipatory code gets true overlap.

use crate::kernel::{Kernel, KernelEvent, TimerId};
use minos_image::{Bitmap, View};
use minos_net::{
    BufferPool, FaultPlan, FaultyLink, Frame, FramePayload, InflightWindow, Link, Priority,
    ServerRequest, ServerResponse,
};
use minos_object::{ArchivedObject, DataKind, DataPayload};
use minos_server::ObjectServer;
use minos_types::{
    ByteSpan, MinosError, ObjectId, Rect, Result, SimClock, SimDuration, SimInstant, Size,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// Anything that can answer protocol requests with a device-time charge.
pub trait ServerEndpoint {
    /// Handles one request.
    fn handle(&mut self, request: &ServerRequest) -> (ServerResponse, SimDuration);

    /// The endpoint's restart epoch. Endpoints that never restart report a
    /// constant 0; a bump tells the connection its in-flight window was
    /// lost in the restart and must be replayed.
    fn epoch(&self) -> u64 {
        0
    }

    /// Clears any endpoint-side accounting (service-loop counters and
    /// overload high-water marks). Endpoints without accounting need not
    /// override.
    fn reset_stats(&mut self) {}
}

impl ServerEndpoint for ObjectServer {
    fn handle(&mut self, request: &ServerRequest) -> (ServerResponse, SimDuration) {
        ObjectServer::handle(self, request)
    }

    fn epoch(&self) -> u64 {
        ObjectServer::epoch(self)
    }

    fn reset_stats(&mut self) {
        self.reset_service_stats();
    }
}

/// A handle to a submitted, not-yet-collected request on a [`Connection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// A request frame accepted for transmission but not yet served: its bytes
/// finish arriving at the server at `arrival`. Shared with the fleet
/// transport ([`crate::fleet`]), which runs the same three-timeline wire
/// discipline against many members.
pub(crate) struct PendingFrame {
    pub(crate) frame: Frame,
    pub(crate) arrival: SimInstant,
}

/// A served response whose bytes finish arriving back at `ready_at`.
pub(crate) struct Landed {
    pub(crate) response: ServerResponse,
    pub(crate) ready_at: SimInstant,
}

/// Retransmission state for a request whose response has not yet landed
/// (kept only on faulty links; a clean link never loses a frame). The
/// *encoded* frame is what is kept: the request is encoded exactly once at
/// submit (into a pooled buffer), and every retransmit or epoch replay
/// resends these bytes verbatim — the old double copy (an owned clone of
/// the request plus a fresh encode per transmit) is gone.
struct Outstanding {
    frame_bytes: Vec<u8>,
    deadline: SimInstant,
    attempt: u32,
    /// The timer-wheel entry armed for `deadline`; cancelled when the
    /// response lands, rearmed on every retransmit.
    timer: TimerId,
}

/// Recovery accounting: what the connection had to do to survive its link.
/// Cleared by [`Connection::reset_accounting`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Deadlines that expired before the response landed.
    pub timeouts: u64,
    /// Request frames retransmitted after a timeout.
    pub retries: u64,
    /// Received frames that failed to decode (checksum mismatch or
    /// truncation) and were discarded.
    pub corrupt_frames: u64,
    /// Responses discarded because their `request_id` had already landed
    /// or been collected.
    pub duplicates: u64,
    /// Server epoch changes survived: the connection re-handshook and
    /// replayed its in-flight window after a restart.
    pub epoch_resyncs: u64,
    /// Request frames replayed (or retransmitted) because a server restart
    /// dropped them from the service queue.
    pub replays: u64,
    /// Requests re-aimed at a sibling replica after their target member
    /// restarted or timed out. Always zero on a single-endpoint
    /// [`Connection`]; counted by the fleet transport ([`crate::fleet`]),
    /// which has somewhere else to go.
    pub failovers: u64,
    /// Transmit-buffer pool leases served from the free list — no
    /// allocation happened.
    pub pool_hits: u64,
    /// Pool leases that had to allocate a fresh buffer (a cold pool or a
    /// burst deeper than the retained free list).
    pub pool_misses: u64,
    /// Fresh payload-buffer allocations on the frame hot path. For a
    /// connection this is its pool misses: once the pool is warm a
    /// steady-state window transmits with zero of these.
    pub payload_allocs: u64,
}

/// Default pipelining budget: requests that may be in flight at once.
const DEFAULT_WINDOW: usize = 32;

/// Default per-request deadline. The sim serves every surviving frame by
/// the time a caller waits on it, so a deadline only ever fires on genuine
/// loss — it can be short without risking spurious retransmits.
const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_millis(500);

/// Default retransmission budget before a request expires with an inline
/// error.
const DEFAULT_MAX_RETRIES: u32 = 4;

/// Ceiling on the exponential backoff between retransmits.
const BACKOFF_CAP: SimDuration = SimDuration::from_secs(4);

/// A pipelined connection to a server endpoint over a link.
///
/// The connection models three serially-reusable resources — the uplink,
/// the server device, and the downlink — each as a "free at" instant.
/// Submitting charges the uplink immediately; [`Connection::dispatch`]
/// moves pending frames through the device and downlink, coalescing a
/// leading run of adjacent span fetches into one device read and one
/// merged downlink transfer (the §5 anticipatory shape, preserved from the
/// batch path so pipelining never costs extra actuator seeks). Responses
/// land timestamped; waiting charges only the time between "now" and the
/// response's arrival — that difference is where pipelining wins.
pub struct Connection<E: ServerEndpoint> {
    endpoint: E,
    /// The endpoint epoch last handshaken; a mismatch at the next submit
    /// or wait triggers the resync-and-replay path.
    server_epoch: u64,
    link: FaultyLink,
    clock: SimClock,
    conn_id: u64,
    next_request_id: u64,
    window: InflightWindow,
    pending: VecDeque<PendingFrame>,
    landed: HashMap<u64, Landed>,
    outstanding: HashMap<u64, Outstanding>,
    collected: HashSet<u64>,
    /// Transmit and payload buffers leased and recycled across the
    /// connection's lifetime; its hit/miss accounting is merged into
    /// [`TransportStats`] by [`Connection::transport_stats`].
    pool: BufferPool,
    /// The discrete-event kernel holding every outstanding request's
    /// retransmit deadline, so a lost response on an otherwise-idle
    /// connection is discovered by [`Connection::advance_to`] at its
    /// deadline instead of lazily at the next collection.
    kernel: Kernel,
    transport: TransportStats,
    timeout: SimDuration,
    max_retries: u32,
    up_free: SimInstant,
    dev_free: SimInstant,
    down_free: SimInstant,
    round_trips: u64,
}

impl<E: ServerEndpoint> Connection<E> {
    /// Opens a connection to `endpoint` over `link` with the default
    /// in-flight window.
    pub fn new(endpoint: E, link: Link) -> Self {
        Connection::with_window(endpoint, link, DEFAULT_WINDOW)
    }

    /// Opens a connection with an explicit in-flight window capacity
    /// (capacity 1 degenerates to the old blocking discipline).
    pub fn with_window(endpoint: E, link: Link, window: usize) -> Self {
        Connection::with_faults(endpoint, link, window, FaultPlan::none())
    }

    /// Opens a connection whose link misbehaves according to `plan`. With
    /// a clean plan this is byte-for-byte identical to [`Connection::new`];
    /// otherwise every frame crosses the fault layer and the recovery
    /// machinery (deadlines, retransmission, duplicate suppression)
    /// engages.
    pub fn with_faults(endpoint: E, link: Link, window: usize, plan: FaultPlan) -> Self {
        let server_epoch = endpoint.epoch();
        Connection {
            endpoint,
            server_epoch,
            link: FaultyLink::new(link, plan),
            clock: SimClock::new(),
            conn_id: 1,
            next_request_id: 1,
            window: InflightWindow::new(window),
            pending: VecDeque::new(),
            landed: HashMap::new(),
            outstanding: HashMap::new(),
            collected: HashSet::new(),
            pool: BufferPool::new(),
            kernel: Kernel::new(),
            transport: TransportStats::default(),
            timeout: DEFAULT_TIMEOUT,
            max_retries: DEFAULT_MAX_RETRIES,
            up_free: SimInstant::EPOCH,
            dev_free: SimInstant::EPOCH,
            down_free: SimInstant::EPOCH,
            round_trips: 0,
        }
    }

    /// Overrides the recovery policy: per-request deadline and how many
    /// retransmits are attempted before a request expires with an inline
    /// [`ServerResponse::Error`].
    pub fn with_recovery(mut self, timeout: SimDuration, max_retries: u32) -> Self {
        self.timeout = timeout.max(SimDuration::from_micros(1));
        self.max_retries = max_retries;
        self
    }

    /// Total simulated time spent so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().since(SimInstant::EPOCH)
    }

    /// Payload bytes moved over the link so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.link.stats().bytes
    }

    /// Link transfer statistics (messages, bytes, busy time).
    pub fn link_stats(&self) -> minos_net::LinkStats {
        self.link.stats()
    }

    /// What the fault layer did to this connection's frames.
    pub fn fault_stats(&self) -> minos_net::FaultStats {
        self.link.fault_stats()
    }

    /// What the recovery machinery had to do: timeouts, retries, corrupt
    /// frames discarded, duplicates suppressed — plus the transmit-pool
    /// accounting (hits, misses, fresh payload allocations).
    pub fn transport_stats(&self) -> TransportStats {
        let pool = self.pool.stats();
        TransportStats {
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            payload_allocs: self.transport.payload_allocs + pool.misses,
            ..self.transport
        }
    }

    /// Round trips so far: times the connection went from idle (nothing in
    /// flight) to busy. A blocking caller pays one per request; a
    /// pipelined burst pays one for the whole burst — that is its point.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Hands a consumed payload buffer back to the connection's transmit
    /// pool. Callers that drain pipelined span responses can return the
    /// buffers here so the steady-state hot path re-serves them instead of
    /// allocating a fresh one per page. Each side recycles into its own
    /// pool: buffers this connection produced (coalesced batch slices,
    /// faulty-link decodes) come back here, while payloads the in-process
    /// server leased on the clean path belong to the server's
    /// `recycle_payload`.
    pub fn recycle_payload(&mut self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }

    /// Requests submitted and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// The in-flight window capacity.
    pub fn window_capacity(&self) -> usize {
        self.window.capacity()
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &E {
        &self.endpoint
    }

    /// Mutable endpoint access.
    pub fn endpoint_mut(&mut self) -> &mut E {
        &mut self.endpoint
    }

    /// Resets the accounting *and* the pipeline state (between experiment
    /// configurations): link statistics, the clock, the round-trip count,
    /// the resource timelines, and any uncollected frames. A ticket from
    /// before the reset is gone — waiting on it is a protocol error.
    pub fn reset_accounting(&mut self) {
        self.link.reset();
        self.clock = SimClock::new();
        self.round_trips = 0;
        self.up_free = SimInstant::EPOCH;
        self.dev_free = SimInstant::EPOCH;
        self.down_free = SimInstant::EPOCH;
        self.pending.clear();
        self.landed.clear();
        self.outstanding.clear();
        self.collected.clear();
        self.pool.reset_stats();
        // The clock restarts at the epoch, so every armed deadline is
        // stale: replace the kernel wholesale, counters included.
        self.kernel = Kernel::new();
        self.transport = TransportStats::default();
        self.window = InflightWindow::new(self.window.capacity());
        self.endpoint.reset_stats();
        // A reset adopts the endpoint's current epoch: there is no window
        // left to replay, so a restart before the reset costs nothing
        // after it.
        self.server_epoch = self.endpoint.epoch();
    }

    /// Detects a server restart (epoch bump) and recovers: a
    /// `Hello`/`Welcome` handshake round trip is charged on the wire, then
    /// the in-flight window is replayed *idempotently* — request ids are
    /// unchanged and ids whose responses already landed or were collected
    /// are skipped, so no request is ever served twice into the collected
    /// stream.
    fn resync_epoch(&mut self) {
        if self.endpoint.epoch() == self.server_epoch {
            return;
        }
        self.transport.epoch_resyncs += 1;
        // The handshake round trip: Hello up, device-free answer, Welcome
        // down, each on its resource timeline.
        let hello =
            Frame::request(self.conn_id, 0, ServerRequest::Hello { epoch: self.server_epoch });
        let up = self.link.charge(hello.wire_size());
        let hello_arrival = self.clock.now().max(self.up_free) + up;
        self.up_free = hello_arrival;
        let (answer, took) =
            self.endpoint.handle(&ServerRequest::Hello { epoch: self.server_epoch });
        let done = hello_arrival.max(self.dev_free) + took;
        self.dev_free = done;
        // The answer moves into the frame for an arithmetic wire-size
        // measurement and is read back out of it — never cloned.
        let welcome = Frame::response(self.conn_id, 0, answer);
        let down = self.link.charge(welcome.wire_size());
        let delivered = done.max(self.down_free) + down;
        self.down_free = delivered;
        self.clock.advance_to_at_least(delivered);
        self.server_epoch = match welcome.payload {
            FramePayload::Response(ServerResponse::Welcome { epoch }) => epoch,
            _ => self.endpoint.epoch(),
        };
        if self.link.is_clean() {
            // Requests that reached the restarted server unanswered died
            // with its volatile queue; put them back on the uplink with
            // their original ids.
            let replay: Vec<Frame> = self.pending.drain(..).map(|p| p.frame).collect();
            for frame in replay {
                if self.landed.contains_key(&frame.request_id)
                    || self.collected.contains(&frame.request_id)
                {
                    continue;
                }
                self.transport.replays += 1;
                let up = self.link.charge(frame.wire_size());
                let arrival = self.clock.now().max(self.up_free) + up;
                self.up_free = arrival;
                self.pending.push_back(PendingFrame { frame, arrival });
            }
            return;
        }
        // Faulty links: in-server copies are gone; every still-outstanding
        // request goes back through the ordinary transmit machinery (its
        // deadline state is untouched — a replay is not a timeout).
        self.pending.clear();
        let lost: Vec<u64> = self
            .outstanding
            .keys()
            .copied()
            .filter(|rid| !self.landed.contains_key(rid) && !self.collected.contains(rid))
            .collect();
        for rid in lost {
            self.transport.replays += 1;
            self.transmit_request(rid);
        }
    }

    /// Admits the next submission into the flow-control window: resyncs epochs,
    /// settles arrived responses, waits out (or times out) a full window,
    /// and allocates the request id.
    fn admit_slot(&mut self) -> u64 {
        self.resync_epoch();
        self.settle();
        while self.window.is_full() {
            self.dispatch();
            self.settle();
            if !self.window.is_full() {
                break;
            }
            let now = self.clock.now();
            if let Some(next) = self.landed.values().map(|l| l.ready_at).filter(|&t| t > now).min()
            {
                self.clock.advance_to_at_least(next);
                self.settle();
                continue;
            }
            // Window full with nothing landed and nothing arriving: every
            // open slot's response was lost on the wire. Force the oldest
            // slot through a timeout round (retransmit or expire) rather
            // than opening another slot anyway — the old code broke out
            // here and silently overran the flow-control bound.
            let Some(oldest) = self.window.oldest() else { break };
            self.force_progress(oldest);
            self.settle();
        }
        if self.window.is_empty() {
            self.round_trips += 1;
        }
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        request_id
    }

    /// Submits one request, charging its uplink transfer, and returns a
    /// ticket for collecting the response later. If the in-flight window
    /// is exhausted the call first waits out the oldest response (the
    /// pipelined analogue of blocking); on a faulty link a slot whose
    /// response was lost is forced through the timeout machinery instead
    /// of being overrun.
    pub fn submit(&mut self, request: ServerRequest) -> Ticket {
        let request_id = self.admit_slot();
        if self.link.is_clean() {
            // Fast path: the typed frame is handed to the server directly;
            // its wire size is computed arithmetically, so nothing is
            // copied or encoded on the hot path.
            let frame = Frame::request(self.conn_id, request_id, request);
            let up = self.link.charge(frame.wire_size());
            let arrival = self.clock.now().max(self.up_free) + up;
            self.up_free = arrival;
            self.pending.push_back(PendingFrame { frame, arrival });
        } else {
            self.submit_encoded(request_id, &request);
        }
        self.window.open(request_id);
        Ticket(request_id)
    }

    /// [`Connection::submit`] from a borrowed request, never cloning:
    /// plain-value requests are copied field-for-field onto the clean
    /// path's typed frame, and anything that owns heap data (or any
    /// request on a faulty link) encodes straight from the borrow into a
    /// pooled buffer.
    pub fn submit_ref(&mut self, request: &ServerRequest) -> Ticket {
        let request_id = self.admit_slot();
        match request.plain_copy() {
            Some(copy) if self.link.is_clean() => {
                let frame = Frame::request(self.conn_id, request_id, copy);
                let up = self.link.charge(frame.wire_size());
                let arrival = self.clock.now().max(self.up_free) + up;
                self.up_free = arrival;
                self.pending.push_back(PendingFrame { frame, arrival });
            }
            _ => self.submit_encoded(request_id, request),
        }
        self.window.open(request_id);
        Ticket(request_id)
    }

    /// Encodes `request` once — from its borrow, into a pooled buffer —
    /// records the bytes as retransmission state, and puts them on the
    /// wire.
    fn submit_encoded(&mut self, request_id: u64, request: &ServerRequest) {
        let deadline = self.clock.now() + self.timeout;
        let mut frame_bytes = self.pool.lease_vec();
        Frame::encode_request_into(
            self.conn_id,
            request_id,
            Priority::Demand,
            request,
            &mut frame_bytes,
        );
        let timer = self.kernel.arm(deadline, KernelEvent::RetryDue { request_id, attempt: 0 });
        self.outstanding
            .insert(request_id, Outstanding { frame_bytes, deadline, attempt: 0, timer });
        self.transmit_request(request_id);
    }

    /// Puts the outstanding request `request_id`'s stored frame bytes on
    /// the wire through the fault layer; whatever survives decoding joins
    /// the pending queue. Every transmission — first send, timeout
    /// retransmit, epoch replay — resends the identical bytes encoded at
    /// submit time.
    fn transmit_request(&mut self, request_id: u64) {
        let Some(out) = self.outstanding.get(&request_id) else {
            return;
        };
        let (up, deliveries) = self.link.transmit(&out.frame_bytes);
        let arrival = self.clock.now().max(self.up_free) + up;
        self.up_free = arrival;
        for delivery in deliveries {
            match Frame::decode(&delivery.bytes) {
                Ok(delivered) if delivered.as_request().is_some() => {
                    self.pending.push_back(PendingFrame {
                        frame: delivered,
                        arrival: arrival + delivery.delay,
                    });
                }
                Ok(_) => {}
                Err(_) => self.transport.corrupt_frames += 1,
            }
        }
    }

    /// Collects the response for `ticket`, advancing the clock to its
    /// arrival and returning how long the caller actually waited (zero if
    /// the response had already landed — that time was won by overlap).
    /// On a faulty link a lost response is retransmitted after its
    /// deadline, with capped exponential backoff; a request that exhausts
    /// its retries comes back as an inline [`ServerResponse::Error`], as do
    /// server-side errors.
    pub fn wait(&mut self, ticket: Ticket) -> Result<(ServerResponse, SimDuration)> {
        let started = self.clock.now();
        loop {
            self.resync_epoch();
            self.dispatch();
            if let Some(landed) = self.landed.remove(&ticket.0) {
                self.clock.advance_to_at_least(landed.ready_at);
                let waited = self.clock.now().saturating_since(started);
                self.window.close(ticket.0);
                if let Some(out) = self.outstanding.remove(&ticket.0) {
                    self.kernel.cancel(out.timer);
                    self.pool.recycle(out.frame_bytes);
                }
                if !self.link.is_clean() {
                    self.collected.insert(ticket.0);
                }
                return Ok((landed.response, waited));
            }
            if !self.outstanding.contains_key(&ticket.0) {
                return Err(MinosError::Protocol(format!(
                    "unknown or already-collected {ticket:?}"
                )));
            }
            self.force_progress(ticket.0);
        }
    }

    /// Collects the response for `ticket` only if it has already arrived;
    /// never advances the clock (and therefore never times anything out).
    pub fn poll(&mut self, ticket: Ticket) -> Option<ServerResponse> {
        self.resync_epoch();
        self.dispatch();
        if self.landed.get(&ticket.0)?.ready_at > self.clock.now() {
            return None;
        }
        self.window.close(ticket.0);
        if let Some(out) = self.outstanding.remove(&ticket.0) {
            self.kernel.cancel(out.timer);
            self.pool.recycle(out.frame_bytes);
        }
        if !self.link.is_clean() {
            self.collected.insert(ticket.0);
        }
        self.landed.remove(&ticket.0).map(|l| l.response)
    }

    /// Drives the connection to `at` without collecting anything. The
    /// timer wheel discovers every retransmit deadline that falls due in
    /// the interval and fires it: a lost response on an otherwise-idle
    /// connection retransmits (or expires) *at its deadline*, instead of
    /// waiting for the next [`Connection::wait`] to stumble on it. Fired
    /// deadlines whose response landed in the meantime are counted as
    /// spurious wakes and ignored.
    pub fn advance_to(&mut self, at: SimInstant) {
        self.resync_epoch();
        self.dispatch();
        // Step armed-deadline to armed-deadline: the clock reaches each
        // deadline exactly when it fires, so a retransmit's backoff
        // chains from the deadline — identical to the wait() discipline —
        // instead of from the far end of the jump. next_deadline may
        // name an intermediate cascade tick where nothing fires yet;
        // those rounds drain empty and the loop steps on.
        while let Some(next) = self.kernel.next_deadline() {
            if next > at {
                break;
            }
            self.clock.advance_to_at_least(next);
            self.drain_retry_wakes();
        }
        self.clock.advance_to_at_least(at);
        self.kernel.advance_to(self.clock.now());
        self.drain_retry_wakes();
        self.dispatch();
        self.settle();
    }

    /// Fires every kernel event due at the current clock and handles the
    /// retransmit wakes among them. Re-advances each round because a
    /// handler can arm a deadline already behind kernel time (a capped
    /// backoff), which lands due immediately and must still be flushed.
    fn drain_retry_wakes(&mut self) {
        loop {
            self.kernel.advance_to(self.clock.now());
            let Some(event) = self.kernel.take_ready() else { break };
            let KernelEvent::RetryDue { request_id, attempt } = event else {
                self.kernel.note_spurious();
                continue;
            };
            let now = self.clock.now();
            let due = self
                .outstanding
                .get(&request_id)
                .is_some_and(|o| o.attempt == attempt && o.deadline <= now);
            if due && !self.landed.contains_key(&request_id) {
                self.force_progress(request_id);
            } else {
                self.kernel.note_spurious();
            }
        }
    }

    /// The timer-wheel counters for this connection's recovery machinery.
    pub fn kernel_stats(&self) -> crate::kernel::KernelStats {
        self.kernel.stats()
    }

    /// Drains the connection kernel's trace ring as a JSON array (see
    /// [`Kernel::drain_trace_json`]).
    pub fn drain_kernel_trace(&mut self) -> String {
        self.kernel.drain_trace_json()
    }

    /// Forces progress on a slot whose response has not landed: waits out
    /// its deadline, then either retransmits (doubling the deadline, up to
    /// [`BACKOFF_CAP`]) or — retries exhausted — expires the request with
    /// an inline [`ServerResponse::Error`] so the slot can settle and the
    /// pipeline keeps moving. A slot with no retransmission state (clean
    /// links keep none) lands an inline error immediately: better a typed
    /// failure than an overrun window or a hang.
    fn force_progress(&mut self, request_id: u64) {
        let Some((deadline, attempt, timer)) =
            self.outstanding.get(&request_id).map(|o| (o.deadline, o.attempt, o.timer))
        else {
            self.landed.insert(
                request_id,
                Landed {
                    response: ServerResponse::Error(format!(
                        "request {request_id} lost with no retransmission state"
                    )),
                    ready_at: self.clock.now(),
                },
            );
            return;
        };
        self.transport.timeouts += 1;
        self.clock.advance_to_at_least(deadline);
        self.kernel.cancel(timer);
        if attempt >= self.max_retries {
            if let Some(out) = self.outstanding.remove(&request_id) {
                self.pool.recycle(out.frame_bytes);
            }
            self.landed.insert(
                request_id,
                Landed {
                    response: ServerResponse::Error(format!(
                        "request {request_id} timed out after {} attempts",
                        attempt + 1
                    )),
                    ready_at: self.clock.now(),
                },
            );
            return;
        }
        self.transport.retries += 1;
        let shift = (attempt + 1).min(16);
        let backoff =
            SimDuration::from_micros(self.timeout.as_micros().saturating_mul(1u64 << shift))
                .min(BACKOFF_CAP);
        let next_deadline = self.clock.now() + backoff;
        let timer = self
            .kernel
            .arm(next_deadline, KernelEvent::RetryDue { request_id, attempt: attempt + 1 });
        if let Some(out) = self.outstanding.get_mut(&request_id) {
            out.attempt = attempt + 1;
            out.deadline = next_deadline;
            out.timer = timer;
        }
        self.transmit_request(request_id);
    }

    /// Retires window slots whose responses have already arrived.
    fn settle(&mut self) {
        let now = self.clock.now();
        let arrived: Vec<u64> =
            self.landed.iter().filter(|(_, l)| l.ready_at <= now).map(|(&rid, _)| rid).collect();
        for rid in arrived {
            self.window.close(rid);
        }
    }

    /// Length of the leading run of adjacent span fetches in `pending`.
    fn leading_span_run(&self) -> usize {
        let mut len = 0;
        let mut prev_end: Option<u64> = None;
        for p in &self.pending {
            let Some(span) = p.frame.as_request().and_then(|r| r.as_span()) else {
                break;
            };
            if prev_end.is_some_and(|end| end != span.start) {
                break;
            }
            prev_end = Some(span.end);
            len += 1;
        }
        len
    }

    /// Moves every pending frame through the server device and the
    /// downlink, landing timestamped responses. Coalescing applies only on
    /// clean links: a mangled merged frame would lose the whole run to one
    /// bit flip, so faulty links keep per-request frames (integrity and
    /// retransmission are per frame).
    fn dispatch(&mut self) {
        while !self.pending.is_empty() {
            let run_len = if self.link.is_clean() { self.leading_span_run() } else { 1 };
            if run_len > 1 {
                let run: Vec<PendingFrame> = self.pending.drain(..run_len).collect();
                self.dispatch_coalesced(&run);
            } else if let Some(p) = self.pending.pop_front() {
                let (response, took) = match p.frame.as_request() {
                    Some(request) => self.endpoint.handle(request),
                    None => (
                        ServerResponse::Error("pending frame carried no request".into()),
                        SimDuration::ZERO,
                    ),
                };
                let done = p.arrival.max(self.dev_free) + took;
                self.dev_free = done;
                self.deliver(p.frame.request_id, response, done);
            }
        }
    }

    /// Serves a run of adjacent span fetches as one device read and one
    /// merged downlink transfer, slicing the bytes back per request.
    fn dispatch_coalesced(&mut self, run: &[PendingFrame]) {
        let spans: Vec<ByteSpan> =
            run.iter().filter_map(|p| p.frame.as_request().and_then(|r| r.as_span())).collect();
        let (Some(first), Some(last), Some(tail)) = (spans.first(), spans.last(), run.last())
        else {
            return;
        };
        let whole = ByteSpan::new(first.start, last.end);
        let arrival = tail.arrival;
        let (response, took) = self.endpoint.handle(&ServerRequest::FetchSpan { span: whole });
        let done = arrival.max(self.dev_free) + took;
        self.dev_free = done;
        match response {
            ServerResponse::Span(bytes) => {
                // One merged response frame carries the whole run's bytes;
                // the probe computes its wire size without copying them.
                let probe = Frame::response(
                    self.conn_id,
                    tail.frame.request_id,
                    ServerResponse::Span(bytes),
                );
                let down = self.link.charge(probe.wire_size());
                let delivered = done.max(self.down_free) + down;
                self.down_free = delivered;
                let bytes = match probe.payload {
                    FramePayload::Response(ServerResponse::Span(bytes)) => bytes,
                    _ => Vec::new(),
                };
                for (p, span) in run.iter().zip(&spans) {
                    let from = (span.start - whole.start) as usize;
                    let sliced = match bytes.get(from..from + span.len() as usize) {
                        Some(slice) => {
                            // Per-request payloads come out of the pool, so a
                            // steady-state pipeline re-serves the same buffers
                            // instead of allocating per page.
                            let mut payload = self.pool.lease_vec();
                            payload.extend_from_slice(slice);
                            ServerResponse::Span(payload)
                        }
                        None => ServerResponse::Error(format!(
                            "coalesced read lost {span} inside {whole}"
                        )),
                    };
                    self.landed.insert(
                        p.frame.request_id,
                        Landed { response: sliced, ready_at: delivered },
                    );
                }
                // The merged carrier buffer has been sliced apart; hand it
                // back so the next merged read reuses it.
                self.pool.recycle(bytes);
            }
            other => {
                let message = match other {
                    ServerResponse::Error(message) => message,
                    other => format!("unexpected response {other:?}"),
                };
                for (i, p) in run.iter().enumerate() {
                    // Each request owns an error naming its slice of the
                    // merged read — built once per request, not cloned
                    // from a shared buffer.
                    let detail = match spans.get(i) {
                        Some(span) => {
                            format!("coalesced read {whole} failed for {span}: {message}")
                        }
                        None => format!("coalesced read {whole} failed: {message}"),
                    };
                    self.deliver(p.frame.request_id, ServerResponse::Error(detail), done);
                }
            }
        }
    }

    /// Charges the downlink for one response frame and lands it at its
    /// delivery instant. On a faulty link the encoded frame crosses the
    /// fault layer: corrupt copies are counted and discarded (the deadline
    /// machinery will retransmit), duplicates are suppressed by
    /// `request_id`.
    fn deliver(&mut self, request_id: u64, response: ServerResponse, done: SimInstant) {
        if self.link.is_clean() {
            // Move the response into a typed frame to measure its wire
            // size arithmetically, then take it back out — no copy, no
            // encoding on the clean path.
            let frame = Frame::response(self.conn_id, request_id, response);
            let down = self.link.charge(frame.wire_size());
            let delivered = done.max(self.down_free) + down;
            self.down_free = delivered;
            let response = match frame.payload {
                FramePayload::Response(response) => response,
                _ => ServerResponse::Error("response frame lost its payload".into()),
            };
            self.landed.insert(request_id, Landed { response, ready_at: delivered });
            return;
        }
        let frame = Frame::response(self.conn_id, request_id, response);
        let mut bytes = self.pool.lease_vec();
        frame.encode_into(&mut bytes);
        let (down, deliveries) = self.link.transmit(&bytes);
        let delivered = done.max(self.down_free) + down;
        self.down_free = delivered;
        for delivery in deliveries {
            match Frame::decode(&delivery.bytes) {
                Ok(received) => {
                    let rid = received.request_id;
                    let FramePayload::Response(response) = received.payload else {
                        continue;
                    };
                    if self.collected.contains(&rid) || self.landed.contains_key(&rid) {
                        self.transport.duplicates += 1;
                        continue;
                    }
                    self.landed
                        .insert(rid, Landed { response, ready_at: delivered + delivery.delay });
                }
                Err(_) => self.transport.corrupt_frames += 1,
            }
        }
        self.pool.recycle(bytes);
    }
}

/// The workstation: a server endpoint reached over a link, with full time
/// and transfer accounting. All blocking entry points are submit-then-wait
/// shims over the pipelined [`Connection`].
pub struct Workstation<E: ServerEndpoint> {
    conn: Connection<E>,
}

impl<E: ServerEndpoint> Workstation<E> {
    /// Connects a workstation to `endpoint` over `link`.
    pub fn new(endpoint: E, link: Link) -> Self {
        Workstation { conn: Connection::new(endpoint, link) }
    }

    /// Connects a workstation whose link misbehaves according to `plan`;
    /// the connection's recovery machinery keeps the blocking entry points
    /// working (lost frames retransmit transparently, exhausted requests
    /// surface as protocol errors).
    pub fn with_faults(endpoint: E, link: Link, plan: FaultPlan) -> Self {
        Workstation { conn: Connection::with_faults(endpoint, link, DEFAULT_WINDOW, plan) }
    }

    /// Recovery accounting (timeouts, retries, corrupt frames, duplicates).
    pub fn transport_stats(&self) -> TransportStats {
        self.conn.transport_stats()
    }

    /// Total simulated time spent so far.
    pub fn elapsed(&self) -> SimDuration {
        self.conn.elapsed()
    }

    /// Payload bytes moved over the link so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.conn.bytes_transferred()
    }

    /// Request/response round trips so far (a batch or pipelined burst
    /// counts as one — that is its point).
    pub fn round_trips(&self) -> u64 {
        self.conn.round_trips()
    }

    /// Resets the accounting (between experiment configurations).
    pub fn reset_accounting(&mut self) {
        self.conn.reset_accounting()
    }

    /// Hands a consumed payload buffer back to the connection's pool (see
    /// [`Connection::recycle_payload`]).
    pub fn recycle_payload(&mut self, buf: Vec<u8>) {
        self.conn.recycle_payload(buf);
    }

    /// The wrapped endpoint.
    pub fn endpoint_mut(&mut self) -> &mut E {
        self.conn.endpoint_mut()
    }

    /// The underlying pipelined connection.
    pub fn connection(&self) -> &Connection<E> {
        &self.conn
    }

    /// Mutable access to the pipelined connection, for callers that want
    /// to overlap submissions instead of blocking per request.
    pub fn connection_mut(&mut self) -> &mut Connection<E> {
        &mut self.conn
    }

    /// Issues one request, charging request transfer + server device time
    /// + response transfer, and surfacing server-side errors.
    pub fn request(&mut self, request: &ServerRequest) -> Result<ServerResponse> {
        let ticket = self.conn.submit_ref(request);
        let (response, _) = self.conn.wait(ticket)?;
        if let ServerResponse::Error(message) = response {
            return Err(MinosError::Protocol(message));
        }
        Ok(response)
    }

    /// Issues several requests as one pipelined burst, returning one
    /// response per request in order. The burst counts as a single round
    /// trip; adjacent span fetches coalesce into one device read and one
    /// merged response transfer; per-request failures come back as inline
    /// [`ServerResponse::Error`] entries rather than failing the call.
    pub fn request_batch(&mut self, requests: Vec<ServerRequest>) -> Result<Vec<ServerResponse>> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.conn.submit(r)).collect();
        tickets.into_iter().map(|t| self.conn.wait(t).map(|(response, _)| response)).collect()
    }

    /// Fetches the whole archived object (descriptor + composition),
    /// decoding it against its archive base.
    pub fn fetch_object(&mut self, id: ObjectId, archive_base: u64) -> Result<ArchivedObject> {
        match self.request(&ServerRequest::FetchObject { id })? {
            ServerResponse::Object(bytes) => {
                ArchivedObject::decode_from_archive(&bytes, archive_base)
            }
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches the window of an image through a view — only the window's
    /// bytes cross the link.
    pub fn fetch_view(&mut self, id: ObjectId, image: usize, rect: Rect) -> Result<Bitmap> {
        match self.request(&ServerRequest::FetchView { id, tag: image.to_string(), rect })? {
            ServerResponse::View(bytes) => DataPayload { kind: DataKind::Image, bytes }.as_image(),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches an object's miniature.
    pub fn fetch_miniature(&mut self, id: ObjectId) -> Result<Bitmap> {
        match self.request(&ServerRequest::FetchMiniature { id })? {
            ServerResponse::Miniature(bytes) => {
                DataPayload { kind: DataKind::Image, bytes }.as_image()
            }
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Evaluates a content query on the server.
    pub fn query(&mut self, keywords: &[&str]) -> Result<Vec<ObjectId>> {
        let request =
            ServerRequest::Query { keywords: keywords.iter().map(|s| s.to_string()).collect() };
        match self.request(&request)? {
            ServerResponse::Hits(ids) => Ok(ids),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Evaluates an exact attribute query on the server.
    pub fn query_attribute(&mut self, name: &str, value: &str) -> Result<Vec<ObjectId>> {
        let request =
            ServerRequest::QueryAttribute { name: name.to_string(), value: value.to_string() };
        match self.request(&request)? {
            ServerResponse::Hits(ids) => Ok(ids),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// The sequential browsing interface of §5: fetches miniatures of the
    /// qualifying objects in order, returning `(id, miniature)` pairs.
    pub fn miniature_stream(&mut self, hits: &[ObjectId]) -> Result<Vec<(ObjectId, Bitmap)>> {
        hits.iter().map(|&id| Ok((id, self.fetch_miniature(id)?))).collect()
    }
}

/// A remote-view browsing session: view geometry on the workstation, pixels
/// fetched window-by-window from the server as the user moves.
#[derive(Clone, Debug)]
pub struct RemoteView {
    object: ObjectId,
    image: usize,
    view: View,
}

impl RemoteView {
    /// Opens a view of `view_size` over image `image` of `object`, whose
    /// full size is `image_size`.
    pub fn open(
        object: ObjectId,
        image: usize,
        image_size: Size,
        view_size: Size,
        step: u32,
    ) -> Result<Self> {
        Ok(RemoteView { object, image, view: View::new(image_size, view_size, step)? })
    }

    /// The current window rectangle.
    pub fn rect(&self) -> Rect {
        self.view.rect()
    }

    /// Mutable view geometry (move/jump/resize, then `fetch`).
    pub fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    /// Fetches the current window's pixels from the server.
    pub fn fetch<E: ServerEndpoint>(&self, ws: &mut Workstation<E>) -> Result<Bitmap> {
        ws.fetch_view(self.object, self.image, self.view.rect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::objects::archived_form;
    use minos_corpus::{medical_report, subway_map_object};
    use minos_image::view::MoveDirection;
    use minos_server::ObjectServer;

    fn server() -> (ObjectServer, u64) {
        let mut server = ObjectServer::new();
        let report = medical_report(ObjectId::new(1), 42);
        let archived = archived_form(&report);
        let receipt = server.publish(report, &archived).unwrap();
        let (map, overlays) =
            subway_map_object(ObjectId::new(2), ObjectId::new(3), ObjectId::new(4), 5);
        server.publish(map.clone(), &archived_form(&map)).unwrap();
        for o in overlays {
            let a = archived_form(&o);
            server.publish(o, &a).unwrap();
        }
        (server, receipt.span.start)
    }

    fn workstation() -> (Workstation<ObjectServer>, u64) {
        let (server, base) = server();
        (Workstation::new(server, Link::ethernet()), base)
    }

    #[test]
    fn fetch_object_round_trips_over_the_link() {
        let (mut ws, base) = workstation();
        let obj = ws.fetch_object(ObjectId::new(1), base).unwrap();
        assert_eq!(obj.descriptor.object_id, ObjectId::new(1));
        assert!(ws.elapsed() > SimDuration::ZERO);
        assert!(ws.bytes_transferred() > 1_000);
    }

    #[test]
    fn queries_travel_cheaply() {
        let (mut ws, _) = workstation();
        let hits = ws.query(&["shadow"]).unwrap();
        assert_eq!(hits, vec![ObjectId::new(1)]);
        assert!(ws.bytes_transferred() < 200, "query moved {} bytes", ws.bytes_transferred());
    }

    #[test]
    fn attribute_queries_over_the_link() {
        let (mut ws, _) = workstation();
        let hits = ws.query_attribute("author", "doctor jones").unwrap();
        assert_eq!(hits, vec![ObjectId::new(1)]);
        assert!(ws.query_attribute("author", "nobody").unwrap().is_empty());
    }

    #[test]
    fn view_browsing_costs_window_bytes_per_move() {
        let (mut ws, _) = workstation();
        let mut rv =
            RemoteView::open(ObjectId::new(2), 0, Size::new(900, 700), Size::new(200, 150), 40)
                .unwrap();
        let w1 = rv.fetch(&mut ws).unwrap();
        assert_eq!(w1.size(), Size::new(200, 150));
        let after_first = ws.bytes_transferred();
        rv.view_mut().step(MoveDirection::Down);
        rv.fetch(&mut ws).unwrap();
        let per_move = ws.bytes_transferred() - after_first;
        let full_image = Bitmap::new(900, 700).byte_size();
        assert!(
            per_move * 10 < full_image,
            "per-move cost {per_move} not ≪ full image {full_image}"
        );
    }

    #[test]
    fn miniature_stream_serves_all_hits() {
        let (mut ws, _) = workstation();
        let hits = ws.query(&["the"]).unwrap_or_default();
        let stream = ws.miniature_stream(&[ObjectId::new(1), ObjectId::new(2)]).unwrap();
        assert_eq!(stream.len(), 2);
        for (_, mini) in &stream {
            assert!(mini.width() <= 160);
        }
        let _ = hits;
    }

    #[test]
    fn server_errors_surface_as_protocol_errors() {
        let (mut ws, _) = workstation();
        assert!(matches!(ws.fetch_miniature(ObjectId::new(404)), Err(MinosError::Protocol(_))));
    }

    #[test]
    fn accounting_resets() {
        let (mut ws, _) = workstation();
        ws.query(&["anything"]).unwrap();
        assert!(ws.bytes_transferred() > 0);
        assert_eq!(ws.round_trips(), 1);
        ws.reset_accounting();
        assert_eq!(ws.bytes_transferred(), 0);
        assert_eq!(ws.elapsed(), SimDuration::ZERO);
        assert_eq!(ws.round_trips(), 0);
    }

    #[test]
    fn batch_is_one_round_trip_with_inline_errors() {
        let (mut ws, _) = workstation();
        let responses = ws
            .request_batch(vec![
                ServerRequest::FetchMiniature { id: ObjectId::new(1) },
                ServerRequest::FetchMiniature { id: ObjectId::new(404) },
                ServerRequest::Query { keywords: vec!["shadow".into()] },
            ])
            .unwrap();
        assert_eq!(ws.round_trips(), 1);
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], ServerResponse::Miniature(_)));
        assert!(matches!(responses[1], ServerResponse::Error(_)));
        assert_eq!(responses[2], ServerResponse::Hits(vec![ObjectId::new(1)]));
    }

    #[test]
    fn batching_beats_serial_round_trips() {
        let (mut serial, _) = workstation();
        let (mut batched, _) = workstation();
        let ids = [ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)];
        for &id in &ids {
            serial.fetch_miniature(id).unwrap();
        }
        batched
            .request_batch(ids.iter().map(|&id| ServerRequest::FetchMiniature { id }).collect())
            .unwrap();
        assert_eq!(serial.round_trips(), 3);
        assert_eq!(batched.round_trips(), 1);
        // Two link latencies saved per avoided round trip.
        assert!(batched.elapsed() < serial.elapsed());
    }

    #[test]
    fn pipelined_submission_overlaps_device_and_link() {
        let (mut serial, _) = workstation();
        let (mut pipelined, _) = workstation();
        let ids = [ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)];
        for &id in &ids {
            serial.fetch_miniature(id).unwrap();
        }
        let conn = pipelined.connection_mut();
        let tickets: Vec<Ticket> =
            ids.iter().map(|&id| conn.submit(ServerRequest::FetchMiniature { id })).collect();
        assert_eq!(conn.in_flight(), 3, "nothing collected yet");
        for ticket in tickets {
            let (response, _) = conn.wait(ticket).unwrap();
            assert!(matches!(response, ServerResponse::Miniature(_)));
        }
        assert_eq!(conn.in_flight(), 0);
        assert_eq!(pipelined.round_trips(), 1, "one burst, one round trip");
        assert!(
            pipelined.elapsed() < serial.elapsed(),
            "pipelined {} vs serial {}",
            pipelined.elapsed(),
            serial.elapsed()
        );
    }

    #[test]
    fn responses_complete_out_of_submission_order() {
        let (mut ws, _) = workstation();
        let conn = ws.connection_mut();
        let slow = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        let fast = conn.submit(ServerRequest::Query { keywords: vec!["shadow".into()] });
        // Collecting the later submission first works: frames carry ids.
        let (hits, _) = conn.wait(fast).unwrap();
        assert_eq!(hits, ServerResponse::Hits(vec![ObjectId::new(1)]));
        let (mini, waited) = conn.wait(slow).unwrap();
        assert!(matches!(mini, ServerResponse::Miniature(_)));
        // The miniature landed before the query was collected (the device
        // served it first), so no further waiting was needed.
        assert_eq!(waited, SimDuration::ZERO);
    }

    #[test]
    fn adjacent_span_submissions_coalesce_on_the_wire() {
        let mut server = ObjectServer::new();
        let data: Vec<u8> = (0..32_768u32).map(|i| (i % 251) as u8).collect();
        let (record, _) = server.archiver_mut().store(ObjectId::new(9), &data).unwrap();
        let chunk = record.span.len() / 4;

        let mut serial = Workstation::new(server, Link::ethernet());
        let spans: Vec<minos_types::ByteSpan> = (0..4)
            .map(|i| minos_types::ByteSpan::at(record.span.start + i * chunk, chunk))
            .collect();
        for &span in &spans {
            serial.request(&ServerRequest::FetchSpan { span }).unwrap();
        }
        let serial_stats = serial.connection().link_stats();
        assert_eq!(serial_stats.messages, 8, "4 requests + 4 responses");

        let mut server = ObjectServer::new();
        server.archiver_mut().store(ObjectId::new(9), &data).unwrap();
        let mut pipelined = Workstation::new(server, Link::ethernet());
        let conn = pipelined.connection_mut();
        let tickets: Vec<Ticket> =
            spans.iter().map(|&span| conn.submit(ServerRequest::FetchSpan { span })).collect();
        for (ticket, span) in tickets.into_iter().zip(&spans) {
            let (response, _) = conn.wait(ticket).unwrap();
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response for {span}");
            };
            let expect: Vec<u8> =
                (span.start..span.end).map(|b| (b as usize % 251) as u8).collect();
            assert_eq!(bytes, expect, "coalesced slice for {span}");
        }
        let stats = pipelined.connection().link_stats();
        assert_eq!(stats.messages, 5, "4 requests + 1 merged response");
        assert!(
            stats.bytes < serial_stats.bytes,
            "merged {} vs serial {} bytes",
            stats.bytes,
            serial_stats.bytes
        );
        assert!(pipelined.elapsed() < serial.elapsed());
    }

    #[test]
    fn waiting_on_an_unknown_ticket_is_a_protocol_error() {
        let (mut ws, _) = workstation();
        let conn = ws.connection_mut();
        let ticket = conn.submit(ServerRequest::Query { keywords: vec!["shadow".into()] });
        assert!(conn.wait(ticket).is_ok());
        assert!(matches!(conn.wait(ticket), Err(MinosError::Protocol(_))), "double collection");
    }

    #[test]
    fn reset_accounting_also_clears_pipeline_state() {
        // Regression: resetting between experiment configurations must
        // clear the link statistics *and* the pipeline (in-flight frames,
        // resource timelines), or the next configuration inherits phantom
        // bytes and a busy downlink.
        let (mut ws, _) = workstation();
        let conn = ws.connection_mut();
        let stale = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(2) });
        assert!(conn.in_flight() > 0);
        assert!(ws.bytes_transferred() > 0);

        ws.reset_accounting();
        assert_eq!(ws.bytes_transferred(), 0);
        assert_eq!(ws.elapsed(), SimDuration::ZERO);
        assert_eq!(ws.round_trips(), 0);
        assert_eq!(ws.connection().in_flight(), 0, "in-flight frames cleared");
        assert_eq!(ws.connection().link_stats().messages, 0);
        assert!(
            matches!(ws.connection_mut().wait(stale), Err(MinosError::Protocol(_))),
            "tickets from before the reset are gone"
        );

        // Post-reset accounting covers exactly the new work: one query up,
        // one hits response down.
        ws.query(&["shadow"]).unwrap();
        assert_eq!(ws.connection().link_stats().messages, 2);
        assert_eq!(ws.round_trips(), 1);
    }

    #[test]
    fn corrupted_frames_are_retransmitted_to_completion() {
        let (faulty_server, base) = server();
        let mut ws = Workstation::with_faults(
            faulty_server,
            Link::ethernet(),
            minos_net::FaultPlan::corrupting(1234, 0.2),
        );
        let (clean_server, _) = server();
        let mut clean = Workstation::new(clean_server, Link::ethernet());
        // Twenty round trips at a 20% per-frame corruption rate: losses are
        // certain, yet every response must come back byte-identical to the
        // clean link's.
        for i in 0..20u64 {
            let id = ObjectId::new(1 + (i % 2));
            let faulty_obj = ws.fetch_object(id, base).unwrap();
            let clean_obj = clean.fetch_object(id, base).unwrap();
            assert_eq!(faulty_obj.descriptor, clean_obj.descriptor, "round trip {i}");
        }
        let stats = ws.transport_stats();
        assert!(stats.corrupt_frames > 0, "the plan did corrupt frames: {stats:?}");
        assert!(stats.retries > 0, "losses were recovered by retransmission: {stats:?}");
        assert_eq!(ws.connection().in_flight(), 0);
    }

    #[test]
    fn exhausted_retries_surface_as_inline_errors() {
        let (server, _) = server();
        let link = Link::ethernet();
        let mut conn = Connection::with_faults(
            server,
            link,
            DEFAULT_WINDOW,
            minos_net::FaultPlan::dropping(7, 1.0),
        )
        .with_recovery(SimDuration::from_millis(100), 2);
        let ticket = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        let (response, waited) = conn.wait(ticket).unwrap();
        assert!(matches!(response, ServerResponse::Error(_)), "got {response:?}");
        assert!(waited > SimDuration::ZERO, "deadlines were actually waited out");
        let stats = conn.transport_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 3, "initial deadline plus one per retry");
        assert_eq!(conn.in_flight(), 0, "the expired slot settled");
    }

    #[test]
    fn duplicate_responses_are_suppressed() {
        let (server, _) = server();
        let plan = minos_net::FaultPlan { seed: 3, duplicate: 1.0, ..minos_net::FaultPlan::none() };
        let mut conn = Connection::with_faults(server, Link::ethernet(), DEFAULT_WINDOW, plan);
        for i in 0..4u64 {
            let ticket =
                conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1 + (i % 2)) });
            let (response, _) = conn.wait(ticket).unwrap();
            assert!(matches!(response, ServerResponse::Miniature(_)), "got {response:?}");
        }
        // Every frame is duplicated in both directions; each duplicate
        // request yields an extra response whose id has already landed or
        // been collected.
        assert!(conn.transport_stats().duplicates >= 4, "{:?}", conn.transport_stats());
        assert_eq!(conn.in_flight(), 0);
    }

    #[test]
    fn full_window_with_lost_responses_is_never_overrun() {
        // Regression for the window-full loop: with every response lost,
        // the old code broke out of the wait loop and opened another slot
        // anyway, overrunning the flow-control bound. The fix forces the
        // oldest slot through the timeout machinery instead.
        let (server, _) = server();
        let mut conn = Connection::with_faults(
            server,
            Link::ethernet(),
            1,
            minos_net::FaultPlan::dropping(9, 1.0),
        )
        .with_recovery(SimDuration::from_millis(50), 1);
        let t1 = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        assert_eq!(conn.in_flight(), 1);
        // The second submit must first settle the first slot (here: by
        // expiring it after its retry budget), never exceed capacity 1.
        let t2 = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(2) });
        assert!(conn.in_flight() <= 1, "window overrun: {} in flight", conn.in_flight());
        let (r1, _) = conn.wait(t1).unwrap();
        assert!(matches!(r1, ServerResponse::Error(_)), "first slot expired: {r1:?}");
        let (r2, _) = conn.wait(t2).unwrap();
        assert!(matches!(r2, ServerResponse::Error(_)));
        assert_eq!(conn.in_flight(), 0);
    }

    #[test]
    fn transport_stats_fully_cleared_by_reset() {
        // Regression: every TransportStats counter and the fault-layer
        // accounting must go back to zero, or the next experiment
        // configuration inherits phantom recovery work.
        let (server, _) = server();
        let mut conn = Connection::with_faults(
            server,
            Link::ethernet(),
            DEFAULT_WINDOW,
            minos_net::FaultPlan::chaos(11, 0.4),
        )
        .with_recovery(SimDuration::from_millis(50), 3);
        for i in 0..12u64 {
            let ticket =
                conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1 + (i % 2)) });
            let _ = conn.wait(ticket);
        }
        let stats = conn.transport_stats();
        assert!(
            stats.timeouts > 0 || stats.corrupt_frames > 0 || stats.duplicates > 0,
            "the chaos plan produced recovery work: {stats:?}"
        );
        // A restart right before the reset adds the epoch counters to the
        // pile the reset must clear.
        conn.endpoint_mut().restart();
        let ticket = conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        let _ = conn.wait(ticket);
        assert!(conn.transport_stats().epoch_resyncs > 0);
        // Queue traffic bumps the endpoint's overload accounting too.
        conn.endpoint_mut()
            .enqueue(Frame::request(9, 1, ServerRequest::FetchMiniature { id: ObjectId::new(1) }))
            .unwrap();
        let _ = conn.endpoint_mut().poll();
        assert!(conn.endpoint().service_stats().queue_high_water > 0);
        conn.reset_accounting();
        assert_eq!(conn.transport_stats(), TransportStats::default());
        assert_eq!(conn.fault_stats(), minos_net::FaultStats::default());
        assert_eq!(conn.link_stats(), minos_net::LinkStats::default());
        assert_eq!(conn.in_flight(), 0);
        assert_eq!(conn.elapsed(), SimDuration::ZERO);
        // The endpoint-side service counters (shed, busy_rejections,
        // high-water marks) are part of the same reset path.
        assert_eq!(*conn.endpoint().service_stats(), minos_server::ServiceStats::default());
    }

    #[test]
    fn server_restart_mid_flight_replays_the_window_byte_identically() {
        let (baseline_server, base) = server();
        let mut baseline = Connection::new(baseline_server, Link::ethernet());
        let spans: Vec<ByteSpan> = (0..3).map(|i| ByteSpan::at(base + i * 512, 512)).collect();
        let expect: Vec<ServerResponse> = spans
            .iter()
            .map(|&span| {
                let t = baseline.submit(ServerRequest::FetchSpan { span });
                baseline.wait(t).unwrap().0
            })
            .collect();

        let (restart_server, _) = server();
        let mut conn = Connection::new(restart_server, Link::ethernet());
        let tickets: Vec<Ticket> =
            spans.iter().map(|&span| conn.submit(ServerRequest::FetchSpan { span })).collect();
        // The window is in flight when the server dies and comes back.
        conn.endpoint_mut().restart();
        let got: Vec<ServerResponse> =
            tickets.into_iter().map(|t| conn.wait(t).unwrap().0).collect();
        assert_eq!(got, expect, "the replayed window must be byte-identical");
        let stats = conn.transport_stats();
        assert_eq!(stats.epoch_resyncs, 1);
        assert_eq!(stats.replays, 3);
        // A restart with nothing in flight costs a handshake and replays
        // nothing — and the pipeline keeps serving.
        conn.endpoint_mut().restart();
        let t = conn.submit(ServerRequest::FetchSpan { span: spans[0] });
        assert_eq!(conn.wait(t).unwrap().0, expect[0]);
        assert_eq!(conn.transport_stats().epoch_resyncs, 2);
        assert_eq!(conn.transport_stats().replays, 3);
    }

    #[test]
    fn restarts_under_chaos_never_wedge_the_pipeline() {
        let (server, _) = server();
        let mut conn = Connection::with_faults(
            server,
            Link::ethernet(),
            4,
            minos_net::FaultPlan::chaos(23, 0.3),
        )
        .with_recovery(SimDuration::from_millis(50), 3);
        for round in 0..6u64 {
            let tickets: Vec<Ticket> = (0..3u64)
                .map(|i| {
                    conn.submit(ServerRequest::FetchMiniature {
                        id: ObjectId::new(1 + ((round + i) % 2)),
                    })
                })
                .collect();
            if round % 2 == 0 {
                conn.endpoint_mut().restart();
            }
            for t in tickets {
                let (resp, _) = conn.wait(t).unwrap();
                assert!(
                    matches!(resp, ServerResponse::Miniature(_) | ServerResponse::Error(_)),
                    "every slot settles with data or a typed error: {resp:?}"
                );
            }
        }
        assert!(conn.transport_stats().epoch_resyncs >= 3);
        assert_eq!(conn.in_flight(), 0);
    }

    #[test]
    fn clean_plan_is_byte_identical_to_a_bare_link() {
        let (bare_server, _) = server();
        let mut bare = Workstation::new(bare_server, Link::ethernet());
        let (planned_server, _) = server();
        let mut clean_plan = Workstation::with_faults(
            planned_server,
            Link::ethernet(),
            minos_net::FaultPlan::none(),
        );
        for ws in [&mut bare, &mut clean_plan] {
            ws.query(&["shadow"]).unwrap();
            ws.fetch_miniature(ObjectId::new(2)).unwrap();
        }
        assert_eq!(bare.connection().link_stats(), clean_plan.connection().link_stats());
        assert_eq!(bare.elapsed(), clean_plan.elapsed());
        assert_eq!(bare.transport_stats(), clean_plan.transport_stats());
        // No fault machinery engaged: the heap-carrying query rides the
        // pooled encode path (one warmup miss), but nothing times out,
        // retries, or replays on a clean plan.
        let stats = clean_plan.transport_stats();
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.corrupt_frames, 0);
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.replays, 0);
    }

    #[test]
    fn blocking_window_degenerates_to_serial_timing() {
        let (server, _) = server();
        let mut one = Connection::with_window(server, Link::ethernet(), 1);
        let t1 = one.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1) });
        let t2 = one.submit(ServerRequest::FetchMiniature { id: ObjectId::new(2) });
        // The second submit had to wait out the first response.
        assert!(one.elapsed() > SimDuration::ZERO);
        let (_, waited) = one.wait(t1).unwrap();
        assert_eq!(waited, SimDuration::ZERO, "already waited out by the window");
        assert!(one.wait(t2).is_ok());
    }

    #[test]
    fn retransmit_buffers_come_from_the_pool_after_warmup() {
        // Regression for the per-message allocation bug: on a faulty link
        // every submit used to build a fresh frame payload (and every
        // retransmit re-encoded it). Now the frame is encoded once into a
        // pooled buffer and the buffer is recycled when the slot retires,
        // so steady-state traffic is served from pool hits.
        let (server, _) = server();
        let mut conn = Connection::with_faults(
            server,
            Link::ethernet(),
            DEFAULT_WINDOW,
            minos_net::FaultPlan::chaos(31, 0.3),
        )
        .with_recovery(SimDuration::from_millis(50), 3);
        for i in 0..16u64 {
            let ticket =
                conn.submit(ServerRequest::FetchMiniature { id: ObjectId::new(1 + (i % 2)) });
            let _ = conn.wait(ticket);
        }
        let stats = conn.transport_stats();
        assert!(stats.pool_misses > 0, "the first lease has nothing to reuse: {stats:?}");
        assert!(
            stats.pool_hits > stats.pool_misses,
            "steady state must re-serve recycled buffers: {stats:?}"
        );
        assert_eq!(
            stats.payload_allocs, stats.pool_misses,
            "every fresh allocation on this path is a pool miss: {stats:?}"
        );
        conn.reset_accounting();
        let cleared = conn.transport_stats();
        assert_eq!(cleared.pool_hits, 0);
        assert_eq!(cleared.pool_misses, 0);
        assert_eq!(cleared.payload_allocs, 0);
    }

    #[test]
    fn coalesced_span_payloads_recycle_through_the_pool() {
        // A coalesced run slices per-request payloads out of one merged
        // response. Those slices lease from the pool; a caller that hands
        // consumed payloads back via recycle_payload keeps the allocation
        // count flat across rounds.
        let (server, base) = server();
        let mut conn = Connection::new(server, Link::ethernet());
        let spans: Vec<ByteSpan> = (0..3).map(|i| ByteSpan::at(base + i * 512, 512)).collect();
        let mut misses_after_first_round = 0;
        for round in 0..3 {
            let tickets: Vec<Ticket> =
                spans.iter().map(|&span| conn.submit(ServerRequest::FetchSpan { span })).collect();
            for t in tickets {
                let (response, _) = conn.wait(t).unwrap();
                match response {
                    ServerResponse::Span(bytes) => conn.recycle_payload(bytes),
                    other => panic!("expected span bytes, got {other:?}"),
                }
            }
            if round == 0 {
                misses_after_first_round = conn.transport_stats().pool_misses;
                assert!(misses_after_first_round > 0);
            }
        }
        let stats = conn.transport_stats();
        assert_eq!(
            stats.pool_misses, misses_after_first_round,
            "later rounds must not allocate: {stats:?}"
        );
        assert!(stats.pool_hits >= 6, "rounds two and three are all pool hits: {stats:?}");
    }
}

/// The §5 sequential browsing interface over query hits: the user walks a
/// strip of miniatures, then selects one for full presentation. ("When the
/// user selects the miniature of an object the multimedia object
/// presentation manager undertakes the responsibility to present the
/// information of the selected object.")
#[derive(Clone, Debug)]
pub struct MiniatureBrowser {
    hits: Vec<ObjectId>,
    miniatures: Vec<Bitmap>,
    current: usize,
}

impl MiniatureBrowser {
    /// Runs a content query and streams the qualifying miniatures.
    pub fn query<E: ServerEndpoint>(
        ws: &mut Workstation<E>,
        keywords: &[&str],
    ) -> Result<MiniatureBrowser> {
        let hits = ws.query(keywords)?;
        let stream = ws.miniature_stream(&hits)?;
        Ok(MiniatureBrowser {
            hits,
            miniatures: stream.into_iter().map(|(_, m)| m).collect(),
            current: 0,
        })
    }

    /// Number of qualifying objects.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The miniature currently in front of the user, with its object id.
    pub fn current(&self) -> Option<(ObjectId, &Bitmap)> {
        self.hits.get(self.current).map(|&id| (id, &self.miniatures[self.current]))
    }

    /// Moves to the next miniature (clamped at the end).
    pub fn advance(&mut self) -> Option<(ObjectId, &Bitmap)> {
        if self.current + 1 < self.hits.len() {
            self.current += 1;
        }
        self.current()
    }

    /// Moves back one miniature (clamped at the start).
    pub fn previous(&mut self) -> Option<(ObjectId, &Bitmap)> {
        self.current = self.current.saturating_sub(1);
        self.current()
    }

    /// Selects the current miniature for full presentation.
    pub fn select(&self) -> Option<ObjectId> {
        self.hits.get(self.current).copied()
    }
}

/// A server-backed object store: browsing sessions resolve relevant-object
/// targets through the workstation, charging the link for each object's
/// archived size — the architecture of §5 end to end.
impl crate::session::ObjectStore for Workstation<ObjectServer> {
    fn fetch(&mut self, id: ObjectId) -> Result<minos_object::MultimediaObject> {
        // Charge the transfer of the archived form over the link.
        let request = ServerRequest::FetchObject { id };
        let response = self.request(&request)?;
        let ServerResponse::Object(_) = response else {
            return Err(MinosError::Protocol(format!("unexpected response to {request:?}")));
        };
        // The typed form is reconstructed workstation-side; the server's
        // resident copy stands in for that decode step.
        self.endpoint_mut()
            .resident_object(id)
            .cloned()
            .ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use crate::session::BrowsingSession;
    use minos_corpus::objects::archived_form;
    use minos_text::PaginateConfig;
    use minos_types::SimDuration;

    #[test]
    fn miniature_browser_query_to_selection() {
        let mut server = ObjectServer::new();
        for i in 0..4u64 {
            let obj = minos_corpus::office_document(ObjectId::new(i + 1), i, 2);
            server.publish(obj.clone(), &archived_form(&obj)).unwrap();
        }
        let mut ws = Workstation::new(server, Link::ethernet());
        let mut browser = MiniatureBrowser::query(&mut ws, &["chapter"]).unwrap();
        assert_eq!(browser.len(), 4);
        let (first, mini) = browser.current().unwrap();
        assert_eq!(first, ObjectId::new(1));
        assert!(!mini.is_blank());
        browser.advance();
        browser.advance();
        assert_eq!(browser.select(), Some(ObjectId::new(3)));
        browser.previous();
        assert_eq!(browser.select(), Some(ObjectId::new(2)));
        // Clamping at both ends.
        browser.previous();
        browser.previous();
        assert_eq!(browser.select(), Some(ObjectId::new(1)));
        for _ in 0..10 {
            browser.advance();
        }
        assert_eq!(browser.select(), Some(ObjectId::new(4)));
    }

    #[test]
    fn empty_query_result_is_empty_browser() {
        let server = ObjectServer::new();
        let mut ws = Workstation::new(server, Link::ethernet());
        let browser = MiniatureBrowser::query(&mut ws, &["nothing"]).unwrap();
        assert!(browser.is_empty());
        assert_eq!(browser.current(), None);
        assert_eq!(browser.select(), None);
    }

    #[test]
    fn session_over_the_server_store_follows_relevant_links() {
        let (parent, overlays) = minos_corpus::subway_map_object(
            ObjectId::new(1),
            ObjectId::new(2),
            ObjectId::new(3),
            7,
        );
        let mut server = ObjectServer::new();
        server.publish(parent.clone(), &archived_form(&parent)).unwrap();
        for o in overlays {
            let a = archived_form(&o);
            server.publish(o, &a).unwrap();
        }
        let ws = Workstation::new(server, Link::ethernet());
        let (mut session, _) = BrowsingSession::open(
            ws,
            ObjectId::new(1),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        session.apply(crate::command::BrowseCommand::SelectRelevant(0)).unwrap();
        assert_eq!(session.object().id, ObjectId::new(2));
        session.apply(crate::command::BrowseCommand::ReturnFromRelevant).unwrap();
        assert_eq!(session.object().id, ObjectId::new(1));
    }
}
