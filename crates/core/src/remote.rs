//! The workstation side of the architecture.
//!
//! "The multimedia object presentation manager resides in the user's
//! workstation and requests the appropriate pieces of information from the
//! multimedia object server subsystems." (§5)
//!
//! A [`Workstation`] wraps a server endpoint behind a link model and
//! accounts for every simulated microsecond and byte: request transfer,
//! server device time, response transfer. Experiments E5 (views vs whole
//! images) and E6 (miniature-first browsing) read their numbers from here.

use minos_image::{Bitmap, View};
use minos_net::{Link, ServerRequest, ServerResponse};
use minos_object::{ArchivedObject, DataKind, DataPayload};
use minos_server::ObjectServer;
use minos_types::{MinosError, ObjectId, Rect, Result, SimClock, SimDuration, Size};

/// Anything that can answer protocol requests with a device-time charge.
pub trait ServerEndpoint {
    /// Handles one request.
    fn handle(&mut self, request: &ServerRequest) -> (ServerResponse, SimDuration);
}

impl ServerEndpoint for ObjectServer {
    fn handle(&mut self, request: &ServerRequest) -> (ServerResponse, SimDuration) {
        ObjectServer::handle(self, request)
    }
}

/// The workstation: a server endpoint reached over a link, with full time
/// and transfer accounting.
pub struct Workstation<E: ServerEndpoint> {
    endpoint: E,
    link: Link,
    clock: SimClock,
    round_trips: u64,
}

impl<E: ServerEndpoint> Workstation<E> {
    /// Connects a workstation to `endpoint` over `link`.
    pub fn new(endpoint: E, link: Link) -> Self {
        Workstation { endpoint, link, clock: SimClock::new(), round_trips: 0 }
    }

    /// Total simulated time spent so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().since(minos_types::SimInstant::EPOCH)
    }

    /// Payload bytes moved over the link so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.link.stats().bytes
    }

    /// Request/response round trips so far (a batch counts as one — that is
    /// its point).
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Resets the accounting (between experiment configurations).
    pub fn reset_accounting(&mut self) {
        self.link.reset_stats();
        self.clock = SimClock::new();
        self.round_trips = 0;
    }

    /// The wrapped endpoint.
    pub fn endpoint_mut(&mut self) -> &mut E {
        &mut self.endpoint
    }

    /// Issues one request, charging request transfer + server device time
    /// + response transfer, and surfacing server-side errors.
    pub fn request(&mut self, request: &ServerRequest) -> Result<ServerResponse> {
        self.round_trips += 1;
        let up = self.link.transfer(request.wire_size());
        self.clock.advance(up);
        let (response, device_time) = self.endpoint.handle(request);
        self.clock.advance(device_time);
        let down = self.link.transfer(response.wire_size());
        self.clock.advance(down);
        if let ServerResponse::Error(message) = response {
            return Err(MinosError::Protocol(message));
        }
        Ok(response)
    }

    /// Issues several requests in one batched round trip, returning one
    /// response per request in order. The link latency is paid once for
    /// the whole batch; per-request failures come back as inline
    /// [`ServerResponse::Error`] entries rather than failing the call.
    pub fn request_batch(&mut self, requests: Vec<ServerRequest>) -> Result<Vec<ServerResponse>> {
        let expected = requests.len();
        match self.request(&ServerRequest::Batch { requests })? {
            ServerResponse::Batch(responses) if responses.len() == expected => Ok(responses),
            ServerResponse::Batch(responses) => Err(MinosError::Protocol(format!(
                "batch answered {} of {expected} requests",
                responses.len()
            ))),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches the whole archived object (descriptor + composition),
    /// decoding it against its archive base.
    pub fn fetch_object(&mut self, id: ObjectId, archive_base: u64) -> Result<ArchivedObject> {
        match self.request(&ServerRequest::FetchObject { id })? {
            ServerResponse::Object(bytes) => {
                ArchivedObject::decode_from_archive(&bytes, archive_base)
            }
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches the window of an image through a view — only the window's
    /// bytes cross the link.
    pub fn fetch_view(&mut self, id: ObjectId, image: usize, rect: Rect) -> Result<Bitmap> {
        match self.request(&ServerRequest::FetchView { id, tag: image.to_string(), rect })? {
            ServerResponse::View(bytes) => DataPayload { kind: DataKind::Image, bytes }.as_image(),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches an object's miniature.
    pub fn fetch_miniature(&mut self, id: ObjectId) -> Result<Bitmap> {
        match self.request(&ServerRequest::FetchMiniature { id })? {
            ServerResponse::Miniature(bytes) => {
                DataPayload { kind: DataKind::Image, bytes }.as_image()
            }
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Evaluates a content query on the server.
    pub fn query(&mut self, keywords: &[&str]) -> Result<Vec<ObjectId>> {
        let request =
            ServerRequest::Query { keywords: keywords.iter().map(|s| s.to_string()).collect() };
        match self.request(&request)? {
            ServerResponse::Hits(ids) => Ok(ids),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Evaluates an exact attribute query on the server.
    pub fn query_attribute(&mut self, name: &str, value: &str) -> Result<Vec<ObjectId>> {
        let request =
            ServerRequest::QueryAttribute { name: name.to_string(), value: value.to_string() };
        match self.request(&request)? {
            ServerResponse::Hits(ids) => Ok(ids),
            other => Err(MinosError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// The sequential browsing interface of §5: fetches miniatures of the
    /// qualifying objects in order, returning `(id, miniature)` pairs.
    pub fn miniature_stream(&mut self, hits: &[ObjectId]) -> Result<Vec<(ObjectId, Bitmap)>> {
        hits.iter().map(|&id| Ok((id, self.fetch_miniature(id)?))).collect()
    }
}

/// A remote-view browsing session: view geometry on the workstation, pixels
/// fetched window-by-window from the server as the user moves.
#[derive(Clone, Debug)]
pub struct RemoteView {
    object: ObjectId,
    image: usize,
    view: View,
}

impl RemoteView {
    /// Opens a view of `view_size` over image `image` of `object`, whose
    /// full size is `image_size`.
    pub fn open(
        object: ObjectId,
        image: usize,
        image_size: Size,
        view_size: Size,
        step: u32,
    ) -> Result<Self> {
        Ok(RemoteView { object, image, view: View::new(image_size, view_size, step)? })
    }

    /// The current window rectangle.
    pub fn rect(&self) -> Rect {
        self.view.rect()
    }

    /// Mutable view geometry (move/jump/resize, then `fetch`).
    pub fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    /// Fetches the current window's pixels from the server.
    pub fn fetch<E: ServerEndpoint>(&self, ws: &mut Workstation<E>) -> Result<Bitmap> {
        ws.fetch_view(self.object, self.image, self.view.rect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::objects::archived_form;
    use minos_corpus::{medical_report, subway_map_object};
    use minos_image::view::MoveDirection;
    use minos_server::ObjectServer;

    fn server() -> (ObjectServer, u64) {
        let mut server = ObjectServer::new();
        let report = medical_report(ObjectId::new(1), 42);
        let archived = archived_form(&report);
        let receipt = server.publish(report, &archived).unwrap();
        let (map, overlays) =
            subway_map_object(ObjectId::new(2), ObjectId::new(3), ObjectId::new(4), 5);
        server.publish(map.clone(), &archived_form(&map)).unwrap();
        for o in overlays {
            let a = archived_form(&o);
            server.publish(o, &a).unwrap();
        }
        (server, receipt.span.start)
    }

    fn workstation() -> (Workstation<ObjectServer>, u64) {
        let (server, base) = server();
        (Workstation::new(server, Link::ethernet()), base)
    }

    #[test]
    fn fetch_object_round_trips_over_the_link() {
        let (mut ws, base) = workstation();
        let obj = ws.fetch_object(ObjectId::new(1), base).unwrap();
        assert_eq!(obj.descriptor.object_id, ObjectId::new(1));
        assert!(ws.elapsed() > SimDuration::ZERO);
        assert!(ws.bytes_transferred() > 1_000);
    }

    #[test]
    fn queries_travel_cheaply() {
        let (mut ws, _) = workstation();
        let hits = ws.query(&["shadow"]).unwrap();
        assert_eq!(hits, vec![ObjectId::new(1)]);
        assert!(ws.bytes_transferred() < 200, "query moved {} bytes", ws.bytes_transferred());
    }

    #[test]
    fn attribute_queries_over_the_link() {
        let (mut ws, _) = workstation();
        let hits = ws.query_attribute("author", "doctor jones").unwrap();
        assert_eq!(hits, vec![ObjectId::new(1)]);
        assert!(ws.query_attribute("author", "nobody").unwrap().is_empty());
    }

    #[test]
    fn view_browsing_costs_window_bytes_per_move() {
        let (mut ws, _) = workstation();
        let mut rv =
            RemoteView::open(ObjectId::new(2), 0, Size::new(900, 700), Size::new(200, 150), 40)
                .unwrap();
        let w1 = rv.fetch(&mut ws).unwrap();
        assert_eq!(w1.size(), Size::new(200, 150));
        let after_first = ws.bytes_transferred();
        rv.view_mut().step(MoveDirection::Down);
        rv.fetch(&mut ws).unwrap();
        let per_move = ws.bytes_transferred() - after_first;
        let full_image = Bitmap::new(900, 700).byte_size();
        assert!(
            per_move * 10 < full_image,
            "per-move cost {per_move} not ≪ full image {full_image}"
        );
    }

    #[test]
    fn miniature_stream_serves_all_hits() {
        let (mut ws, _) = workstation();
        let hits = ws.query(&["the"]).unwrap_or_default();
        let stream = ws.miniature_stream(&[ObjectId::new(1), ObjectId::new(2)]).unwrap();
        assert_eq!(stream.len(), 2);
        for (_, mini) in &stream {
            assert!(mini.width() <= 160);
        }
        let _ = hits;
    }

    #[test]
    fn server_errors_surface_as_protocol_errors() {
        let (mut ws, _) = workstation();
        assert!(matches!(ws.fetch_miniature(ObjectId::new(404)), Err(MinosError::Protocol(_))));
    }

    #[test]
    fn accounting_resets() {
        let (mut ws, _) = workstation();
        ws.query(&["anything"]).unwrap();
        assert!(ws.bytes_transferred() > 0);
        assert_eq!(ws.round_trips(), 1);
        ws.reset_accounting();
        assert_eq!(ws.bytes_transferred(), 0);
        assert_eq!(ws.elapsed(), SimDuration::ZERO);
        assert_eq!(ws.round_trips(), 0);
    }

    #[test]
    fn batch_is_one_round_trip_with_inline_errors() {
        let (mut ws, _) = workstation();
        let responses = ws
            .request_batch(vec![
                ServerRequest::FetchMiniature { id: ObjectId::new(1) },
                ServerRequest::FetchMiniature { id: ObjectId::new(404) },
                ServerRequest::Query { keywords: vec!["shadow".into()] },
            ])
            .unwrap();
        assert_eq!(ws.round_trips(), 1);
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], ServerResponse::Miniature(_)));
        assert!(matches!(responses[1], ServerResponse::Error(_)));
        assert_eq!(responses[2], ServerResponse::Hits(vec![ObjectId::new(1)]));
    }

    #[test]
    fn batching_beats_serial_round_trips() {
        let (mut serial, _) = workstation();
        let (mut batched, _) = workstation();
        let ids = [ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)];
        for &id in &ids {
            serial.fetch_miniature(id).unwrap();
        }
        batched
            .request_batch(ids.iter().map(|&id| ServerRequest::FetchMiniature { id }).collect())
            .unwrap();
        assert_eq!(serial.round_trips(), 3);
        assert_eq!(batched.round_trips(), 1);
        // Two link latencies saved per avoided round trip.
        assert!(batched.elapsed() < serial.elapsed());
    }
}

/// The §5 sequential browsing interface over query hits: the user walks a
/// strip of miniatures, then selects one for full presentation. ("When the
/// user selects the miniature of an object the multimedia object
/// presentation manager undertakes the responsibility to present the
/// information of the selected object.")
#[derive(Clone, Debug)]
pub struct MiniatureBrowser {
    hits: Vec<ObjectId>,
    miniatures: Vec<Bitmap>,
    current: usize,
}

impl MiniatureBrowser {
    /// Runs a content query and streams the qualifying miniatures.
    pub fn query<E: ServerEndpoint>(
        ws: &mut Workstation<E>,
        keywords: &[&str],
    ) -> Result<MiniatureBrowser> {
        let hits = ws.query(keywords)?;
        let stream = ws.miniature_stream(&hits)?;
        Ok(MiniatureBrowser {
            hits,
            miniatures: stream.into_iter().map(|(_, m)| m).collect(),
            current: 0,
        })
    }

    /// Number of qualifying objects.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The miniature currently in front of the user, with its object id.
    pub fn current(&self) -> Option<(ObjectId, &Bitmap)> {
        self.hits.get(self.current).map(|&id| (id, &self.miniatures[self.current]))
    }

    /// Moves to the next miniature (clamped at the end).
    pub fn advance(&mut self) -> Option<(ObjectId, &Bitmap)> {
        if self.current + 1 < self.hits.len() {
            self.current += 1;
        }
        self.current()
    }

    /// Moves back one miniature (clamped at the start).
    pub fn previous(&mut self) -> Option<(ObjectId, &Bitmap)> {
        self.current = self.current.saturating_sub(1);
        self.current()
    }

    /// Selects the current miniature for full presentation.
    pub fn select(&self) -> Option<ObjectId> {
        self.hits.get(self.current).copied()
    }
}

/// A server-backed object store: browsing sessions resolve relevant-object
/// targets through the workstation, charging the link for each object's
/// archived size — the architecture of §5 end to end.
impl crate::session::ObjectStore for Workstation<ObjectServer> {
    fn fetch(&mut self, id: ObjectId) -> Result<minos_object::MultimediaObject> {
        // Charge the transfer of the archived form over the link.
        let request = ServerRequest::FetchObject { id };
        let response = self.request(&request)?;
        let ServerResponse::Object(_) = response else {
            return Err(MinosError::Protocol(format!("unexpected response to {request:?}")));
        };
        // The typed form is reconstructed workstation-side; the server's
        // resident copy stands in for that decode step.
        self.endpoint_mut()
            .resident_object(id)
            .cloned()
            .ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use crate::session::BrowsingSession;
    use minos_corpus::objects::archived_form;
    use minos_text::PaginateConfig;
    use minos_types::SimDuration;

    #[test]
    fn miniature_browser_query_to_selection() {
        let mut server = ObjectServer::new();
        for i in 0..4u64 {
            let obj = minos_corpus::office_document(ObjectId::new(i + 1), i, 2);
            server.publish(obj.clone(), &archived_form(&obj)).unwrap();
        }
        let mut ws = Workstation::new(server, Link::ethernet());
        let mut browser = MiniatureBrowser::query(&mut ws, &["chapter"]).unwrap();
        assert_eq!(browser.len(), 4);
        let (first, mini) = browser.current().unwrap();
        assert_eq!(first, ObjectId::new(1));
        assert!(!mini.is_blank());
        browser.advance();
        browser.advance();
        assert_eq!(browser.select(), Some(ObjectId::new(3)));
        browser.previous();
        assert_eq!(browser.select(), Some(ObjectId::new(2)));
        // Clamping at both ends.
        browser.previous();
        browser.previous();
        assert_eq!(browser.select(), Some(ObjectId::new(1)));
        for _ in 0..10 {
            browser.advance();
        }
        assert_eq!(browser.select(), Some(ObjectId::new(4)));
    }

    #[test]
    fn empty_query_result_is_empty_browser() {
        let server = ObjectServer::new();
        let mut ws = Workstation::new(server, Link::ethernet());
        let browser = MiniatureBrowser::query(&mut ws, &["nothing"]).unwrap();
        assert!(browser.is_empty());
        assert_eq!(browser.current(), None);
        assert_eq!(browser.select(), None);
    }

    #[test]
    fn session_over_the_server_store_follows_relevant_links() {
        let (parent, overlays) = minos_corpus::subway_map_object(
            ObjectId::new(1),
            ObjectId::new(2),
            ObjectId::new(3),
            7,
        );
        let mut server = ObjectServer::new();
        server.publish(parent.clone(), &archived_form(&parent)).unwrap();
        for o in overlays {
            let a = archived_form(&o);
            server.publish(o, &a).unwrap();
        }
        let ws = Workstation::new(server, Link::ethernet());
        let (mut session, _) = BrowsingSession::open(
            ws,
            ObjectId::new(1),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        session.apply(crate::command::BrowseCommand::SelectRelevant(0)).unwrap();
        assert_eq!(session.object().id, ObjectId::new(2));
        session.apply(crate::command::BrowseCommand::ReturnFromRelevant).unwrap();
        assert_eq!(session.object().id, ObjectId::new(1));
    }
}
