//! The multimedia object presentation manager — the paper's primary
//! contribution.
//!
//! "The presentation manager provides functions for effective multimedia
//! information presentation and browsing. … In addition the presentation
//! manager presents a symmetric functionality for presentation of text and
//! voice information." (§1)
//!
//! * [`command`] — the symmetric browsing command vocabulary and the
//!   events browsing emits;
//! * [`visual`] — the visual-mode engine: visual pages, logical and
//!   pattern browsing, pinned visual logical messages (Figures 3–4);
//! * [`audio`] — the audio-mode engine: audio pages, pause rewind,
//!   recognized-utterance pattern browsing, voice-anchored messages;
//! * [`session`] — the browsing session: driving-mode dispatch, menu
//!   derivation, relevant-object navigation with mode restore;
//! * [`transparency`] — transparency-set presentation (Figures 5–8);
//! * [`process`] — process simulation with audio-gated page turns
//!   (Figures 9–10);
//! * [`remote`] — the workstation side of the server protocol: remote
//!   views, miniature browsing, transfer accounting;
//! * [`prefetch`] — anticipatory prefetching: prediction policies, the
//!   batched prefetch pipeline, and stall-time accounting (§5);
//! * [`kernel`] — the discrete-event simulation kernel: hierarchical
//!   timer wheel, typed wake events, ready queue, and trace ring;
//! * [`sched`] — the multi-session scheduler: N concurrent sessions over
//!   one shared link, event-driven with audio-first deadlines (§5);
//! * [`fleet`] — the sharded object-server fleet: rendezvous placement,
//!   k-way replication, and replica failover over the epoch handshake
//!   (§2, §5);
//! * [`chaos`] — the chaos-schedule orchestrator: declarative failure
//!   schedules (crashes, restarts, slowdowns, partitions, bit rot)
//!   driven through the self-healing fleet — health heartbeats,
//!   proactive re-replication, scrub with read-repair, and hedged
//!   audio reads.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audio;
pub mod chaos;
pub mod command;
pub mod compose;
pub mod fleet;
pub mod kernel;
pub mod prefetch;
pub mod process;
pub mod remote;
pub mod sched;
pub mod session;
pub mod tour;
pub mod transparency;
pub mod visual;

pub use audio::AudioEngine;
pub use chaos::{
    simulate_chaos_workload, ChaosEvent, ChaosReport, ChaosSchedule, ChaosStats,
    ChaosWorkloadConfig,
};
pub use command::{BrowseCommand, BrowseEvent};
pub use compose::{compose_screen, resolve_figure};
pub use fleet::{
    rendezvous_order, simulate_fleet_workload, Fleet, FleetConnection, FleetReport, FleetRestart,
    FleetStats, FleetTicket, FleetWorkloadConfig, HealthMonitor, HealthStats, MemberHealth,
    PageChecksums, Placement, RepairQueue, RepairReceipt, RepairStats, RepairTask, Replica,
    ScrubReport,
};
pub use kernel::{Kernel, KernelEvent, KernelStats, TimerId};
pub use prefetch::{page_spans, AnticipatingStore, PrefetchBuffer, PrefetchStats, Prefetcher};
pub use process::{ProcessRunner, ProcessState};
pub use remote::{
    Connection, MiniatureBrowser, ServerEndpoint, Ticket, TransportStats, Workstation,
};
pub use sched::{
    simulate_faulty_page_workload, simulate_overload_workload, simulate_page_workload,
    simulate_sched_workload, FaultyWorkloadReport, HubStore, OverloadReport, SchedReport,
    SessionKey, SessionScheduler, TransportMode, WorkloadReport,
};
pub use session::{BrowsingSession, ObjectStore, SessionCheckpoint};
pub use tour::{TourEvent, TourRunner};
pub use transparency::TransparencyViewer;
pub use visual::{VisualEngine, VisualView};
