//! Anticipatory prefetching — the §5 continuity machinery.
//!
//! "The multimedia object presentation manager tries to anticipate the
//! user's requests and prefetch the appropriate pieces of information."
//! Presentation positions are strong predictors: a reader's next text page,
//! a playback's next audio pages, a tour's next stop, a roaming view's next
//! window, the relevant objects whose indicators are on screen. This module
//! turns those predictions into *one* batched round trip per lookahead
//! window and overlaps the transfer with the user's dwell on the current
//! material, so the continuity metric — stall time — shrinks as the
//! prefetch depth grows.
//!
//! Three pieces cooperate:
//!
//! * [`Prefetcher`] maps a presentation position to the next `depth`
//!   requests (the prediction policies).
//! * [`PrefetchBuffer`] is the client-side pipeline: it primes the buffer
//!   at open, issues prediction batches whenever the link is free, hides
//!   their cost behind presentation dwell via
//!   [`SimClock::advance_overlapped`], and accounts hits, misses, wasted
//!   prefetches, opening latency, and stall.
//! * [`AnticipatingStore`] plugs the pipeline under a
//!   [`BrowsingSession`](crate::session::BrowsingSession) so visible
//!   relevant-object indicators are fetched while the user is still
//!   reading.
//!
//! A wrong prediction is only ever wasted transfer: presented content is
//! read through the same request/response types, so the bytes a step
//! returns are identical to an unpredicted demand fetch.

use crate::kernel::{Kernel, KernelEvent, KernelStats};
use crate::remote::{ServerEndpoint, Workstation};
use crate::session::ObjectStore;
use minos_image::view::MoveDirection;
use minos_image::View;
use minos_net::{ServerRequest, ServerResponse};
use minos_object::MultimediaObject;
use minos_server::ObjectServer;
use minos_types::{
    ByteSpan, Encoder, MinosError, ObjectId, Result, SimClock, SimDuration, SimInstant,
};
use std::collections::HashMap;

/// Divides an archived record into `pages` contiguous spans — the transfer
/// plan for page-sequential presentation (text pages in reading order,
/// audio pages in play order). Consecutive spans tile the record exactly,
/// so a batch of them coalesces into one device read server-side.
pub fn page_spans(record: ByteSpan, pages: usize) -> Vec<ByteSpan> {
    assert!(pages > 0, "a record has at least one page");
    let base = record.len() / pages as u64;
    let remainder = record.len() % pages as u64;
    let mut start = record.start;
    (0..pages as u64)
        .map(|i| {
            // The first `remainder` pages carry one extra byte so the
            // spans tile the record without gaps.
            let size = base + u64::from(i < remainder);
            let span = ByteSpan::at(start, size);
            start += size;
            span
        })
        .collect()
}

/// The prediction policies: given where the presentation is, what will the
/// user need next?
#[derive(Clone, Copy, Debug)]
pub struct Prefetcher {
    depth: usize,
}

impl Prefetcher {
    /// A prefetcher looking `depth` resources ahead. Depth 0 disables
    /// anticipation (every fetch is a demand fetch).
    pub fn new(depth: usize) -> Self {
        Prefetcher { depth }
    }

    /// The lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Sequential reading/playback: the next `depth` page spans after
    /// `current`.
    pub fn predict_pages(&self, pages: &[ByteSpan], current: usize) -> Vec<ServerRequest> {
        pages
            .iter()
            .skip(current + 1)
            .take(self.depth)
            .map(|&span| ServerRequest::FetchSpan { span })
            .collect()
    }

    /// Tour playing: the windows of the next `depth` stops.
    pub fn predict_tour(
        &self,
        object: ObjectId,
        image: usize,
        stop_views: &[minos_types::Rect],
        current: usize,
    ) -> Vec<ServerRequest> {
        stop_views
            .iter()
            .skip(current + 1)
            .take(self.depth)
            .map(|&rect| ServerRequest::FetchView { id: object, tag: image.to_string(), rect })
            .collect()
    }

    /// Roaming view: assume the user keeps moving in `direction` and
    /// predict the next `depth` windows, stopping early once the view pins
    /// at the image edge.
    pub fn predict_view(
        &self,
        object: ObjectId,
        image: usize,
        view: &View,
        direction: MoveDirection,
    ) -> Vec<ServerRequest> {
        let mut probe = *view;
        let mut out = Vec::new();
        for _ in 0..self.depth {
            if !probe.step(direction) {
                break;
            }
            out.push(ServerRequest::FetchView {
                id: object,
                tag: image.to_string(),
                rect: probe.rect(),
            });
        }
        out
    }

    /// Relevant-object anticipation: the visible indicator targets, in
    /// menu order.
    pub fn predict_relevant(&self, targets: &[ObjectId]) -> Vec<ServerRequest> {
        targets.iter().take(self.depth).map(|&id| ServerRequest::FetchObject { id }).collect()
    }
}

/// Accounting for one prefetch pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Steps served from the prefetch buffer.
    pub hits: u64,
    /// Steps that demand-fetched because the prediction missed.
    pub misses: u64,
    /// Resources fetched ahead of need (priming included).
    pub prefetched: u64,
    /// Time the user waited before the first resource was ready.
    pub opening: SimDuration,
    /// Fetch time presentation could not hide — the continuity metric.
    pub stall: SimDuration,
    /// Fetch time hidden behind presentation dwell — the overlap the
    /// pipeline won. Every microsecond here would have been stall (or
    /// serial waiting) on the blocking path.
    pub overlap: SimDuration,
}

impl PrefetchStats {
    /// Prefetched resources never served: wrong predictions, plus whatever
    /// is still buffered when the session ends.
    pub fn wasted(&self) -> u64 {
        self.prefetched.saturating_sub(self.hits)
    }
}

/// The client-side prefetch pipeline over a workstation.
///
/// The simulation computes a batch's response synchronously, but its
/// *time* is charged like an asynchronous transfer: an issued batch is
/// "in flight" and each presentation dwell hides part of its cost; only
/// the unhidden remainder stalls the user when the batch's contents are
/// needed early. The pipeline's own clock is therefore the presentation
/// timeline (dwell + stall + opening), while the wrapped workstation's
/// clock keeps counting serial link and device busy time.
pub struct PrefetchBuffer<E: ServerEndpoint> {
    ws: Workstation<E>,
    prefetcher: Prefetcher,
    /// Landed responses awaiting their step, keyed by encoded request.
    buffer: HashMap<Vec<u8>, ServerResponse>,
    /// The issued-but-not-landed batch (single request channel).
    inflight: HashMap<Vec<u8>, ServerResponse>,
    /// Fetch time of the in-flight batch not yet hidden behind dwell.
    inflight_remaining: SimDuration,
    /// The event kernel anticipation rides on: every refill opportunity
    /// fires as a [`KernelEvent::PrefetchWindowOpen`] timer, so window
    /// openings (and the ones that found nothing to issue) are traced
    /// and counted like every other deadline in the system.
    kernel: Kernel,
    clock: SimClock,
    hits: u64,
    misses: u64,
    prefetched: u64,
    opening: SimDuration,
    stall: SimDuration,
    overlap: SimDuration,
}

impl<E: ServerEndpoint> PrefetchBuffer<E> {
    /// Wraps `ws` with a pipeline of the given lookahead depth.
    pub fn new(ws: Workstation<E>, depth: usize) -> Self {
        PrefetchBuffer {
            ws,
            prefetcher: Prefetcher::new(depth),
            buffer: HashMap::new(),
            inflight: HashMap::new(),
            inflight_remaining: SimDuration::ZERO,
            kernel: Kernel::new(),
            clock: SimClock::new(),
            hits: 0,
            misses: 0,
            prefetched: 0,
            opening: SimDuration::ZERO,
            stall: SimDuration::ZERO,
            overlap: SimDuration::ZERO,
        }
    }

    /// The prediction policies (for drivers that build plans).
    pub fn prefetcher(&self) -> Prefetcher {
        self.prefetcher
    }

    /// The wrapped workstation (round trips, bytes).
    pub fn workstation(&self) -> &Workstation<E> {
        &self.ws
    }

    /// Mutable workstation access (endpoint setup).
    pub fn workstation_mut(&mut self) -> &mut Workstation<E> {
        &mut self.ws
    }

    /// Accounting so far.
    pub fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            hits: self.hits,
            misses: self.misses,
            prefetched: self.prefetched,
            opening: self.opening,
            stall: self.stall,
            overlap: self.overlap,
        }
    }

    /// Resets the accounting (between experiment configurations): every
    /// [`PrefetchStats`] counter, the presentation clock, and the wrapped
    /// workstation's own accounting. Whatever is still buffered or in
    /// flight is recycled back to the transport pool first — a fresh
    /// measurement run must not inherit prefetches the last one paid for.
    pub fn reset_accounting(&mut self) {
        self.evict_buffered();
        self.inflight_remaining = SimDuration::ZERO;
        self.ws.reset_accounting();
        // The presentation clock restarts at the epoch, so the kernel's
        // timeline restarts with it, counters included.
        self.kernel = Kernel::new();
        self.clock = SimClock::new();
        self.hits = 0;
        self.misses = 0;
        self.prefetched = 0;
        self.opening = SimDuration::ZERO;
        self.stall = SimDuration::ZERO;
        self.overlap = SimDuration::ZERO;
    }

    /// Presentation time elapsed: opening + dwells + stalls.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().since(SimInstant::EPOCH)
    }

    /// Fills the buffer before presentation starts: fetches the first
    /// `depth + 1` plan entries (the opening resource plus the lookahead
    /// window) in one round trip, blocking the user for its duration. The
    /// return value is that opening latency — deliberately kept out of
    /// [`PrefetchStats::stall`], which measures interruptions of an
    /// *ongoing* presentation.
    pub fn prime(&mut self, plan: &[ServerRequest]) -> Result<SimDuration> {
        let window = self.uncovered(plan, self.prefetcher.depth() + 1, None)?;
        if window.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let took = self.issue(window)?;
        self.land();
        self.opening += took;
        self.clock.advance(took);
        Ok(took)
    }

    /// One presentation step: serve `need`, keep the pipeline full against
    /// `plan` (the resources expected *after* this one), and present for
    /// `dwell` — which hides an equal amount of in-flight fetch time.
    /// Returns the response and the stall this step inflicted on the user.
    pub fn step(
        &mut self,
        need: &ServerRequest,
        plan: &[ServerRequest],
        dwell: SimDuration,
    ) -> Result<(ServerResponse, SimDuration)> {
        if matches!(need, ServerRequest::Batch { .. }) {
            return Err(MinosError::Protocol("batches are issued by the pipeline".into()));
        }
        let key = need.encode();
        let mut stall = SimDuration::ZERO;

        // Needed data still on the wire: the user waits out the rest of
        // the transfer.
        if !self.buffer.contains_key(&key) && self.inflight.contains_key(&key) {
            stall += self.wait_for_link();
        }
        let response = match self.buffer.remove(&key) {
            Some(response) => {
                self.hits += 1;
                response
            }
            None => {
                // Demand miss: an unrelated in-flight batch occupies the
                // link first, then the needed resource costs a full
                // (unbatched) round trip.
                if !self.inflight.is_empty() {
                    stall += self.wait_for_link();
                }
                self.misses += 1;
                let before = self.ws.elapsed();
                let response = self.ws.request(need)?;
                stall +=
                    self.clock.advance_overlapped(self.ws.elapsed() - before, SimDuration::ZERO);
                response
            }
        };
        self.arm_window(plan, Some(&key))?;
        self.hide(dwell);
        self.stall += stall;
        Ok((response, stall))
    }

    /// Credits presentation time without consuming a resource: the user is
    /// dwelling on the current material while `plan` names what they are
    /// likely to want next. Issues a prediction batch if the link is free
    /// and hides it behind the dwell.
    pub fn anticipate(&mut self, plan: &[ServerRequest], dwell: SimDuration) -> Result<()> {
        self.arm_window(plan, None)?;
        self.hide(dwell);
        Ok(())
    }

    /// Routes one refill opportunity through the event kernel: the
    /// anticipation window's opening is armed as a
    /// [`KernelEvent::PrefetchWindowOpen`] deadline at the presentation
    /// clock's current instant and the refill runs as that event's
    /// handler. A window that opens with the link busy, the buffer full,
    /// or nothing left to predict issues no batch and is counted a
    /// spurious wake.
    fn arm_window(&mut self, plan: &[ServerRequest], exclude: Option<&[u8]>) -> Result<()> {
        let now = self.clock.now();
        self.kernel.post(now, KernelEvent::PrefetchWindowOpen { session: 0 });
        self.kernel.advance_to(now);
        while let Some(event) = self.kernel.take_ready() {
            if !matches!(event, KernelEvent::PrefetchWindowOpen { .. }) {
                self.kernel.note_spurious();
                continue;
            }
            let quiet = self.inflight.is_empty();
            self.refill(plan, exclude)?;
            if quiet && self.inflight.is_empty() {
                self.kernel.note_spurious();
            }
        }
        Ok(())
    }

    /// The timer-wheel counters behind anticipation: windows fired,
    /// armed, and the ones that found nothing to issue.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Drains the pipeline kernel's trace ring as a JSON array (see
    /// [`Kernel::drain_trace_json`]).
    pub fn drain_kernel_trace(&mut self) -> String {
        self.kernel.drain_trace_json()
    }

    /// Issues the next prediction batch when the link is free, the buffer
    /// is below the lookahead cap, and the plan has unfetched entries.
    fn refill(&mut self, plan: &[ServerRequest], exclude: Option<&[u8]>) -> Result<()> {
        let depth = self.prefetcher.depth();
        if depth == 0 || !self.inflight.is_empty() || self.buffer.len() > depth {
            return Ok(());
        }
        let window = self.uncovered(plan, depth, exclude)?;
        if window.is_empty() {
            return Ok(());
        }
        let took = self.issue(window)?;
        self.inflight_remaining = took;
        Ok(())
    }

    /// The first `limit` plan entries not already buffered or in flight,
    /// deduplicated, skipping the entry `exclude` (the resource being
    /// served right now). Entries are borrowed from the plan — nothing is
    /// cloned here — and coverage checks encode into one reused scratch
    /// buffer instead of allocating a key per plan entry; an entry
    /// actually selected takes the scratch buffer as its owned key.
    fn uncovered<'p>(
        &self,
        plan: &'p [ServerRequest],
        limit: usize,
        exclude: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, &'p ServerRequest)>> {
        let mut window: Vec<(Vec<u8>, &ServerRequest)> = Vec::new();
        let mut scratch = Vec::new();
        for request in plan {
            if window.len() >= limit {
                break;
            }
            if matches!(request, ServerRequest::Batch { .. }) {
                return Err(MinosError::Protocol("plans cannot contain batches".into()));
            }
            let mut e = Encoder::reuse(std::mem::take(&mut scratch));
            request.encode_to(&mut e);
            scratch = e.finish();
            let covered = exclude == Some(scratch.as_slice())
                || self.buffer.contains_key(scratch.as_slice())
                || self.inflight.contains_key(scratch.as_slice())
                || window.iter().any(|(k, _)| k.as_slice() == scratch.as_slice());
            if !covered {
                // The admitted entry takes the scratch buffer outright;
                // the next iteration's encode starts from an empty vec
                // and grows it back. Only admissions cost an allocation.
                window.push((std::mem::take(&mut scratch), request));
            }
        }
        Ok(window)
    }

    /// Submits one pipelined burst — every request goes on the wire before
    /// the first response is collected, so uplink, device, and downlink
    /// overlap — and parks the responses in flight. Per-item server errors
    /// are dropped here: an erroneous prediction must never be served, so
    /// it stays a counted waste and the real need falls back to a demand
    /// fetch.
    fn issue(&mut self, window: Vec<(Vec<u8>, &ServerRequest)>) -> Result<SimDuration> {
        self.prefetched += window.len() as u64;
        let before = self.ws.elapsed();
        let conn = self.ws.connection_mut();
        let tickets: Vec<(Vec<u8>, crate::remote::Ticket)> =
            window.into_iter().map(|(key, request)| (key, conn.submit_ref(request))).collect();
        for (key, ticket) in tickets {
            let (response, _) = conn.wait(ticket)?;
            if !matches!(response, ServerResponse::Error(_)) {
                self.inflight.insert(key, response);
            }
        }
        Ok(self.ws.elapsed() - before)
    }

    /// Waits out the in-flight batch (charged entirely as stall) and lands
    /// it.
    fn wait_for_link(&mut self) -> SimDuration {
        let stall = self.clock.advance_overlapped(self.inflight_remaining, SimDuration::ZERO);
        self.land();
        stall
    }

    /// Moves the in-flight batch into the buffer.
    fn land(&mut self) {
        self.buffer.extend(self.inflight.drain());
        self.inflight_remaining = SimDuration::ZERO;
    }

    /// Hands a consumed response's payload buffer back to the transport
    /// pool, so the next prefetched page refills it instead of allocating.
    /// Responses without a bulk payload are simply dropped.
    pub fn recycle_response(&mut self, response: ServerResponse) {
        match response {
            ServerResponse::Span(bytes)
            | ServerResponse::Object(bytes)
            | ServerResponse::View(bytes)
            | ServerResponse::Miniature(bytes) => {
                self.ws.connection_mut().recycle_payload(bytes);
            }
            _ => {}
        }
    }

    /// Evicts everything still buffered or in flight — what a closing
    /// presentation leaves behind — recycling the payload buffers back to
    /// the transport pool. The entries stay counted as waste.
    pub fn evict_buffered(&mut self) {
        self.land();
        for (_, response) in self.buffer.drain().collect::<Vec<_>>() {
            self.recycle_response(response);
        }
    }

    /// Presents for `dwell`, hiding an equal share of in-flight fetch time.
    fn hide(&mut self, dwell: SimDuration) {
        let hidden = self.inflight_remaining.min(dwell);
        self.inflight_remaining = self.inflight_remaining - hidden;
        self.overlap += hidden;
        // Never stalls: hidden ≤ dwell, so the clock moves by the dwell.
        self.clock.advance_overlapped(hidden, dwell);
        if self.inflight_remaining == SimDuration::ZERO {
            self.land();
        }
    }
}

/// An [`ObjectStore`] that anticipates relevant-object selection: whenever
/// the browsing session reports which indicators are visible, their target
/// objects are prefetched in one batch while the user is still dwelling on
/// the current object.
pub struct AnticipatingStore {
    pipeline: PrefetchBuffer<ObjectServer>,
    plan: Vec<ServerRequest>,
    dwell: SimDuration,
}

impl AnticipatingStore {
    /// Wraps a server-backed workstation. `dwell` is the reading time
    /// credited per visible-indicator report — the window the prefetch
    /// hides behind.
    pub fn new(ws: Workstation<ObjectServer>, depth: usize, dwell: SimDuration) -> Self {
        AnticipatingStore { pipeline: PrefetchBuffer::new(ws, depth), plan: Vec::new(), dwell }
    }

    /// The pipeline (stats, workstation accounting).
    pub fn pipeline(&self) -> &PrefetchBuffer<ObjectServer> {
        &self.pipeline
    }

    /// Mutable pipeline access.
    pub fn pipeline_mut(&mut self) -> &mut PrefetchBuffer<ObjectServer> {
        &mut self.pipeline
    }
}

impl ObjectStore for AnticipatingStore {
    fn fetch(&mut self, id: ObjectId) -> Result<MultimediaObject> {
        let need = ServerRequest::FetchObject { id };
        let (response, _stall) = self.pipeline.step(&need, &self.plan, SimDuration::ZERO)?;
        let ServerResponse::Object(bytes) = response else {
            return Err(MinosError::Protocol(format!("unexpected response to {need:?}")));
        };
        // The archived bytes are consumed here (the resident copy stands
        // in for the decode); the buffer goes back to the pool.
        self.pipeline.recycle_response(ServerResponse::Object(bytes));
        // As in the plain server-backed store, the server's resident copy
        // stands in for the workstation-side decode of the fetched bytes.
        self.pipeline
            .workstation_mut()
            .endpoint_mut()
            .resident_object(id)
            .cloned()
            .ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }

    fn note_upcoming(&mut self, targets: &[ObjectId]) {
        self.plan = self.pipeline.prefetcher().predict_relevant(targets);
        // Anticipation must never fail the browsing operation that
        // triggered it; a failed prediction batch is simply no prefetch.
        // The plan is borrowed in place: `pipeline` and `plan` are
        // disjoint fields, so no copy is needed per tick.
        let _ = self.pipeline.anticipate(&self.plan, self.dwell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_net::Link;
    use minos_types::{Rect, Size};

    /// A server whose archive holds one raw record of `len` patterned
    /// bytes, plus the record's span.
    fn blob_server(len: usize) -> (ObjectServer, ByteSpan) {
        let mut server = ObjectServer::new();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let (record, _) = server.archiver_mut().store(ObjectId::new(9), &data).unwrap();
        (server, record.span)
    }

    fn pipeline(depth: usize, record_len: usize) -> (PrefetchBuffer<ObjectServer>, ByteSpan) {
        let (server, span) = blob_server(record_len);
        (PrefetchBuffer::new(Workstation::new(server, Link::ethernet()), depth), span)
    }

    /// Runs a whole page-sequential presentation and returns its stats.
    fn run_pages(
        depth: usize,
        record_len: usize,
        pages: usize,
        dwell: SimDuration,
    ) -> (PrefetchStats, u64) {
        let (mut pipe, span) = pipeline(depth, record_len);
        let plan: Vec<ServerRequest> = page_spans(span, pages)
            .into_iter()
            .map(|span| ServerRequest::FetchSpan { span })
            .collect();
        pipe.prime(&plan).unwrap();
        for (i, need) in plan.iter().enumerate() {
            let (response, _) = pipe.step(need, &plan[i + 1..], dwell).unwrap();
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response at page {i}");
            };
            let ServerRequest::FetchSpan { span } = need else { unreachable!() };
            let expect: Vec<u8> =
                (span.start..span.end).map(|b| (b as usize % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {i} content");
        }
        let trips = pipe.workstation().round_trips();
        (pipe.stats(), trips)
    }

    #[test]
    fn page_spans_tile_the_record() {
        let record = ByteSpan::at(1_000, 10_007);
        let pages = page_spans(record, 16);
        assert_eq!(pages.len(), 16);
        assert_eq!(pages[0].start, record.start);
        assert_eq!(pages.last().unwrap().end, record.end);
        for pair in pages.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "pages must be adjacent");
        }
        let total: u64 = pages.iter().map(|p| p.len()).sum();
        assert_eq!(total, record.len());
    }

    #[test]
    fn predictors_look_ahead_by_depth() {
        let record = ByteSpan::at(0, 8_000);
        let pages = page_spans(record, 8);
        let p = Prefetcher::new(3);
        let predicted = p.predict_pages(&pages, 2);
        assert_eq!(
            predicted,
            vec![
                ServerRequest::FetchSpan { span: pages[3] },
                ServerRequest::FetchSpan { span: pages[4] },
                ServerRequest::FetchSpan { span: pages[5] },
            ]
        );
        // Near the end the prediction shrinks instead of inventing pages.
        assert_eq!(p.predict_pages(&pages, 6).len(), 1);
        assert!(p.predict_pages(&pages, 7).is_empty());

        let stops = [Rect::new(0, 0, 10, 10), Rect::new(5, 5, 10, 10), Rect::new(9, 9, 10, 10)];
        let toured = p.predict_tour(ObjectId::new(1), 0, &stops, 0);
        assert_eq!(toured.len(), 2);
        assert!(matches!(
            &toured[0],
            ServerRequest::FetchView { rect, .. } if *rect == stops[1]
        ));

        assert_eq!(p.predict_relevant(&[ObjectId::new(4), ObjectId::new(5)]).len(), 2);
    }

    #[test]
    fn view_prediction_stops_at_the_image_edge() {
        let view = View::new(Size::new(100, 300), Size::new(100, 100), 90).unwrap();
        let p = Prefetcher::new(5);
        // Steps down land at y = 90, 180, then clamp to 200; after that the
        // view is pinned and prediction stops.
        let predicted = p.predict_view(ObjectId::new(1), 0, &view, MoveDirection::Down);
        assert_eq!(predicted.len(), 3);
        assert!(matches!(
            &predicted[2],
            ServerRequest::FetchView { rect, .. } if rect.origin.y == 200
        ));
        // Already pinned left: nothing to predict.
        assert!(p.predict_view(ObjectId::new(1), 0, &view, MoveDirection::Left).is_empty());
    }

    #[test]
    fn pipeline_serves_correct_bytes_at_any_depth() {
        for depth in [0, 1, 3] {
            let (stats, _) = run_pages(depth, 65_536, 8, SimDuration::from_millis(50));
            assert_eq!(stats.hits + stats.misses, 8, "depth {depth}");
        }
    }

    #[test]
    fn reset_accounting_clears_every_counter_and_the_pipeline() {
        // Regression: PrefetchStats had no reset path at all (the R002
        // finding) — a second experiment configuration inherited the first
        // one's hits, opening latency, and buffered prefetches.
        let (mut pipe, span) = pipeline(2, 32_768);
        let plan: Vec<ServerRequest> =
            page_spans(span, 4).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
        pipe.prime(&plan).unwrap();
        for (i, need) in plan.iter().enumerate() {
            pipe.step(need, &plan[i + 1..], SimDuration::from_millis(20)).unwrap();
        }
        let before = pipe.stats();
        assert!(before.hits + before.misses > 0);
        assert!(before.opening > SimDuration::ZERO);
        assert!(pipe.workstation().round_trips() > 0);

        pipe.reset_accounting();
        assert_eq!(pipe.stats(), PrefetchStats::default());
        assert_eq!(pipe.elapsed(), SimDuration::ZERO);
        assert_eq!(pipe.workstation().round_trips(), 0);
        assert!(pipe.buffer.is_empty(), "buffered prefetches must not survive a reset");
        assert!(pipe.inflight.is_empty());
        assert_eq!(pipe.inflight_remaining, SimDuration::ZERO);
    }

    #[test]
    fn deeper_prefetch_strictly_reduces_stall() {
        // 32 KB pages over Ethernet + optical disk, with a dwell close to
        // the per-page transfer time: the per-round-trip overhead (link
        // latency + optical seek and rotation) is what depth amortizes.
        let dwell = SimDuration::from_millis(160);
        let (s0, t0) = run_pages(0, 262_144, 8, dwell);
        let (s1, t1) = run_pages(1, 262_144, 8, dwell);
        let (s2, t2) = run_pages(2, 262_144, 8, dwell);
        assert!(s0.stall > s1.stall, "depth 0 {} vs depth 1 {}", s0.stall, s1.stall);
        assert!(s1.stall > s2.stall, "depth 1 {} vs depth 2 {}", s1.stall, s2.stall);
        // Batching also strictly reduces round trips.
        assert!(t1 < t0 && t2 < t1, "round trips {t0} / {t1} / {t2}");
        // No wrong predictions in sequential reading: nothing wasted.
        assert_eq!(s2.wasted(), 0);
        assert_eq!(s2.misses, 0);
        // The stall reduction is overlap won: demand fetching hides
        // nothing, anticipation hides fetch time behind dwell. (Deeper
        // depths can report *less* total overlap than shallow ones —
        // coalescing shrinks the fetch time there is to hide.)
        assert_eq!(s0.overlap, SimDuration::ZERO);
        assert!(s1.overlap > SimDuration::ZERO);
        assert!(s2.overlap > SimDuration::ZERO);
    }

    #[test]
    fn wrong_predictions_never_change_content() {
        let (mut pipe, span) = pipeline(2, 65_536);
        let truth = page_spans(span, 8);
        // A plan pointing at entirely wrong offsets (shifted half a page).
        let wrong: Vec<ServerRequest> = truth
            .iter()
            .map(|s| ServerRequest::FetchSpan { span: ByteSpan::at(s.start + 11, 100) })
            .collect();
        pipe.prime(&wrong).unwrap();
        for (i, span) in truth.iter().enumerate() {
            let need = ServerRequest::FetchSpan { span: *span };
            let (response, _) = pipe.step(&need, &wrong, SimDuration::from_millis(50)).unwrap();
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response at page {i}");
            };
            let expect: Vec<u8> =
                (span.start..span.end).map(|b| (b as usize % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {i} must read through correctly");
        }
        let stats = pipe.stats();
        assert_eq!(stats.misses, 8, "every real page was a demand fetch");
        assert_eq!(stats.hits, 0);
        assert!(stats.wasted() > 0, "the wrong predictions are counted as waste");
    }

    #[test]
    fn erroneous_predictions_are_waste_not_content() {
        let (mut pipe, span) = pipeline(2, 65_536);
        // Predictions past the archive frontier fail server-side; the
        // pipeline must drop them rather than ever serving an error.
        let bogus = vec![
            ServerRequest::FetchSpan { span: ByteSpan::at(span.end + 1_000_000, 100) },
            ServerRequest::FetchSpan { span: ByteSpan::at(span.end + 2_000_000, 100) },
        ];
        pipe.prime(&bogus).unwrap();
        let need = ServerRequest::FetchSpan { span: ByteSpan::new(span.start, span.start + 16) };
        let (response, _) = pipe.step(&need, &bogus, SimDuration::ZERO).unwrap();
        assert!(matches!(response, ServerResponse::Span(b) if b.len() == 16));
        assert!(pipe.stats().wasted() >= 2);
    }

    #[test]
    fn faulty_link_pipeline_serves_byte_identical_pages() {
        // The whole anticipation pipeline over a corrupting link: lost
        // prefetch frames are retransmitted underneath (or dropped as
        // waste and demand-fetched), and every page the user sees is still
        // byte-identical — degradation costs time, never content.
        let (server, span) = blob_server(65_536);
        let ws = Workstation::with_faults(
            server,
            Link::ethernet(),
            minos_net::FaultPlan::corrupting(77, 0.2),
        );
        let mut pipe = PrefetchBuffer::new(ws, 2);
        let plan: Vec<ServerRequest> =
            page_spans(span, 8).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
        pipe.prime(&plan).unwrap();
        for (i, need) in plan.iter().enumerate() {
            let (response, _) =
                pipe.step(need, &plan[i + 1..], SimDuration::from_millis(50)).unwrap();
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response at page {i}");
            };
            let ServerRequest::FetchSpan { span } = need else { unreachable!() };
            let expect: Vec<u8> =
                (span.start..span.end).map(|b| (b as usize % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {i} byte-identical over the faulty link");
        }
        let stats = pipe.stats();
        assert_eq!(stats.hits + stats.misses, 8, "no page was skipped or aborted");
        let transport = pipe.workstation().transport_stats();
        assert!(
            transport.corrupt_frames > 0 && transport.retries > 0,
            "the faults were really exercised: {transport:?}"
        );
    }

    #[test]
    fn recycled_pages_keep_the_transport_pool_warm() {
        // The same presentation run twice: once dropping consumed pages on
        // the floor, once handing them back to the transport pool. The
        // recycling run must allocate strictly less and serve leases from
        // recycled buffers.
        let run = |recycle: bool| {
            let (mut pipe, span) = pipeline(3, 65_536);
            let plan: Vec<ServerRequest> = page_spans(span, 16)
                .into_iter()
                .map(|span| ServerRequest::FetchSpan { span })
                .collect();
            pipe.prime(&plan).unwrap();
            for (i, need) in plan.iter().enumerate() {
                let (response, _) =
                    pipe.step(need, &plan[i + 1..], SimDuration::from_millis(50)).unwrap();
                if recycle {
                    pipe.recycle_response(response);
                }
            }
            pipe.evict_buffered();
            pipe.workstation().transport_stats()
        };
        let dropped = run(false);
        let recycled = run(true);
        assert!(dropped.pool_misses > 0, "the pipeline leases from the pool: {dropped:?}");
        assert!(
            recycled.pool_misses < dropped.pool_misses,
            "recycling must cut fresh allocations: {recycled:?} vs {dropped:?}"
        );
        assert!(
            recycled.pool_hits > dropped.pool_hits,
            "recycling must raise pool hits: {recycled:?} vs {dropped:?}"
        );
        assert_eq!(recycled.payload_allocs, recycled.pool_misses);
    }

    #[test]
    fn prime_reports_opening_latency_not_stall() {
        let (mut pipe, span) = pipeline(2, 65_536);
        let plan: Vec<ServerRequest> =
            page_spans(span, 8).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
        let opening = pipe.prime(&plan).unwrap();
        assert!(opening > SimDuration::ZERO);
        let stats = pipe.stats();
        assert_eq!(stats.opening, opening);
        assert_eq!(stats.stall, SimDuration::ZERO);
        // The first page is already resident.
        let (_, stall) = pipe.step(&plan[0], &plan[1..], SimDuration::from_millis(100)).unwrap();
        assert_eq!(stall, SimDuration::ZERO);
        assert_eq!(pipe.stats().hits, 1);
    }
}
