//! Process simulation.
//!
//! "Process simulation is an ordered set of consecutive visual pages which
//! is displayed one after the other automatically (without pressing the
//! next page button). Logical messages may be attached to each page. When
//! audio messages are attached the next visual page is only shown after the
//! logical audio message has been played. The relative speed by which pages
//! are placed one on the top of another is set at object creation time but
//! it may be altered by the user." (§2)

use minos_image::{overwrite::apply_sequence, Bitmap};
use minos_object::{MessageBody, MultimediaObject, ProcessStep};
use minos_types::{MinosError, Result, SimDuration};

/// Runner state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessState {
    /// Pages turn automatically as simulated time passes.
    Running,
    /// The user paused the simulation.
    Interrupted,
    /// All steps have been shown.
    Finished,
}

/// Events the runner reports while playing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessEvent {
    /// Step `0..=len` became visible (its overwrite applied).
    StepShown(usize),
    /// The step's attached voice message started playing (message index in
    /// the object's message table).
    MessagePlayed(usize),
    /// The simulation completed.
    Finished,
}

/// Plays one process simulation of an object against simulated time.
#[derive(Clone, Debug)]
pub struct ProcessRunner {
    base: Bitmap,
    steps: Vec<ProcessStep>,
    /// Gate per step: the attached audio message's duration, if any.
    gates: Vec<Option<SimDuration>>,
    interval: SimDuration,
    shown: usize,
    remaining: SimDuration,
    state: ProcessState,
}

impl ProcessRunner {
    /// Opens the object's `sim_index`-th process simulation.
    pub fn new(object: &MultimediaObject, sim_index: usize) -> Result<Self> {
        let sim = object
            .process_sims
            .get(sim_index)
            .ok_or_else(|| MinosError::UnknownComponent(format!("process sim {sim_index}")))?;
        let base = object
            .images
            .get(sim.base_image)
            .ok_or_else(|| MinosError::UnknownComponent(format!("base image {}", sim.base_image)))?
            .render();
        let gates = sim
            .steps
            .iter()
            .map(|step| {
                step.message.and_then(|m| match object.messages.get(m).map(|msg| &msg.body) {
                    Some(MessageBody::Voice { duration, .. }) => Some(*duration),
                    _ => None,
                })
            })
            .collect();
        let interval = sim.interval;
        Ok(ProcessRunner {
            base,
            steps: sim.steps.clone(),
            gates,
            interval,
            shown: 0,
            remaining: SimDuration::ZERO, // the first step turns immediately
            state: ProcessState::Running,
        })
    }

    /// Current state.
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// Steps currently visible (0 = only the base image).
    pub fn shown(&self) -> usize {
        self.shown
    }

    /// Total steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the simulation has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The user alters the playing speed (§2). Applies from the next page
    /// turn.
    pub fn set_interval(&mut self, interval: SimDuration) {
        self.interval = interval;
    }

    /// How long the `i`-th step is held: the configured interval, extended
    /// by the attached audio message when that is longer — the page cannot
    /// turn before the message has played.
    fn hold_of(&self, i: usize) -> SimDuration {
        match self.gates.get(i).copied().flatten() {
            Some(gate) => self.interval.max(gate),
            None => self.interval,
        }
    }

    /// Advances simulated time, turning pages as they come due.
    pub fn tick(&mut self, mut dt: SimDuration) -> Vec<ProcessEvent> {
        let mut events = Vec::new();
        if self.state != ProcessState::Running {
            return events;
        }
        while dt >= self.remaining {
            dt = dt - self.remaining;
            self.remaining = SimDuration::ZERO;
            if self.shown >= self.steps.len() {
                self.state = ProcessState::Finished;
                events.push(ProcessEvent::Finished);
                return events;
            }
            // Turn the next page: the overwrite becomes visible and its
            // message starts playing; the page is then held for the gated
            // interval.
            let step_idx = self.shown;
            self.shown += 1;
            events.push(ProcessEvent::StepShown(self.shown));
            if let Some(m) = self.steps[step_idx].message {
                events.push(ProcessEvent::MessagePlayed(m));
            }
            self.remaining = self.hold_of(step_idx);
        }
        self.remaining = self.remaining - dt;
        events
    }

    /// Interrupts automatic page turning.
    pub fn interrupt(&mut self) {
        if self.state == ProcessState::Running {
            self.state = ProcessState::Interrupted;
        }
    }

    /// Resumes automatic page turning.
    pub fn resume(&mut self) {
        if self.state == ProcessState::Interrupted {
            self.state = ProcessState::Running;
        }
    }

    /// The currently displayed page: the base image with the visible
    /// overwrites applied in order.
    pub fn current_page(&self) -> Bitmap {
        let overwrites: Vec<minos_image::Overwrite> =
            self.steps.iter().map(|s| s.overwrite.clone()).collect();
        apply_sequence(&self.base, &overwrites, self.shown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::city_walk_object;
    use minos_types::ObjectId;

    fn runner() -> (minos_object::MultimediaObject, ProcessRunner) {
        let obj = city_walk_object(ObjectId::new(1), 3);
        let r = ProcessRunner::new(&obj, 0).unwrap();
        (obj, r)
    }

    #[test]
    fn first_step_turns_immediately() {
        let (_, mut r) = runner();
        assert_eq!(r.shown(), 0);
        let events = r.tick(SimDuration::from_millis(1));
        assert!(events.contains(&ProcessEvent::StepShown(1)));
        assert!(events.iter().any(|e| matches!(e, ProcessEvent::MessagePlayed(_))));
        assert_eq!(r.shown(), 1);
    }

    #[test]
    fn audio_messages_gate_page_turns() {
        let (obj, mut r) = runner();
        r.tick(SimDuration::from_millis(1)); // step 1 shown, message 0 playing
                                             // The narration is longer than the 3 s interval, so after 3 s the
                                             // next page must NOT have turned yet.
        let narration = match &obj.messages[0].body {
            MessageBody::Voice { duration, .. } => *duration,
            _ => unreachable!(),
        };
        assert!(narration > SimDuration::from_secs(3), "test premise");
        r.tick(SimDuration::from_secs(3));
        assert_eq!(r.shown(), 1, "page turned before the message finished");
        // After the full narration the page turns.
        r.tick(narration);
        assert_eq!(r.shown(), 2);
    }

    #[test]
    fn whole_walk_plays_to_completion() {
        let (_, mut r) = runner();
        let events = r.tick(SimDuration::from_secs(3_600));
        assert_eq!(r.state(), ProcessState::Finished);
        let shown: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                ProcessEvent::StepShown(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(shown, vec![1, 2, 3, 4]);
        assert_eq!(events.last(), Some(&ProcessEvent::Finished));
        // Further ticks are inert.
        assert!(r.tick(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn blank_spots_accumulate_on_the_route() {
        let (_, mut r) = runner();
        let before = r.current_page();
        r.tick(SimDuration::from_millis(1));
        let after_one = r.current_page();
        assert_ne!(before, after_one);
        // The overwrite blanks pixels: ink count can only have dropped in
        // the blanked square region.
        assert!(after_one.count_ink() <= before.count_ink());
    }

    #[test]
    fn interrupt_freezes_resume_continues() {
        let (_, mut r) = runner();
        r.tick(SimDuration::from_millis(1));
        r.interrupt();
        assert_eq!(r.state(), ProcessState::Interrupted);
        assert!(r.tick(SimDuration::from_secs(100)).is_empty());
        assert_eq!(r.shown(), 1);
        r.resume();
        r.tick(SimDuration::from_secs(100));
        assert!(r.shown() > 1);
    }

    #[test]
    fn user_can_speed_up_the_simulation() {
        // With no gating messages, a shorter interval turns pages faster.
        let (_, slow) = runner();
        let (_, mut fast) = runner();
        fast.set_interval(SimDuration::from_millis(100));
        // Narrations gate both equally, so compare with huge identical
        // ticks after removing the gate effect: use interval below gate —
        // both gated; instead verify set_interval affects ungated holds by
        // constructing the hold directly.
        assert!(fast.hold_of(0) <= slow.hold_of(0));
    }

    #[test]
    fn missing_sim_is_an_error() {
        let obj = city_walk_object(ObjectId::new(2), 1);
        assert!(ProcessRunner::new(&obj, 5).is_err());
    }
}
