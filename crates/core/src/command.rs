//! The symmetric browsing vocabulary.
//!
//! The same [`BrowseCommand`]s drive visual-mode and audio-mode objects:
//! page navigation acts on visual pages or audio pages according to the
//! object's driving mode ("Next page in those objects implies the next
//! audio page", §2); logical and pattern browsing act on the logical tree
//! or the voice marks / recognized utterances. Voice adds realizations that
//! have no visual counterpart (interrupt/resume, pause rewind) and these
//! are rejected on visual objects — the menu never offers them there.

use minos_text::LogicalLevel;
use minos_types::{ObjectId, PageNumber, SimInstant};
use minos_voice::PauseKind;

/// A browsing command, as selected from the menu.
#[derive(Clone, PartialEq, Debug)]
pub enum BrowseCommand {
    /// Turn to the next page (visual or audio per driving mode).
    NextPage,
    /// Turn to the previous page.
    PreviousPage,
    /// Advance a number of pages forth (positive) or back (negative).
    AdvancePages(i64),
    /// Jump to a page by number.
    GotoPage(PageNumber),
    /// Move to the page with the next start of a logical unit.
    NextUnit(LogicalLevel),
    /// Move to the page with the previous start of a logical unit.
    PreviousUnit(LogicalLevel),
    /// Move to the next occurrence of a pattern (typed text, or a spoken
    /// pattern matched against recognized utterances).
    FindPattern(String),
    /// Interrupt the voice output (audio mode only).
    Interrupt,
    /// Resume the voice output from the current position (audio mode
    /// only).
    Resume,
    /// Resume from the beginning of the current voice page (audio mode
    /// only).
    ResumePageStart,
    /// Replay from `n` short/long pauses back (audio mode only).
    RewindPauses(PauseKind, usize),
    /// Select the `n`-th currently visible relevant object indicator.
    SelectRelevant(usize),
    /// Return from the current relevant object to its parent.
    ReturnFromRelevant,
}

/// What happened as a result of a command (or of simulated time passing).
#[derive(Clone, PartialEq, Debug)]
pub enum BrowseEvent {
    /// A (0-based) page is now presented.
    PageShown(usize),
    /// A voice logical message started playing (message index in the
    /// object's message table).
    VoiceMessagePlayed(usize),
    /// A visual logical message is now pinned to the top of the display.
    VisualMessagePinned(usize),
    /// The pinned visual logical message was removed.
    VisualMessageUnpinned,
    /// A pattern search landed on this position.
    PatternFound {
        /// The page now shown.
        page: usize,
    },
    /// A pattern search found nothing ahead of the current position.
    PatternNotFound,
    /// Browsing entered a relevant object.
    EnteredRelevant(ObjectId),
    /// Browsing returned to the parent object.
    ReturnedToParent(ObjectId),
    /// Voice playback reached the end of the voice part.
    PlaybackFinished,
    /// Voice playback crossed into an audio page (uninterrupted).
    CrossedIntoPage(usize),
    /// Voice playback position (reported after seeks, for tests and UIs).
    VoicePosition(SimInstant),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_comparable_and_cloneable() {
        let a = BrowseCommand::FindPattern("shadow".into());
        assert_eq!(a.clone(), a);
        assert_ne!(a, BrowseCommand::NextPage);
        assert_ne!(
            BrowseCommand::RewindPauses(PauseKind::Short, 1),
            BrowseCommand::RewindPauses(PauseKind::Long, 1)
        );
    }

    #[test]
    fn events_are_comparable() {
        assert_eq!(BrowseEvent::PageShown(3), BrowseEvent::PageShown(3));
        assert_ne!(BrowseEvent::PageShown(3), BrowseEvent::PageShown(4));
    }
}
