//! The menu column.
//!
//! "The presentation and browsing functions which are available for each
//! multimedia object depend on the object itself and they are presented in
//! the form of menu options." (§2) The menu model here is generic over
//! option labels; the presentation manager decides which options exist for
//! the object at hand and maps selections back to commands.

use minos_image::Bitmap;
use minos_types::{Point, Rect};

/// Height of one menu slot in pixels.
pub const SLOT_HEIGHT: u32 = 28;

/// One menu option.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MenuItem {
    /// The label shown to the user.
    pub label: String,
    /// Whether the option is currently selectable. (Unavailable operations
    /// are not shown at all in MINOS; disabled items model the transient
    /// state while a message plays.)
    pub enabled: bool,
}

impl MenuItem {
    /// An enabled item.
    pub fn new(label: impl Into<String>) -> Self {
        MenuItem { label: label.into(), enabled: true }
    }
}

/// A vertical menu laid out in a region of the screen.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Menu {
    items: Vec<MenuItem>,
}

impl Menu {
    /// A menu with the given items.
    pub fn new(items: Vec<MenuItem>) -> Self {
        Menu { items }
    }

    /// The items.
    pub fn items(&self) -> &[MenuItem] {
        &self.items
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the menu has no options.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The slot rectangle of item `index` within `region`.
    pub fn slot_rect(&self, region: Rect, index: usize) -> Rect {
        Rect::new(
            region.left() + 4,
            region.top() + (index as u32 * SLOT_HEIGHT) as i32 + 4,
            region.size.width.saturating_sub(8),
            SLOT_HEIGHT - 8,
        )
    }

    /// Resolves a mouse click at `at` (screen coordinates) to the selected
    /// enabled item's index, if any.
    pub fn hit(&self, region: Rect, at: Point) -> Option<usize> {
        if !region.contains(at) {
            return None;
        }
        let index = ((at.y - region.top()) as u32 / SLOT_HEIGHT) as usize;
        (index < self.items.len()
            && self.items[index].enabled
            && self.slot_rect(region, index).contains(at))
        .then_some(index)
    }

    /// Renders the menu into a bitmap of the region's size: a box per slot
    /// (solid-bordered when enabled, dotted when disabled) with a greeked
    /// label bar proportional to the label length.
    pub fn render(&self, region: Rect) -> Bitmap {
        let mut bm = Bitmap::new(region.size.width, region.size.height);
        for (i, item) in self.items.iter().enumerate() {
            let slot = self.slot_rect(region, i).translate(-region.left(), -region.top());
            // Border.
            for x in slot.left()..slot.right() {
                let draw = item.enabled || x % 3 != 0;
                if draw {
                    bm.set(x, slot.top(), true);
                    bm.set(x, slot.bottom() - 1, true);
                }
            }
            for y in slot.top()..slot.bottom() {
                let draw = item.enabled || y % 3 != 0;
                if draw {
                    bm.set(slot.left(), y, true);
                    bm.set(slot.right() - 1, y, true);
                }
            }
            // Greeked label: a bar whose width tracks the label length.
            let text_w = ((item.label.chars().count() as u32 * 6)
                .min(slot.size.width.saturating_sub(8))) as i32;
            let mid_y = slot.top() + (slot.size.height / 2) as i32;
            for x in 0..text_w {
                bm.set(slot.left() + 4 + x, mid_y, true);
            }
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn menu() -> Menu {
        Menu::new(vec![
            MenuItem::new("next page"),
            MenuItem::new("previous page"),
            MenuItem { label: "resume voice".into(), enabled: false },
            MenuItem::new("next chapter"),
        ])
    }

    fn region() -> Rect {
        Rect::new(912, 0, 240, 900)
    }

    #[test]
    fn hit_resolves_slots() {
        let m = menu();
        let r = region();
        // Middle of slot 0.
        assert_eq!(m.hit(r, Point::new(1_000, 14)), Some(0));
        // Middle of slot 1.
        assert_eq!(m.hit(r, Point::new(1_000, 14 + SLOT_HEIGHT as i32)), Some(1));
        // Slot 3.
        assert_eq!(m.hit(r, Point::new(1_000, 14 + 3 * SLOT_HEIGHT as i32)), Some(3));
    }

    #[test]
    fn disabled_items_do_not_hit() {
        let m = menu();
        assert_eq!(m.hit(region(), Point::new(1_000, 14 + 2 * SLOT_HEIGHT as i32)), None);
    }

    #[test]
    fn clicks_outside_region_or_slots_miss() {
        let m = menu();
        let r = region();
        assert_eq!(m.hit(r, Point::new(100, 14)), None); // display area
        assert_eq!(m.hit(r, Point::new(1_000, 800)), None); // below the items
                                                            // The gap between slots misses.
        assert_eq!(m.hit(r, Point::new(1_000, SLOT_HEIGHT as i32)), None);
    }

    #[test]
    fn render_draws_every_slot() {
        let m = menu();
        let bm = m.render(region());
        assert_eq!(bm.width(), 240);
        for i in 0..m.len() {
            let slot = m.slot_rect(region(), i).translate(-912, 0);
            assert!(bm.get(slot.left() + 1, slot.top()), "slot {i} top border missing");
        }
        // Longer labels draw longer bars.
        let short = Menu::new(vec![MenuItem::new("ok")]).render(region()).count_ink();
        let long = Menu::new(vec![MenuItem::new("return from relevant object")])
            .render(region())
            .count_ink();
        assert!(long > short);
    }

    #[test]
    fn empty_menu() {
        let m = Menu::default();
        assert!(m.is_empty());
        assert_eq!(m.hit(region(), Point::new(1_000, 10)), None);
        assert!(m.render(region()).is_blank());
    }
}
