//! Rendering visual pages to the framebuffer.
//!
//! Lines are drawn *greeked*: each placed run becomes a block at its exact
//! position and advance width, with height tracking the font size, an
//! underline when the style asks for one, and per-character gaps so words
//! remain distinguishable. Figures are resolved through a caller-provided
//! function (the object layer knows what image a figure index denotes) and
//! framed.

use minos_image::{Bitmap, BlitMode};
use minos_text::{PageElement, PaginateConfig, VisualPage};
use minos_types::{Point, Rect};

/// Renders one visual page into a bitmap of the page's configured size.
/// `resolve_figure` maps a figure index to its raster; unresolved figures
/// render as a crossed frame.
pub fn render_page(
    page: &VisualPage,
    config: PaginateConfig,
    mut resolve_figure: impl FnMut(usize) -> Option<Bitmap>,
) -> Bitmap {
    let mut bm = Bitmap::new(config.page_size.width, config.page_size.height);
    let margin = config.margin as i32;
    for element in &page.elements {
        match element {
            PageElement::Line { y, line } => {
                let baseline_block_top = margin + *y as i32;
                let centre_offset = if line.centered {
                    ((config.content_width().saturating_sub(line.width)) / 2) as i32
                } else {
                    0
                };
                for run in &line.runs {
                    let font = run.style.effective_font();
                    let block_h = (font.size as u32 * 3 / 4).max(2);
                    let x0 = margin + centre_offset + run.x as i32;
                    let top = baseline_block_top + (line.height - block_h) as i32 - 2;
                    greek_run(&mut bm, x0, top, run, block_h);
                    if run.style.underlined() {
                        let uy = baseline_block_top + line.height as i32 - 1;
                        for x in 0..run.width as i32 {
                            bm.set(x0 + x, uy, true);
                        }
                    }
                }
            }
            PageElement::Figure { index, rect } => {
                let target = Rect::new(
                    margin + rect.left(),
                    margin + rect.top(),
                    rect.size.width,
                    rect.size.height,
                );
                match resolve_figure(*index) {
                    Some(image) => {
                        let fit = Rect::new(
                            0,
                            0,
                            image.width().min(target.size.width),
                            image.height().min(target.size.height),
                        );
                        let part = image.extract(fit).expect("fit within image");
                        bm.blit(&part, target.origin, BlitMode::Replace);
                    }
                    None => {
                        draw_frame(&mut bm, target);
                        // Diagonals mark an unresolved figure.
                        diag(&mut bm, target);
                    }
                }
                draw_frame(&mut bm, target);
            }
        }
    }
    bm
}

/// Draws one greeked run: a block per character at its true advance, with a
/// one-pixel gap, bold faces drawn solid and others with a dropped-out
/// interior row.
fn greek_run(bm: &mut Bitmap, x0: i32, top: i32, run: &minos_text::PlacedRun, block_h: u32) {
    let metrics = minos_text::FontMetrics;
    let font = run.style.effective_font();
    let bold = matches!(font.family, minos_text::FontFamily::Bold);
    let mut x = x0;
    for ch in run.text.chars() {
        let advance = metrics.advance(font, ch) as i32;
        if ch != ' ' {
            for dy in 0..block_h as i32 {
                let hollow = !bold && dy == block_h as i32 / 2;
                for dx in 0..(advance - 1).max(1) {
                    if !hollow || dx % 2 == 0 {
                        bm.set(x + dx, top + dy, true);
                    }
                }
            }
        }
        x += advance;
    }
}

fn draw_frame(bm: &mut Bitmap, r: Rect) {
    for x in r.left()..r.right() {
        bm.set(x, r.top(), true);
        bm.set(x, r.bottom() - 1, true);
    }
    for y in r.top()..r.bottom() {
        bm.set(r.left(), y, true);
        bm.set(r.right() - 1, y, true);
    }
}

fn diag(bm: &mut Bitmap, r: Rect) {
    minos_image::raster::draw_line(
        bm,
        Point::new(r.left(), r.top()),
        Point::new(r.right() - 1, r.bottom() - 1),
    );
    minos_image::raster::draw_line(
        bm,
        Point::new(r.right() - 1, r.top()),
        Point::new(r.left(), r.bottom() - 1),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_text::{parse_markup, PresentationForm};
    use minos_types::Size;

    fn small_cfg() -> PaginateConfig {
        PaginateConfig { page_size: Size::new(400, 300), margin: 10, block_gap: 6 }
    }

    fn form(markup: &str) -> PresentationForm {
        PresentationForm::paginate(&parse_markup(markup).unwrap(), small_cfg())
    }

    #[test]
    fn text_pages_produce_ink() {
        let f = form("Some words on a page that will surely render to ink.\n");
        let bm = render_page(f.page(0).unwrap(), small_cfg(), |_| None);
        assert_eq!(bm.size(), Size::new(400, 300));
        assert!(bm.count_ink() > 100);
    }

    #[test]
    fn empty_page_is_blank() {
        let page = minos_text::VisualPage::default();
        let bm = render_page(&page, small_cfg(), |_| None);
        assert!(bm.is_blank());
    }

    #[test]
    fn more_text_means_more_ink() {
        let short = form("tiny.\n");
        let long = form(
            "a much longer paragraph with very many words that fill several \
             lines of the page and therefore leave much more ink behind.\n",
        );
        let short_ink = render_page(short.page(0).unwrap(), small_cfg(), |_| None).count_ink();
        let long_ink = render_page(long.page(0).unwrap(), small_cfg(), |_| None).count_ink();
        assert!(long_ink > short_ink * 3);
    }

    #[test]
    fn underlined_runs_draw_their_rule() {
        let plain = form("word word word\n");
        let under = form("_word word word_\n");
        let plain_ink = render_page(plain.page(0).unwrap(), small_cfg(), |_| None).count_ink();
        let under_ink = render_page(under.page(0).unwrap(), small_cfg(), |_| None).count_ink();
        assert!(under_ink > plain_ink);
    }

    #[test]
    fn figures_resolve_or_get_crossed_frames() {
        let f = form(".fig xray 100 80\n");
        let page = f.page(0).unwrap();
        let mut probe = Bitmap::new(100, 80);
        probe.fill_rect(Rect::new(20, 20, 30, 30), true);
        let resolved = render_page(page, small_cfg(), |_| Some(probe.clone()));
        let unresolved = render_page(page, small_cfg(), |_| None);
        assert!(resolved.count_ink() > 800, "figure content missing");
        assert!(unresolved.count_ink() > 100, "placeholder frame missing");
        assert_ne!(resolved, unresolved);
    }

    #[test]
    fn figure_larger_than_declared_rect_is_clipped() {
        let f = form(".fig huge 50 40\n");
        let big = {
            let mut b = Bitmap::new(500, 400);
            b.fill_rect(Rect::new(0, 0, 500, 400), true);
            b
        };
        let bm = render_page(f.page(0).unwrap(), small_cfg(), |_| Some(big.clone()));
        // Ink stays within the declared figure rect (plus frame): well
        // under the full 500x400.
        assert!(bm.count_ink() < 60 * 50);
    }

    #[test]
    fn centered_title_shifts_ink_toward_middle() {
        let f = form(".ti Hi\nbody text to compare against the title line\n");
        let bm = render_page(f.page(0).unwrap(), small_cfg(), |_| None);
        // The title row's first ink is well right of the margin.
        let mut first_ink_x = None;
        'outer: for y in 10..30 {
            for x in 0..400 {
                if bm.get(x, y) {
                    first_ink_x = Some(x);
                    break 'outer;
                }
            }
        }
        assert!(first_ink_x.unwrap_or(0) > 100, "title not centered: {first_ink_x:?}");
    }
}
