//! The simulated workstation display.
//!
//! The original presentation manager drew on a SUN-3 bitmap display with
//! menu options "in the right hand side of the screen" (§3, Figures 1–2).
//! The reproduction's screen is an in-memory 1-bit framebuffer with the
//! same layout: a top message strip (for visual logical messages), the page
//! display area, and the menu column. Text rendering is *greeked* (runs are
//! drawn as correctly measured blocks with underlines, the way early page
//! previews drew unreadable-but-accurate text); exact glyph shapes carry no
//! presentation semantics, while geometry — what the tests assert — does.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod menu;
pub mod render;
pub mod screen;

pub use menu::{Menu, MenuItem};
pub use render::render_page;
pub use screen::Screen;
