//! The screen model and its fixed regions.

use minos_image::{Bitmap, BlitMode, Miniature};
use minos_types::{Point, Rect, Size};

/// SUN-3 display width.
pub const SCREEN_WIDTH: u32 = 1152;
/// SUN-3 display height.
pub const SCREEN_HEIGHT: u32 = 900;
/// Width of the menu column at the right edge.
pub const MENU_WIDTH: u32 = 240;
/// Height of the top strip used by visual logical messages.
pub const MESSAGE_STRIP_HEIGHT: u32 = 0; // grows when a message is pinned

/// The simulated workstation screen.
#[derive(Clone, Debug)]
pub struct Screen {
    framebuffer: Bitmap,
    /// Height currently reserved at the top for a pinned visual logical
    /// message (0 when none).
    reserved_top: u32,
}

impl Screen {
    /// A blank SUN-3 sized screen.
    pub fn new() -> Self {
        Screen { framebuffer: Bitmap::new(SCREEN_WIDTH, SCREEN_HEIGHT), reserved_top: 0 }
    }

    /// The raw framebuffer.
    pub fn framebuffer(&self) -> &Bitmap {
        &self.framebuffer
    }

    /// Full screen bounds.
    pub fn bounds(&self) -> Rect {
        self.framebuffer.bounds()
    }

    /// The menu column region (right edge, full height).
    pub fn menu_region(&self) -> Rect {
        Rect::new((SCREEN_WIDTH - MENU_WIDTH) as i32, 0, MENU_WIDTH, SCREEN_HEIGHT)
    }

    /// The message strip region (top, left of the menu column); empty when
    /// nothing is pinned.
    pub fn message_region(&self) -> Rect {
        Rect::new(0, 0, SCREEN_WIDTH - MENU_WIDTH, self.reserved_top)
    }

    /// The page display region: everything left of the menu and below the
    /// message strip.
    pub fn display_region(&self) -> Rect {
        Rect::new(
            0,
            self.reserved_top as i32,
            SCREEN_WIDTH - MENU_WIDTH,
            SCREEN_HEIGHT - self.reserved_top,
        )
    }

    /// Reserves `height` pixels at the top for a pinned visual logical
    /// message ("displayed at the upper part of the screen while the lower
    /// part … is devoted to the display of parts of the related visual
    /// segment", §2). Pass 0 to release.
    pub fn reserve_top(&mut self, height: u32) {
        self.reserved_top = height.min(SCREEN_HEIGHT / 2);
    }

    /// Currently reserved top height.
    pub fn reserved_top(&self) -> u32 {
        self.reserved_top
    }

    /// Clears the whole framebuffer.
    pub fn clear(&mut self) {
        self.framebuffer.fill_rect(self.framebuffer.bounds(), false);
    }

    /// Clears one region.
    pub fn clear_region(&mut self, region: Rect) {
        self.framebuffer.fill_rect(region, false);
    }

    /// Blits `content` into `region` (clipped to it), replacing what was
    /// there.
    pub fn show(&mut self, content: &Bitmap, region: Rect) {
        self.clear_region(region);
        // Clip by extracting the fitting part if the content overflows.
        let fit_w = content.width().min(region.size.width);
        let fit_h = content.height().min(region.size.height);
        if fit_w == 0 || fit_h == 0 {
            return;
        }
        let part =
            content.extract(Rect::new(0, 0, fit_w, fit_h)).expect("clip rect within content");
        self.framebuffer.blit(&part, region.origin, BlitMode::Replace);
    }

    /// Blits `content` into `region` without erasing (for transparencies
    /// and highlights).
    pub fn overlay(&mut self, content: &Bitmap, at: Point) {
        self.framebuffer.blit(content, at, BlitMode::Or);
    }

    /// A terminal-sized ASCII rendering of the screen (for demos), `cols`
    /// characters wide.
    pub fn to_ascii(&self, cols: u32) -> Vec<String> {
        let factor = (SCREEN_WIDTH / cols.max(1)).max(1);
        Miniature::build(&self.framebuffer, factor).raster().to_ascii()
    }
}

impl Default for Screen {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns the page size a presentation form should be paginated at to fit
/// this screen's display region.
pub fn page_size_for(screen: &Screen) -> Size {
    screen.display_region().size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_screen() {
        let mut s = Screen::new();
        assert_eq!(s.display_region().size, Size::new(912, 900));
        assert!(!s.display_region().intersects(s.menu_region()));
        assert!(s.message_region().is_empty());
        s.reserve_top(300);
        assert_eq!(s.message_region().size, Size::new(912, 300));
        assert_eq!(s.display_region(), Rect::new(0, 300, 912, 600));
        assert!(!s.message_region().intersects(s.display_region()));
        s.reserve_top(0);
        assert_eq!(s.display_region().size.height, 900);
    }

    #[test]
    fn reserve_top_is_capped() {
        let mut s = Screen::new();
        s.reserve_top(10_000);
        assert_eq!(s.reserved_top(), 450);
    }

    #[test]
    fn show_replaces_region_content() {
        let mut s = Screen::new();
        let mut content = Bitmap::new(100, 100);
        content.set(10, 10, true);
        let region = Rect::new(50, 60, 100, 100);
        s.show(&content, region);
        assert!(s.framebuffer().get(60, 70));
        // Showing a blank replaces it away.
        s.show(&Bitmap::new(100, 100), region);
        assert!(!s.framebuffer().get(60, 70));
    }

    #[test]
    fn show_clips_oversized_content() {
        let mut s = Screen::new();
        let mut content = Bitmap::new(2_000, 2_000);
        content.set(1_999, 1_999, true);
        content.set(0, 0, true);
        s.show(&content, s.display_region());
        assert!(s.framebuffer().get(0, 0));
        // Nothing bled into the menu column.
        let menu = s.menu_region();
        for y in (0..SCREEN_HEIGHT as i32).step_by(97) {
            assert!(!s.framebuffer().get(menu.left() + 1, y));
        }
    }

    #[test]
    fn overlay_accumulates() {
        let mut s = Screen::new();
        let mut a = Bitmap::new(10, 10);
        a.set(1, 1, true);
        let mut b = Bitmap::new(10, 10);
        b.set(2, 2, true);
        s.overlay(&a, Point::new(0, 0));
        s.overlay(&b, Point::new(0, 0));
        assert!(s.framebuffer().get(1, 1));
        assert!(s.framebuffer().get(2, 2));
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = Screen::new();
        s.overlay(&Bitmap::from_ascii(&["##", "##"]), Point::new(5, 5));
        assert!(!s.framebuffer().is_blank());
        s.clear();
        assert!(s.framebuffer().is_blank());
    }

    #[test]
    fn ascii_rendering_has_requested_width() {
        let s = Screen::new();
        let rows = s.to_ascii(96);
        assert_eq!(rows[0].len(), 96);
        assert!(rows.len() > 40);
    }
}
