//! Pagination into visual pages.
//!
//! "The presentation form of text is subdivided into text pages. A text
//! page is all the text information which is presented at the same time at
//! the screen of the workstation. Often text is intermixed with images in
//! the same page. We call these generic pages visual pages." (§2)
//!
//! The paginator stacks laid-out lines and figure anchors into fixed-height
//! pages. Each page records the character span it presents, which is the
//! bridge used by every other browsing mode: logical browsing finds "the
//! page with the next start of a logical unit", pattern browsing "the next
//! page with the occurrence of this pattern".

use crate::document::Document;
use crate::layout::{layout_document, LaidBlock, Line};
use minos_types::{CharSpan, PageNumber, Rect, Size};

/// Page geometry for pagination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PaginateConfig {
    /// Full page extent in pixels.
    pub page_size: Size,
    /// Margin on all four sides, in pixels.
    pub margin: u32,
    /// Vertical gap inserted between blocks, in pixels.
    pub block_gap: u32,
}

impl Default for PaginateConfig {
    fn default() -> Self {
        // The display area left to a page once the simulated workstation
        // screen reserves its menu column and message strip.
        PaginateConfig { page_size: Size::new(800, 720), margin: 16, block_gap: 8 }
    }
}

impl PaginateConfig {
    /// Width available to content.
    pub fn content_width(&self) -> u32 {
        self.page_size.width.saturating_sub(2 * self.margin)
    }

    /// Height available to content.
    pub fn content_height(&self) -> u32 {
        self.page_size.height.saturating_sub(2 * self.margin)
    }

    /// A copy whose content height is reduced by `reserved` pixels at the
    /// top. Used when a visual logical message occupies the upper part of
    /// every page (§2: "the logical message is displayed at the upper part
    /// of the screen while the lower part … is devoted to the display of
    /// parts of the related visual segment").
    pub fn with_reserved_top(&self, reserved: u32) -> PaginateConfig {
        PaginateConfig {
            page_size: Size::new(
                self.page_size.width,
                self.page_size.height.saturating_sub(reserved),
            ),
            ..*self
        }
    }
}

/// One positioned element of a visual page.
#[derive(Clone, PartialEq, Debug)]
pub enum PageElement {
    /// A text line at vertical offset `y` (pixels from the content top).
    Line {
        /// Vertical offset of the line's top.
        y: u32,
        /// The line.
        line: Line,
    },
    /// A figure at the given content-relative rectangle.
    Figure {
        /// Index into [`Document::figures`].
        index: usize,
        /// Position and extent within the page content area.
        rect: Rect,
    },
}

impl PageElement {
    /// The character span the element presents, if any.
    pub fn span(&self) -> Option<CharSpan> {
        match self {
            PageElement::Line { line, .. } => Some(line.span),
            PageElement::Figure { .. } => None,
        }
    }
}

/// One visual page.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VisualPage {
    /// Elements in top-to-bottom order.
    pub elements: Vec<PageElement>,
    /// Characters presented on this page (None for image-only pages).
    pub span: Option<CharSpan>,
    /// Content height actually used, in pixels.
    pub used_height: u32,
}

impl VisualPage {
    /// Whether the page presents no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The page's text content, one line per laid-out line.
    pub fn text_lines(&self) -> Vec<String> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                PageElement::Line { line, .. } => Some(line.text()),
                _ => None,
            })
            .collect()
    }

    fn extend_span(&mut self, span: CharSpan) {
        self.span = Some(match self.span {
            None => span,
            Some(s) => CharSpan::new(s.start.min(span.start), s.end.max(span.end)),
        });
    }
}

/// The paginated presentation form of a text segment.
#[derive(Clone, Debug)]
pub struct PresentationForm {
    pages: Vec<VisualPage>,
    config: PaginateConfig,
}

impl PresentationForm {
    /// Lays out and paginates `doc` under `config`.
    pub fn paginate(doc: &Document, config: PaginateConfig) -> Self {
        let blocks = layout_document(doc, config.content_width());
        Self::from_blocks(&blocks, config)
    }

    /// Paginates pre-laid-out blocks (used by the object layer, which may
    /// interleave blocks from several data files).
    pub fn from_blocks(blocks: &[LaidBlock], config: PaginateConfig) -> Self {
        let content_height = config.content_height().max(1);
        let mut pages: Vec<VisualPage> = Vec::new();
        let mut page = VisualPage::default();
        let mut y = 0u32;

        let start_new_page = |pages: &mut Vec<VisualPage>, page: &mut VisualPage, y: &mut u32| {
            if !page.is_empty() {
                pages.push(std::mem::take(page));
            }
            *y = 0;
        };

        for block in blocks {
            // Gap between blocks (not at the top of a page).
            if y > 0 {
                y += config.block_gap;
            }
            match block {
                LaidBlock::Lines(lines) => {
                    for line in lines {
                        if y + line.height > content_height && y > 0 {
                            start_new_page(&mut pages, &mut page, &mut y);
                        }
                        page.extend_span(line.span);
                        page.elements.push(PageElement::Line { y, line: line.clone() });
                        y += line.height;
                        page.used_height = y;
                    }
                }
                LaidBlock::Figure { index, size } => {
                    if y + size.height > content_height && y > 0 {
                        start_new_page(&mut pages, &mut page, &mut y);
                    }
                    // Center the figure horizontally in the content area.
                    let x = (config.content_width().saturating_sub(size.width) / 2) as i32;
                    page.elements.push(PageElement::Figure {
                        index: *index,
                        rect: Rect { origin: minos_types::Point::new(x, y as i32), size: *size },
                    });
                    y += size.height;
                    page.used_height = y;
                }
            }
        }
        if !page.is_empty() {
            pages.push(page);
        }
        PresentationForm { pages, config }
    }

    /// The pages, in order.
    pub fn pages(&self) -> &[VisualPage] {
        &self.pages
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// A page by 0-based index.
    pub fn page(&self, index: usize) -> Option<&VisualPage> {
        self.pages.get(index)
    }

    /// The pagination geometry used.
    pub fn config(&self) -> PaginateConfig {
        self.config
    }

    /// The 0-based index of the page presenting character `pos`: the last
    /// page that starts at or before `pos`. Positions between pages (e.g. a
    /// paragraph-final newline) resolve to the page of the preceding text.
    pub fn page_containing(&self, pos: u32) -> Option<usize> {
        let idx = self.pages.partition_point(|p| p.span.map(|s| s.start <= pos).unwrap_or(true));
        idx.checked_sub(1)
    }

    /// User-facing page number of the page presenting `pos`.
    pub fn page_number_containing(&self, pos: u32) -> Option<PageNumber> {
        self.page_containing(pos).map(PageNumber::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocumentBuilder, FigureRef};
    use proptest::prelude::*;

    fn long_doc(paragraphs: usize) -> Document {
        let mut b = DocumentBuilder::new();
        b.begin_chapter("Body");
        for i in 0..paragraphs {
            b.text(&format!(
                "Paragraph number {i} talks about multimedia objects and the \
                 presentation manager of the MINOS system at some length so \
                 that several lines are produced."
            ));
            b.end_paragraph();
        }
        b.finish()
    }

    fn small_config() -> PaginateConfig {
        PaginateConfig { page_size: Size::new(300, 200), margin: 10, block_gap: 6 }
    }

    #[test]
    fn long_document_spans_multiple_pages() {
        let form = PresentationForm::paginate(&long_doc(12), small_config());
        assert!(form.page_count() > 2, "got {} pages", form.page_count());
    }

    #[test]
    fn pages_respect_content_height() {
        let cfg = small_config();
        let form = PresentationForm::paginate(&long_doc(12), cfg);
        for (i, page) in form.pages().iter().enumerate() {
            // Only a single oversized element may overflow; regular pages fit.
            if page.elements.len() > 1 {
                assert!(
                    page.used_height <= cfg.content_height(),
                    "page {i} used {} of {}",
                    page.used_height,
                    cfg.content_height()
                );
            }
        }
    }

    #[test]
    fn page_spans_are_ordered_and_cover_all_lines() {
        let form = PresentationForm::paginate(&long_doc(8), small_config());
        let spans: Vec<CharSpan> = form.pages().iter().filter_map(|p| p.span).collect();
        for pair in spans.windows(2) {
            assert!(pair[0].start < pair[1].start);
            assert!(pair[0].end <= pair[1].start + 1);
        }
    }

    #[test]
    fn page_containing_maps_every_word() {
        let doc = long_doc(8);
        let form = PresentationForm::paginate(&doc, small_config());
        for w in &doc.tree().words {
            let idx = form.page_containing(w.start).expect("word on some page");
            let page = form.page(idx).unwrap();
            assert!(
                page.span.unwrap().contains(w.start),
                "word at {} mapped to page {idx} spanning {:?}",
                w.start,
                page.span
            );
        }
    }

    #[test]
    fn page_containing_start_is_first_page() {
        let form = PresentationForm::paginate(&long_doc(4), small_config());
        assert_eq!(form.page_containing(0), Some(0));
        assert_eq!(form.page_number_containing(0), Some(PageNumber::FIRST));
    }

    #[test]
    fn empty_document_has_no_pages() {
        let doc = DocumentBuilder::new().finish();
        let form = PresentationForm::paginate(&doc, PaginateConfig::default());
        assert_eq!(form.page_count(), 0);
        assert_eq!(form.page_containing(0), None);
    }

    #[test]
    fn figure_taller_than_page_gets_own_page() {
        let mut b = DocumentBuilder::new();
        b.text("before text");
        b.figure(FigureRef { tag: "big".into(), size: Size::new(100, 5000), caption: None });
        b.text("after text");
        b.end_paragraph();
        let form = PresentationForm::paginate(&b.finish(), small_config());
        assert!(form.page_count() >= 3);
        // Middle page holds only the figure.
        let fig_page = form
            .pages()
            .iter()
            .find(|p| p.elements.iter().any(|e| matches!(e, PageElement::Figure { .. })))
            .unwrap();
        assert_eq!(fig_page.elements.len(), 1);
        assert!(fig_page.span.is_none());
    }

    #[test]
    fn figure_is_centered_horizontally() {
        let mut b = DocumentBuilder::new();
        b.figure(FigureRef { tag: "f".into(), size: Size::new(100, 50), caption: None });
        let cfg = small_config();
        let form = PresentationForm::paginate(&b.finish(), cfg);
        match &form.page(0).unwrap().elements[0] {
            PageElement::Figure { rect, .. } => {
                assert_eq!(rect.origin.x as u32, (cfg.content_width() - 100) / 2);
            }
            other => panic!("expected figure, got {other:?}"),
        }
    }

    #[test]
    fn with_reserved_top_shrinks_pages() {
        let cfg = PaginateConfig::default();
        let reserved = cfg.with_reserved_top(300);
        assert_eq!(reserved.content_height() + 300, cfg.content_height());
        let doc = long_doc(10);
        let full = PresentationForm::paginate(&doc, cfg);
        let shrunk = PresentationForm::paginate(&doc, reserved);
        assert!(shrunk.page_count() >= full.page_count());
    }

    #[test]
    fn elements_are_stacked_top_to_bottom() {
        let form = PresentationForm::paginate(&long_doc(6), small_config());
        for page in form.pages() {
            let mut last_y = 0u32;
            for e in &page.elements {
                let y = match e {
                    PageElement::Line { y, .. } => *y,
                    PageElement::Figure { rect, .. } => rect.origin.y as u32,
                };
                assert!(y >= last_y);
                last_y = y;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every line of the laid-out document appears on exactly one page,
        /// in order, for arbitrary page heights.
        #[test]
        fn pagination_preserves_all_lines(height in 60u32..400, paragraphs in 1usize..8) {
            let doc = long_doc(paragraphs);
            let cfg = PaginateConfig {
                page_size: Size::new(300, height),
                margin: 8,
                block_gap: 4,
            };
            let form = PresentationForm::paginate(&doc, cfg);
            let texts: Vec<String> = form
                .pages()
                .iter()
                .flat_map(|p| p.text_lines())
                .collect();
            let direct: Vec<String> = crate::layout::layout_document(&doc, cfg.content_width())
                .iter()
                .filter_map(|b| match b {
                    crate::layout::LaidBlock::Lines(ls) => {
                        Some(ls.iter().map(|l| l.text()).collect::<Vec<_>>())
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            prop_assert_eq!(texts, direct);
        }

        /// page_containing is monotone: later positions never map to
        /// earlier pages.
        #[test]
        fn page_containing_is_monotone(height in 60u32..300) {
            let doc = long_doc(5);
            let cfg = PaginateConfig {
                page_size: Size::new(280, height),
                margin: 8,
                block_gap: 4,
            };
            let form = PresentationForm::paginate(&doc, cfg);
            let mut last = 0usize;
            for pos in (0..doc.len()).step_by(7) {
                if let Some(idx) = form.page_containing(pos) {
                    prop_assert!(idx >= last);
                    last = idx;
                }
            }
        }
    }
}
