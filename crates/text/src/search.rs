//! Pattern-match browsing support.
//!
//! "A user types a text pattern … and the system returns the next page with
//! the occurrence of this pattern in the object's text" (§2). The searcher
//! here finds occurrences in the canonical character stream; the
//! presentation layer maps them to pages via
//! [`crate::paginate::PresentationForm::page_containing`].
//!
//! Two engines are provided: a Boyer–Moore–Horspool searcher (the access
//! method proper) and a naive scan kept as the baseline for experiment E10.
//! A [`WordIndex`] over the document's words provides the word-granularity
//! content addressability that recognized voice utterances also use
//! (`minos-server` builds its inverted index from the same tokenization).

use crate::document::Document;
use std::collections::HashMap;

/// A compiled pattern for repeated searches over character streams.
#[derive(Clone, Debug)]
pub struct PatternSearcher {
    pattern: Vec<char>,
    /// Horspool shift table: distance to shift when the window's last
    /// character is `c`. Characters absent from the table shift by the full
    /// pattern length.
    skip: HashMap<char, usize>,
    case_insensitive: bool,
}

impl PatternSearcher {
    /// Compiles a case-insensitive searcher (the browsing default: users
    /// type patterns, capitalization in the object shouldn't hide hits).
    pub fn new(pattern: &str) -> Self {
        Self::with_case(pattern, false)
    }

    /// Compiles a searcher; `case_sensitive` controls matching.
    pub fn with_case(pattern: &str, case_sensitive: bool) -> Self {
        let pattern: Vec<char> = if case_sensitive {
            pattern.chars().collect()
        } else {
            pattern.chars().flat_map(|c| c.to_lowercase()).collect()
        };
        let m = pattern.len();
        let mut skip = HashMap::with_capacity(m);
        if m > 0 {
            for (i, &c) in pattern[..m - 1].iter().enumerate() {
                skip.insert(c, m - 1 - i);
            }
        }
        PatternSearcher { pattern, skip, case_insensitive: !case_sensitive }
    }

    /// Pattern length in characters.
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// Whether the pattern is empty (matches nowhere).
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }

    fn normalize(&self, c: char) -> char {
        if self.case_insensitive {
            // to_lowercase may expand to several chars for exotic code
            // points; take the first, which is exact for the ASCII corpora
            // the reproduction uses and conservative otherwise.
            c.to_lowercase().next().unwrap_or(c)
        } else {
            c
        }
    }

    /// Finds the first occurrence at or after `from` (character offset).
    pub fn find_next(&self, haystack: &[char], from: u32) -> Option<u32> {
        let m = self.pattern.len();
        let n = haystack.len();
        if m == 0 || n < m {
            return None;
        }
        let mut i = from as usize;
        while i + m <= n {
            let last = self.normalize(haystack[i + m - 1]);
            if last == self.pattern[m - 1] {
                let mut j = 0;
                while j + 1 < m && self.normalize(haystack[i + j]) == self.pattern[j] {
                    j += 1;
                }
                if j + 1 == m {
                    return Some(i as u32);
                }
            }
            i += self.skip.get(&last).copied().unwrap_or(m);
        }
        None
    }

    /// Finds the last occurrence strictly before `before`.
    pub fn find_prev(&self, haystack: &[char], before: u32) -> Option<u32> {
        // Occurrences are sparse in browsing workloads; a forward scan
        // collecting the last hit before the bound is simple and adequate.
        let mut found = None;
        let mut from = 0;
        while let Some(hit) = self.find_next(haystack, from) {
            if hit >= before {
                break;
            }
            found = Some(hit);
            from = hit + 1;
        }
        found
    }

    /// All occurrences, in order.
    pub fn find_all(&self, haystack: &[char]) -> Vec<u32> {
        let mut hits = Vec::new();
        let mut from = 0;
        while let Some(hit) = self.find_next(haystack, from) {
            hits.push(hit);
            from = hit + 1;
        }
        hits
    }
}

/// Naive character-by-character search, the baseline for experiment E10.
pub fn naive_find_next(haystack: &[char], pattern: &str, from: u32) -> Option<u32> {
    let pat: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    let m = pat.len();
    let n = haystack.len();
    if m == 0 || n < m {
        return None;
    }
    'outer: for i in from as usize..=(n - m) {
        for j in 0..m {
            if haystack[i + j].to_lowercase().next().unwrap_or(haystack[i + j]) != pat[j] {
                continue 'outer;
            }
        }
        return Some(i as u32);
    }
    None
}

/// Word-granularity index over a document.
///
/// Maps each lowercased word to the character offsets where it starts.
/// This is the same structure the server's inverted index uses per object,
/// and the structure recognized voice utterances are merged into for
/// symmetric voice pattern browsing (§2: "The recognized voice segments are
/// used to provide content addressibility and browsing by using the same
/// access methods as in text").
#[derive(Clone, Debug, Default)]
pub struct WordIndex {
    map: HashMap<String, Vec<u32>>,
    word_count: usize,
}

impl WordIndex {
    /// Builds the index from a document's word spans.
    pub fn build(doc: &Document) -> Self {
        let mut map: HashMap<String, Vec<u32>> = HashMap::new();
        let mut word_count = 0;
        for span in &doc.tree().words {
            let word = normalize_word(&doc.slice(*span));
            if word.is_empty() {
                continue;
            }
            word_count += 1;
            map.entry(word).or_default().push(span.start);
        }
        WordIndex { map, word_count }
    }

    /// Offsets at which `word` starts (normalized), in document order.
    pub fn positions(&self, word: &str) -> &[u32] {
        self.map.get(&normalize_word(word)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// First occurrence of `word` at or after `from`.
    pub fn next_occurrence(&self, word: &str, from: u32) -> Option<u32> {
        let positions = self.positions(word);
        let idx = positions.partition_point(|&p| p < from);
        positions.get(idx).copied()
    }

    /// Number of distinct words.
    pub fn vocabulary_size(&self) -> usize {
        self.map.len()
    }

    /// Total number of indexed word occurrences.
    pub fn word_count(&self) -> usize {
        self.word_count
    }

    /// Iterates over (word, positions) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u32])> {
        self.map.iter().map(|(w, p)| (w.as_str(), p.as_slice()))
    }
}

/// Lowercases and strips leading/trailing punctuation, the tokenizer shared
/// by the word index and the server's inverted index.
pub fn normalize_word(word: &str) -> String {
    word.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;
    use proptest::prelude::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn finds_all_occurrences() {
        let hay = chars("the voice and the text and the image");
        let s = PatternSearcher::new("the");
        assert_eq!(s.find_all(&hay), vec![0, 14, 27]);
    }

    #[test]
    fn find_next_respects_from() {
        let hay = chars("abcabcabc");
        let s = PatternSearcher::new("abc");
        assert_eq!(s.find_next(&hay, 0), Some(0));
        assert_eq!(s.find_next(&hay, 1), Some(3));
        assert_eq!(s.find_next(&hay, 7), None);
    }

    #[test]
    fn find_prev_finds_last_before() {
        let hay = chars("abcabcabc");
        let s = PatternSearcher::new("abc");
        assert_eq!(s.find_prev(&hay, 9), Some(6));
        assert_eq!(s.find_prev(&hay, 6), Some(3));
        assert_eq!(s.find_prev(&hay, 1), Some(0));
        assert_eq!(s.find_prev(&hay, 0), None);
    }

    #[test]
    fn case_insensitive_by_default() {
        let hay = chars("X-Ray observations: the x-ray shows");
        let s = PatternSearcher::new("x-ray");
        assert_eq!(s.find_all(&hay).len(), 2);
        let cs = PatternSearcher::with_case("x-ray", true);
        assert_eq!(cs.find_all(&hay).len(), 1);
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let hay = chars("anything");
        let s = PatternSearcher::new("");
        assert!(s.is_empty());
        assert_eq!(s.find_next(&hay, 0), None);
        assert_eq!(naive_find_next(&hay, "", 0), None);
    }

    #[test]
    fn pattern_longer_than_haystack() {
        let hay = chars("ab");
        assert_eq!(PatternSearcher::new("abc").find_next(&hay, 0), None);
    }

    #[test]
    fn overlapping_occurrences_are_found() {
        let hay = chars("aaaa");
        let s = PatternSearcher::new("aa");
        assert_eq!(s.find_all(&hay), vec![0, 1, 2]);
    }

    #[test]
    fn matches_at_both_ends() {
        let hay = chars("edge middle edge");
        let s = PatternSearcher::new("edge");
        assert_eq!(s.find_all(&hay), vec![0, 12]);
    }

    proptest! {
        /// BMH agrees with the naive scanner on random inputs.
        #[test]
        fn bmh_agrees_with_naive(
            hay in "[ab ]{0,64}",
            pat in "[ab ]{1,6}",
            from in 0u32..64,
        ) {
            let hay_chars = chars(&hay);
            let s = PatternSearcher::new(&pat);
            prop_assert_eq!(
                s.find_next(&hay_chars, from),
                naive_find_next(&hay_chars, &pat, from)
            );
        }

        /// find_all returns strictly increasing offsets and every offset is
        /// a real match.
        #[test]
        fn find_all_offsets_are_matches(hay in "[abc]{0,80}", pat in "[abc]{1,4}") {
            let hay_chars = chars(&hay);
            let s = PatternSearcher::new(&pat);
            let hits = s.find_all(&hay_chars);
            for pair in hits.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            let pat_chars = chars(&pat);
            for hit in hits {
                let window = &hay_chars[hit as usize..hit as usize + pat_chars.len()];
                prop_assert_eq!(window, &pat_chars[..]);
            }
        }
    }

    fn sample_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.text("The doctor examined the x-ray. The X-RAY showed a shadow.");
        b.end_paragraph();
        b.text("No shadow appeared on the second x-ray image.");
        b.end_paragraph();
        b.finish()
    }

    #[test]
    fn word_index_counts_and_positions() {
        let doc = sample_doc();
        let idx = WordIndex::build(&doc);
        assert_eq!(idx.positions("x-ray").len(), 3);
        assert_eq!(idx.positions("shadow").len(), 2);
        assert_eq!(idx.positions("absent").len(), 0);
        assert!(idx.vocabulary_size() > 5);
        assert_eq!(idx.word_count(), doc.tree().words.len());
    }

    #[test]
    fn word_index_normalizes_case_and_punctuation() {
        let doc = sample_doc();
        let idx = WordIndex::build(&doc);
        // "x-ray." and "X-RAY" both normalize to "x-ray".
        assert_eq!(idx.positions("X-Ray"), idx.positions("x-ray"));
        // Positions are document order.
        let p = idx.positions("x-ray");
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn next_occurrence_walks_forward() {
        let doc = sample_doc();
        let idx = WordIndex::build(&doc);
        let first = idx.next_occurrence("x-ray", 0).unwrap();
        let second = idx.next_occurrence("x-ray", first + 1).unwrap();
        assert!(second > first);
        let third = idx.next_occurrence("x-ray", second + 1).unwrap();
        assert_eq!(idx.next_occurrence("x-ray", third + 1), None);
    }

    #[test]
    fn normalize_word_edge_cases() {
        assert_eq!(normalize_word("Hello,"), "hello");
        assert_eq!(normalize_word("(MINOS)"), "minos");
        assert_eq!(normalize_word("..."), "");
        assert_eq!(normalize_word("x-ray."), "x-ray");
    }
}
