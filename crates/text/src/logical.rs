//! The logical structure tree and navigation over it.
//!
//! "A text segment of a multimedia object in MINOS may be logically
//! subdivided into title, abstract, chapters, and references. Each chapter
//! is subdivided into sections, sections into paragraphs, paragraphs into
//! sentences and sentences into words." (§2)
//!
//! "Browsing capabilities in text or in voice allow the user to see or hear
//! the page with the next or previous start of a logical unit (such as
//! chapter, section, etc.)." — that navigation is implemented here as binary
//! searches over the per-level span lists.
//!
//! Crucially, the *same* [`LogicalLevel`] enum and navigation API are reused
//! by the voice substrate: this shared vocabulary is half of the paper's
//! symmetry argument.

use minos_types::CharSpan;
use std::fmt;

/// A chapter of a text segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chapter {
    /// Heading text.
    pub title: String,
    /// Characters covered (heading through last contained paragraph).
    pub span: CharSpan,
    /// Sections nested within the chapter.
    pub sections: Vec<Section>,
}

/// A section of a chapter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Section {
    /// Heading text.
    pub title: String,
    /// Characters covered.
    pub span: CharSpan,
}

/// The logical levels a one-dimensional medium may be subdivided into.
///
/// Which levels are *available* depends on the object: "The logical browsing
/// options that are available to the user in MINOS depend on the object
/// (e.g. what logical units have been identified for the object)." (§2)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LogicalLevel {
    /// Chapters.
    Chapter,
    /// Sections.
    Section,
    /// Paragraphs.
    Paragraph,
    /// Sentences.
    Sentence,
    /// Words.
    Word,
}

impl LogicalLevel {
    /// All levels, coarsest first.
    pub const ALL: [LogicalLevel; 5] = [
        LogicalLevel::Chapter,
        LogicalLevel::Section,
        LogicalLevel::Paragraph,
        LogicalLevel::Sentence,
        LogicalLevel::Word,
    ];
}

impl fmt::Display for LogicalLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LogicalLevel::Chapter => "chapter",
            LogicalLevel::Section => "section",
            LogicalLevel::Paragraph => "paragraph",
            LogicalLevel::Sentence => "sentence",
            LogicalLevel::Word => "word",
        };
        f.write_str(name)
    }
}

/// A resolved reference to one logical unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitRef {
    /// The unit's level.
    pub level: LogicalLevel,
    /// Index of the unit within its level (0-based, document order).
    pub index: usize,
    /// Characters covered by the unit.
    pub span: CharSpan,
}

/// The logical structure of a text segment.
#[derive(Clone, Debug, Default)]
pub struct LogicalTree {
    /// Title span, if a title was given.
    pub title: Option<CharSpan>,
    /// Abstract span, if an abstract was given.
    pub abstract_span: Option<CharSpan>,
    /// References span, if a references unit was given.
    pub references: Option<CharSpan>,
    /// Chapters in order, with nested sections.
    pub chapters: Vec<Chapter>,
    /// All paragraph spans, document order.
    pub paragraphs: Vec<CharSpan>,
    /// All sentence spans, document order.
    pub sentences: Vec<CharSpan>,
    /// All word spans, document order.
    pub words: Vec<CharSpan>,

    // Flattened caches for navigation.
    chapter_spans: Vec<CharSpan>,
    section_spans: Vec<CharSpan>,
}

impl LogicalTree {
    /// Assembles a tree, computing the flattened navigation caches.
    pub fn new(
        title: Option<CharSpan>,
        abstract_span: Option<CharSpan>,
        references: Option<CharSpan>,
        chapters: Vec<Chapter>,
        paragraphs: Vec<CharSpan>,
        sentences: Vec<CharSpan>,
        words: Vec<CharSpan>,
    ) -> Self {
        let chapter_spans = chapters.iter().map(|c| c.span).collect();
        let section_spans =
            chapters.iter().flat_map(|c| c.sections.iter().map(|s| s.span)).collect();
        LogicalTree {
            title,
            abstract_span,
            references,
            chapters,
            paragraphs,
            sentences,
            words,
            chapter_spans,
            section_spans,
        }
    }

    /// Spans of all units at `level`, in document order.
    pub fn spans(&self, level: LogicalLevel) -> &[CharSpan] {
        match level {
            LogicalLevel::Chapter => &self.chapter_spans,
            LogicalLevel::Section => &self.section_spans,
            LogicalLevel::Paragraph => &self.paragraphs,
            LogicalLevel::Sentence => &self.sentences,
            LogicalLevel::Word => &self.words,
        }
    }

    /// Levels for which at least one unit was identified. Drives the menu:
    /// only identified levels yield browsing options.
    pub fn available_levels(&self) -> Vec<LogicalLevel> {
        LogicalLevel::ALL.into_iter().filter(|l| !self.spans(*l).is_empty()).collect()
    }

    /// The first unit at `level` starting strictly after `pos`
    /// ("next chapter" from the current position).
    pub fn next_start_after(&self, level: LogicalLevel, pos: u32) -> Option<UnitRef> {
        let spans = self.spans(level);
        let idx = spans.partition_point(|s| s.start <= pos);
        spans.get(idx).map(|s| UnitRef { level, index: idx, span: *s })
    }

    /// The last unit at `level` starting strictly before `pos`
    /// ("previous section").
    pub fn prev_start_before(&self, level: LogicalLevel, pos: u32) -> Option<UnitRef> {
        let spans = self.spans(level);
        let idx = spans.partition_point(|s| s.start < pos);
        idx.checked_sub(1).map(|i| UnitRef { level, index: i, span: spans[i] })
    }

    /// The unit at `level` whose span contains `pos`, if any.
    pub fn unit_containing(&self, level: LogicalLevel, pos: u32) -> Option<UnitRef> {
        let spans = self.spans(level);
        let idx = spans.partition_point(|s| s.start <= pos);
        idx.checked_sub(1).and_then(|i| {
            spans[i].contains(pos).then_some(UnitRef { level, index: i, span: spans[i] })
        })
    }

    /// Number of units at `level`.
    pub fn count(&self, level: LogicalLevel) -> usize {
        self.spans(level).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;

    fn tree() -> (LogicalTree, String) {
        let mut b = DocumentBuilder::new();
        b.begin_chapter("One");
        b.text("First para of one. Second sentence.");
        b.end_paragraph();
        b.begin_section("One A");
        b.text("Section content here.");
        b.end_paragraph();
        b.begin_chapter("Two");
        b.text("Para of two.");
        b.end_paragraph();
        let doc = b.finish();
        let text = doc.text();
        (doc.tree().clone(), text)
    }

    #[test]
    fn available_levels_reflect_content() {
        let (t, _) = tree();
        let levels = t.available_levels();
        assert_eq!(
            levels,
            vec![
                LogicalLevel::Chapter,
                LogicalLevel::Section,
                LogicalLevel::Paragraph,
                LogicalLevel::Sentence,
                LogicalLevel::Word
            ]
        );
        let empty = LogicalTree::default();
        assert!(empty.available_levels().is_empty());
    }

    #[test]
    fn next_start_after_moves_forward() {
        let (t, _) = tree();
        // From the very beginning, next chapter is chapter Two (chapter One
        // starts at 0 which is not strictly after 0).
        let next = t.next_start_after(LogicalLevel::Chapter, 0).unwrap();
        assert_eq!(next.index, 1);
        // From inside chapter Two there is no next chapter.
        assert!(t.next_start_after(LogicalLevel::Chapter, next.span.start).is_none());
    }

    #[test]
    fn prev_start_before_moves_backward() {
        let (t, _) = tree();
        let ch2 = t.spans(LogicalLevel::Chapter)[1];
        let prev = t.prev_start_before(LogicalLevel::Chapter, ch2.start).unwrap();
        assert_eq!(prev.index, 0);
        assert!(t.prev_start_before(LogicalLevel::Chapter, 0).is_none());
    }

    #[test]
    fn unit_containing_finds_enclosing_unit() {
        let (t, text) = tree();
        let pos = text.find("Section content").unwrap() as u32;
        let section = t.unit_containing(LogicalLevel::Section, pos).unwrap();
        assert_eq!(section.index, 0);
        let chapter = t.unit_containing(LogicalLevel::Chapter, pos).unwrap();
        assert_eq!(chapter.index, 0);
        // A position in chapter Two is in no section.
        let pos2 = text.find("Para of two").unwrap() as u32;
        assert!(t.unit_containing(LogicalLevel::Section, pos2).is_none());
    }

    #[test]
    fn sentence_navigation_is_fine_grained() {
        let (t, text) = tree();
        let pos = text.find("First para").unwrap() as u32;
        let next_sentence = t.next_start_after(LogicalLevel::Sentence, pos).unwrap();
        let got: String = text
            .chars()
            .skip(next_sentence.span.start as usize)
            .take((next_sentence.span.end - next_sentence.span.start) as usize)
            .collect();
        assert_eq!(got, "Second sentence.");
    }

    #[test]
    fn word_navigation_steps_by_one_word() {
        let (t, _) = tree();
        let w0 = t.spans(LogicalLevel::Word)[0];
        let next = t.next_start_after(LogicalLevel::Word, w0.start).unwrap();
        assert_eq!(next.index, 1);
        let back = t.prev_start_before(LogicalLevel::Word, next.span.start).unwrap();
        assert_eq!(back.index, 0);
    }

    #[test]
    fn counts() {
        let (t, _) = tree();
        assert_eq!(t.count(LogicalLevel::Chapter), 2);
        assert_eq!(t.count(LogicalLevel::Section), 1);
        assert_eq!(t.count(LogicalLevel::Paragraph), 3);
    }

    #[test]
    fn next_prev_are_inverse_on_starts() {
        let (t, _) = tree();
        for level in LogicalLevel::ALL {
            let spans = t.spans(level).to_vec();
            for (i, s) in spans.iter().enumerate().skip(1) {
                let prev = t.prev_start_before(level, s.start).unwrap();
                assert_eq!(prev.index, i - 1, "level {level} unit {i}");
                let next = t.next_start_after(level, prev.span.start).unwrap();
                assert_eq!(next.index, i, "level {level} unit {i}");
            }
        }
    }
}
