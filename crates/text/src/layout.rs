//! Line breaking and justification.
//!
//! Converts a document's blocks into positioned lines for a given column
//! width, honouring fonts, sizes, first-line indents and inline emphasis —
//! the "paragraphing, indenting" facilities of §3. The output is purely
//! geometric: the paginator stacks it into visual pages and the screen
//! substrate rasterizes it.

use crate::document::{Block, Document, Style};
use minos_types::{CharSpan, Size};

/// Font-metric oracle shared by layout (one instance; metrics are pure).
const METRICS: crate::font::FontMetrics = crate::font::FontMetrics;

/// A horizontally positioned run of same-style text on one line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlacedRun {
    /// The run's text.
    pub text: String,
    /// Left edge, pixels from the column's left edge.
    pub x: u32,
    /// Advance width in pixels.
    pub width: u32,
    /// Style to render with.
    pub style: Style,
    /// Characters of the document this run covers.
    pub span: CharSpan,
}

/// One laid-out line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Line {
    /// Runs in left-to-right order.
    pub runs: Vec<PlacedRun>,
    /// Line height (baseline-to-baseline) in pixels.
    pub height: u32,
    /// Characters covered by the line (first to last run).
    pub span: CharSpan,
    /// Total advance width of the line's content.
    pub width: u32,
    /// Whether the line is centered in the column (titles are).
    pub centered: bool,
}

impl Line {
    /// The text of the line (runs concatenated).
    pub fn text(&self) -> String {
        self.runs.iter().map(|r| r.text.as_str()).collect()
    }
}

/// A block after layout.
#[derive(Clone, PartialEq, Debug)]
pub enum LaidBlock {
    /// A text block broken into lines.
    Lines(Vec<Line>),
    /// A figure anchor, passed through with its extent.
    Figure {
        /// Index into [`Document::figures`].
        index: usize,
        /// Pixel extent in the flow.
        size: Size,
    },
}

impl LaidBlock {
    /// Total flow height of the block in pixels.
    pub fn height(&self) -> u32 {
        match self {
            LaidBlock::Lines(lines) => lines.iter().map(|l| l.height).sum(),
            LaidBlock::Figure { size, .. } => size.height,
        }
    }
}

/// Lays out every block of `doc` into a column of `column_width` pixels.
pub fn layout_document(doc: &Document, column_width: u32) -> Vec<LaidBlock> {
    doc.blocks().iter().map(|b| layout_block(doc, b, column_width)).collect()
}

/// Lays out a single block.
pub fn layout_block(doc: &Document, block: &Block, column_width: u32) -> LaidBlock {
    match block {
        Block::Figure(index) => {
            let size = doc.figures()[*index].size;
            LaidBlock::Figure { index: *index, size }
        }
        Block::Title(span) => {
            let mut lines = break_span(doc, *span, column_width, 0);
            for line in &mut lines {
                line.centered = true;
            }
            LaidBlock::Lines(lines)
        }
        Block::Heading { span, .. } => LaidBlock::Lines(break_span(doc, *span, column_width, 0)),
        Block::Paragraph { span, indent } => {
            LaidBlock::Lines(break_span(doc, *span, column_width, *indent))
        }
    }
}

/// A word with per-char styles, pulled out of the canonical stream.
struct MeasuredWord {
    span: CharSpan,
    width: u32,
    /// (text, style, width, char_span) fragments of the word.
    fragments: Vec<(String, Style, u32, CharSpan)>,
    /// Width of a space rendered in the word's leading style.
    space_width: u32,
    line_height: u32,
}

fn measure_words(doc: &Document, span: CharSpan) -> Vec<MeasuredWord> {
    let chars = doc.chars();
    let mut words = Vec::new();
    let mut pos = span.start;
    while pos < span.end {
        // Skip separators.
        while pos < span.end && chars[pos as usize].is_whitespace() {
            pos += 1;
        }
        if pos >= span.end {
            break;
        }
        let word_start = pos;
        let mut fragments: Vec<(String, Style, u32, CharSpan)> = Vec::new();
        let mut width = 0u32;
        let mut line_height = 0u32;
        while pos < span.end && !chars[pos as usize].is_whitespace() {
            let ch = chars[pos as usize];
            let style = doc.style_at(pos);
            let font = style.effective_font();
            let adv = METRICS.advance(font, ch);
            line_height = line_height.max(METRICS.line_height(font));
            width += adv;
            match fragments.last_mut() {
                Some((text, s, w, fspan)) if *s == style => {
                    text.push(ch);
                    *w += adv;
                    fspan.end = pos + 1;
                }
                _ => fragments.push((ch.to_string(), style, adv, CharSpan::at(pos, 1))),
            }
            pos += 1;
        }
        let leading_style = fragments[0].1;
        let space_width = METRICS.advance(leading_style.effective_font(), ' ');
        words.push(MeasuredWord {
            span: CharSpan::new(word_start, pos),
            width,
            fragments,
            space_width,
            line_height,
        });
    }
    words
}

/// Greedy word wrap of `span` into lines of at most `column_width` pixels,
/// indenting the first line by `indent`.
fn break_span(doc: &Document, span: CharSpan, column_width: u32, indent: u32) -> Vec<Line> {
    let words = measure_words(doc, span);
    let mut lines: Vec<Line> = Vec::new();
    let mut current: Vec<&MeasuredWord> = Vec::new();
    let mut current_width = 0u32;
    let mut first_line = true;

    let flush = |lines: &mut Vec<Line>, current: &mut Vec<&MeasuredWord>, first_line: &mut bool| {
        if current.is_empty() {
            return;
        }
        let line_indent = if *first_line { indent } else { 0 };
        *first_line = false;
        let mut runs: Vec<PlacedRun> = Vec::new();
        let mut x = line_indent;
        let mut height = 0u32;
        for (wi, word) in current.iter().enumerate() {
            if wi > 0 {
                x += word.space_width;
                // The inter-word space extends the previous run so that
                // rendering reproduces the canonical stream spacing.
                if let Some(prev) = runs.last_mut() {
                    prev.text.push(' ');
                    prev.width += word.space_width;
                }
            }
            for (text, style, w, fspan) in &word.fragments {
                match runs.last_mut() {
                    Some(prev) if prev.style == *style && prev.span.end == fspan.start => {
                        prev.text.push_str(text);
                        prev.width += w;
                        prev.span.end = fspan.end;
                    }
                    _ => runs.push(PlacedRun {
                        text: text.clone(),
                        x,
                        width: *w,
                        style: *style,
                        span: *fspan,
                    }),
                }
                x += w;
            }
            height = height.max(word.line_height);
        }
        let span = CharSpan::new(current[0].span.start, current.last().unwrap().span.end);
        let width = x;
        lines.push(Line { runs, height, span, width, centered: false });
        current.clear();
    };

    for word in &words {
        let line_indent = if first_line && current.is_empty() { indent } else { 0 };
        let extra = if current.is_empty() { 0 } else { word.space_width };
        let candidate = current_width + extra + word.width;
        let budget = column_width.saturating_sub(if current.is_empty() { line_indent } else { 0 });
        if !current.is_empty() && candidate > budget {
            flush(&mut lines, &mut current, &mut first_line);
            current_width = 0;
        }
        let extra = if current.is_empty() { 0 } else { word.space_width };
        current_width += extra + word.width;
        current.push(word);
    }
    flush(&mut lines, &mut current, &mut first_line);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocumentBuilder, FigureRef};
    use crate::font::{Emphasis, FontFamily, FontSpec};

    fn doc_with(text: &str) -> Document {
        let mut b = DocumentBuilder::new();
        b.text(text);
        b.end_paragraph();
        b.finish()
    }

    fn all_lines(blocks: &[LaidBlock]) -> Vec<&Line> {
        blocks
            .iter()
            .filter_map(|b| match b {
                LaidBlock::Lines(lines) => Some(lines.iter()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn narrow_column_breaks_lines() {
        let doc = doc_with("alpha beta gamma delta epsilon zeta eta theta");
        let wide = layout_document(&doc, 10_000);
        let narrow = layout_document(&doc, 120);
        assert_eq!(all_lines(&wide).len(), 1);
        assert!(all_lines(&narrow).len() > 1);
    }

    #[test]
    fn lines_fit_the_column() {
        let doc = doc_with(
            "the multimedia object presentation manager provides browsing \
             primitives for text voice and images on the workstation screen",
        );
        for width in [100u32, 200, 300, 500] {
            for line in all_lines(&layout_document(&doc, width)) {
                assert!(line.width <= width, "line {:?} overflows {width}px", line.text());
            }
        }
    }

    #[test]
    fn single_word_wider_than_column_gets_its_own_line() {
        let doc = doc_with("supercalifragilisticexpialidocious a");
        let blocks = layout_document(&doc, 30);
        let lines = all_lines(&blocks);
        assert_eq!(lines.len(), 2);
        // The overwide word still occupies one line (no infinite loop, no
        // character split in this model).
        assert!(lines[0].width > 30);
    }

    #[test]
    fn line_spans_partition_paragraph_words() {
        let doc = doc_with("one two three four five six seven eight nine ten");
        let blocks = layout_document(&doc, 150);
        let lines = all_lines(&blocks);
        for pair in lines.windows(2) {
            assert!(pair[0].span.end <= pair[1].span.start);
        }
        // Every word of the paragraph is inside some line span.
        for w in &doc.tree().words {
            assert!(lines.iter().any(|l| l.span.contains_span(w)), "word not covered by any line");
        }
    }

    #[test]
    fn first_line_is_indented() {
        let mut b = DocumentBuilder::new();
        b.set_indent(24);
        b.text("alpha beta gamma delta epsilon zeta eta theta iota kappa");
        b.end_paragraph();
        let doc = b.finish();
        let blocks = layout_document(&doc, 200);
        let lines = all_lines(&blocks);
        assert!(lines.len() >= 2);
        assert_eq!(lines[0].runs[0].x, 24);
        assert_eq!(lines[1].runs[0].x, 0);
    }

    #[test]
    fn title_lines_are_centered() {
        let mut b = DocumentBuilder::new();
        b.title("A Title");
        b.text("body");
        b.end_paragraph();
        let doc = b.finish();
        let blocks = layout_document(&doc, 400);
        match &blocks[0] {
            LaidBlock::Lines(lines) => assert!(lines[0].centered),
            other => panic!("expected lines, got {other:?}"),
        }
        match &blocks[1] {
            LaidBlock::Lines(lines) => assert!(!lines[0].centered),
            other => panic!("expected lines, got {other:?}"),
        }
    }

    #[test]
    fn emphasis_splits_runs_and_preserves_text() {
        let mut b = DocumentBuilder::new();
        b.text("pre ");
        b.toggle_emphasis(Emphasis::BOLD);
        b.text("bold");
        b.toggle_emphasis(Emphasis::BOLD);
        b.text(" post");
        b.end_paragraph();
        let doc = b.finish();
        let blocks = layout_document(&doc, 10_000);
        let lines = all_lines(&blocks);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text(), "pre bold post");
        assert!(lines[0].runs.len() >= 3);
        let bold_run = lines[0].runs.iter().find(|r| r.text.trim() == "bold").expect("bold run");
        assert!(bold_run.style.emphasis.contains(Emphasis::BOLD));
    }

    #[test]
    fn runs_are_contiguous_in_x() {
        let doc = doc_with("some words to lay out in order");
        let blocks = layout_document(&doc, 10_000);
        for line in all_lines(&blocks) {
            let mut x = line.runs[0].x;
            for run in &line.runs {
                assert_eq!(run.x, x, "run {:?} not adjacent", run.text);
                x += run.width;
            }
        }
    }

    #[test]
    fn figure_blocks_pass_through() {
        let mut b = DocumentBuilder::new();
        b.text("before");
        b.figure(FigureRef { tag: "map".into(), size: Size::new(300, 200), caption: None });
        b.end_paragraph();
        let doc = b.finish();
        let blocks = layout_document(&doc, 400);
        assert!(
            matches!(blocks[1], LaidBlock::Figure { index: 0, size } if size == Size::new(300, 200))
        );
        assert_eq!(blocks[1].height(), 200);
    }

    #[test]
    fn larger_font_makes_taller_lines() {
        let mut small = DocumentBuilder::new();
        small.set_font(FontSpec::new(FontFamily::Roman, 10));
        small.text("hello world");
        small.end_paragraph();
        let mut big = DocumentBuilder::new();
        big.set_font(FontSpec::new(FontFamily::Roman, 24));
        big.text("hello world");
        big.end_paragraph();
        let hs = all_lines(&layout_document(&small.finish(), 1000))[0].height;
        let hb = all_lines(&layout_document(&big.finish(), 1000))[0].height;
        assert!(hb > hs);
    }

    #[test]
    fn empty_document_lays_out_to_nothing() {
        let doc = DocumentBuilder::new().finish();
        assert!(layout_document(&doc, 500).is_empty());
    }
}
