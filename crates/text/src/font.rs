//! Deterministic font metrics.
//!
//! The paper calls for "various character fonts, letter sizes" (§3) and for
//! emphasis conventions — "underlined words, tilted words, bold tones" (§2).
//! Real font rasterization is irrelevant to presentation semantics, so the
//! reproduction uses a synthetic metric model: every (family, size) pair has
//! a fixed per-character advance and line height. The model is monotone in
//! size, distinguishes families, and is entirely deterministic, which makes
//! layout and pagination exactly reproducible in tests and benches.

use std::fmt;

/// A typeface family available on the simulated workstation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub enum FontFamily {
    /// Proportional roman text face (the default body face).
    #[default]
    Roman,
    /// Heavier face used for headings and bold emphasis.
    Bold,
    /// Slanted face — the paper's "tilted words".
    Italic,
    /// Fixed-pitch face for verbatim material.
    Typewriter,
}

impl FontFamily {
    /// All families, for sweeps in tests and benches.
    pub const ALL: [FontFamily; 4] =
        [FontFamily::Roman, FontFamily::Bold, FontFamily::Italic, FontFamily::Typewriter];

    /// Parses a family name as written in markup (`.ft bold`).
    pub fn parse(name: &str) -> Option<FontFamily> {
        match name.to_ascii_lowercase().as_str() {
            "roman" | "r" => Some(FontFamily::Roman),
            "bold" | "b" => Some(FontFamily::Bold),
            "italic" | "i" | "tilted" => Some(FontFamily::Italic),
            "typewriter" | "tt" | "fixed" => Some(FontFamily::Typewriter),
            _ => None,
        }
    }
}

impl fmt::Display for FontFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FontFamily::Roman => "roman",
            FontFamily::Bold => "bold",
            FontFamily::Italic => "italic",
            FontFamily::Typewriter => "typewriter",
        };
        f.write_str(name)
    }
}

/// Inline emphasis flags, combinable (a word can be bold *and* underlined).
///
/// Stored as a bitset so style runs stay `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Emphasis(u8);

impl Emphasis {
    /// No emphasis.
    pub const NONE: Emphasis = Emphasis(0);
    /// Bold tone.
    pub const BOLD: Emphasis = Emphasis(1);
    /// Underlined word.
    pub const UNDERLINE: Emphasis = Emphasis(2);
    /// Tilted (italic) word.
    pub const ITALIC: Emphasis = Emphasis(4);

    /// Combines two emphasis sets.
    pub const fn with(self, other: Emphasis) -> Emphasis {
        Emphasis(self.0 | other.0)
    }

    /// Removes the flags in `other`.
    pub const fn without(self, other: Emphasis) -> Emphasis {
        Emphasis(self.0 & !other.0)
    }

    /// Whether all flags in `other` are set.
    pub const fn contains(self, other: Emphasis) -> bool {
        self.0 & other.0 == other.0
    }

    /// Toggles the flags in `other` (markup emphasis markers toggle).
    pub const fn toggled(self, other: Emphasis) -> Emphasis {
        Emphasis(self.0 ^ other.0)
    }

    /// Whether no emphasis is set.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw bits, for codecs.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from raw bits, masking unknown flags.
    pub const fn from_bits(bits: u8) -> Emphasis {
        Emphasis(bits & 0x7)
    }
}

/// A concrete font: family plus point size.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FontSpec {
    /// Typeface family.
    pub family: FontFamily,
    /// Nominal size in points. On the simulated display one point is one
    /// pixel of body height.
    pub size: u8,
}

impl Default for FontSpec {
    fn default() -> Self {
        FontSpec { family: FontFamily::Roman, size: 12 }
    }
}

impl FontSpec {
    /// Creates a font spec.
    pub const fn new(family: FontFamily, size: u8) -> Self {
        Self { family, size }
    }

    /// The body face at the default size.
    pub const BODY: FontSpec = FontSpec::new(FontFamily::Roman, 12);

    /// Applies inline emphasis: bold/italic emphasis switches family (the
    /// 1-bit display has no other way to show weight), underline is drawn by
    /// the renderer and does not change metrics.
    pub fn with_emphasis(self, e: Emphasis) -> FontSpec {
        let family = if e.contains(Emphasis::BOLD) {
            FontFamily::Bold
        } else if e.contains(Emphasis::ITALIC) {
            FontFamily::Italic
        } else {
            self.family
        };
        FontSpec { family, size: self.size }
    }
}

impl fmt::Display for FontSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.family, self.size)
    }
}

/// Metric oracle for the simulated display.
///
/// Widths: proportional faces advance `size * k / 16` pixels per character
/// with `k` depending on the family (bold is wider than roman, italic equal
/// to roman); the typewriter face is fixed-pitch at `size * 10 / 16`.
/// Narrow characters (`i`, `l`, punctuation) advance less in proportional
/// faces. Line height is `size + size/4` (20% leading, rounded down).
#[derive(Debug, Clone, Copy, Default)]
pub struct FontMetrics;

impl FontMetrics {
    /// Advance width of `ch` in pixels under `font`.
    pub fn advance(self, font: FontSpec, ch: char) -> u32 {
        let size = font.size as u32;
        let base_num = match font.family {
            FontFamily::Roman => 9,
            FontFamily::Bold => 10,
            FontFamily::Italic => 9,
            FontFamily::Typewriter => 10,
        };
        let base = (size * base_num).div_ceil(16).max(1);
        if font.family == FontFamily::Typewriter {
            return base; // fixed pitch
        }
        match ch {
            'i' | 'l' | 'j' | 't' | 'f' | '.' | ',' | ';' | ':' | '!' | '\'' | '|' => {
                (base / 2).max(1)
            }
            'm' | 'w' | 'M' | 'W' => base + base / 2,
            ' ' => (base * 3 / 4).max(1),
            _ => base,
        }
    }

    /// Width of a whole string under `font`.
    pub fn text_width(self, font: FontSpec, text: &str) -> u32 {
        text.chars().map(|c| self.advance(font, c)).sum()
    }

    /// Line height (baseline-to-baseline) in pixels for `font`.
    pub fn line_height(self, font: FontSpec) -> u32 {
        let size = font.size as u32;
        size + size / 4
    }

    /// Distance from line top to the baseline.
    pub fn ascent(self, font: FontSpec) -> u32 {
        // Four fifths of the body sit above the baseline in this model.
        (font.size as u32 * 4) / 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: FontMetrics = FontMetrics;

    #[test]
    fn family_parse_round_trip() {
        for fam in FontFamily::ALL {
            assert_eq!(FontFamily::parse(&fam.to_string()), Some(fam));
        }
        assert_eq!(FontFamily::parse("TT"), Some(FontFamily::Typewriter));
        assert_eq!(FontFamily::parse("gothic"), None);
    }

    #[test]
    fn emphasis_algebra() {
        let e = Emphasis::BOLD.with(Emphasis::UNDERLINE);
        assert!(e.contains(Emphasis::BOLD));
        assert!(e.contains(Emphasis::UNDERLINE));
        assert!(!e.contains(Emphasis::ITALIC));
        assert_eq!(e.without(Emphasis::BOLD), Emphasis::UNDERLINE);
        assert_eq!(e.toggled(Emphasis::BOLD), Emphasis::UNDERLINE);
        assert_eq!(e.toggled(Emphasis::ITALIC).toggled(Emphasis::ITALIC), e);
        assert!(Emphasis::NONE.is_none());
    }

    #[test]
    fn emphasis_bits_round_trip() {
        let e = Emphasis::BOLD.with(Emphasis::ITALIC);
        assert_eq!(Emphasis::from_bits(e.bits()), e);
        // Unknown bits are masked off.
        assert_eq!(Emphasis::from_bits(0xff), Emphasis::from_bits(0x7));
    }

    #[test]
    fn widths_monotone_in_size() {
        for fam in FontFamily::ALL {
            let mut prev = 0;
            for size in [8u8, 10, 12, 14, 18, 24] {
                let w = M.text_width(FontSpec::new(fam, size), "multimedia object");
                assert!(w >= prev, "{fam} width not monotone at size {size}");
                prev = w;
            }
        }
    }

    #[test]
    fn bold_is_wider_than_roman() {
        let roman = M.text_width(FontSpec::new(FontFamily::Roman, 12), "presentation");
        let bold = M.text_width(FontSpec::new(FontFamily::Bold, 12), "presentation");
        assert!(bold > roman);
    }

    #[test]
    fn typewriter_is_fixed_pitch() {
        let tt = FontSpec::new(FontFamily::Typewriter, 12);
        assert_eq!(M.advance(tt, 'i'), M.advance(tt, 'm'));
        assert_eq!(M.advance(tt, '.'), M.advance(tt, 'W'));
    }

    #[test]
    fn proportional_narrow_and_wide_chars() {
        let roman = FontSpec::new(FontFamily::Roman, 12);
        assert!(M.advance(roman, 'i') < M.advance(roman, 'a'));
        assert!(M.advance(roman, 'm') > M.advance(roman, 'a'));
    }

    #[test]
    fn advance_never_zero() {
        for fam in FontFamily::ALL {
            let f = FontSpec::new(fam, 1);
            for ch in ['i', ' ', 'a', 'W'] {
                assert!(M.advance(f, ch) >= 1);
            }
        }
    }

    #[test]
    fn line_height_has_leading() {
        let f = FontSpec::new(FontFamily::Roman, 12);
        assert_eq!(M.line_height(f), 15);
        assert!(M.ascent(f) < M.line_height(f));
    }

    #[test]
    fn with_emphasis_switches_family() {
        let f = FontSpec::BODY;
        assert_eq!(f.with_emphasis(Emphasis::BOLD).family, FontFamily::Bold);
        assert_eq!(f.with_emphasis(Emphasis::ITALIC).family, FontFamily::Italic);
        // Bold wins over italic when both are set (matches heading style).
        let both = Emphasis::BOLD.with(Emphasis::ITALIC);
        assert_eq!(f.with_emphasis(both).family, FontFamily::Bold);
        // Underline leaves metrics alone.
        assert_eq!(f.with_emphasis(Emphasis::UNDERLINE), f);
    }

    #[test]
    fn display_format() {
        assert_eq!(FontSpec::new(FontFamily::Bold, 14).to_string(), "bold@14");
    }
}
