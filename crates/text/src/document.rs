//! The parsed document model.
//!
//! A [`Document`] is the crate's central data structure: the canonical
//! character stream of a text segment, the style runs over it, the ordered
//! layout blocks (headings, paragraphs, figure anchors) the paginator
//! consumes, and the logical structure tree used for logical browsing.
//!
//! Positions are character offsets into the canonical stream. The same
//! offsets are used by style runs, the logical tree, pattern search results,
//! logical-message anchors and relevances — which is what lets the
//! presentation manager move between all of those representations.

use crate::font::{Emphasis, FontSpec};
use crate::logical::{Chapter, LogicalTree, Section};
use minos_types::{CharSpan, Size};

/// Character style: the concrete font plus inline emphasis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Style {
    /// Base font before emphasis is applied.
    pub font: FontSpec,
    /// Inline emphasis flags.
    pub emphasis: Emphasis,
}

impl Style {
    /// The font to measure/render with, after emphasis is applied.
    pub fn effective_font(self) -> FontSpec {
        self.font.with_emphasis(self.emphasis)
    }

    /// Whether the renderer should draw an underline.
    pub fn underlined(self) -> bool {
        self.emphasis.contains(Emphasis::UNDERLINE)
    }
}

/// A maximal run of characters sharing one style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StyleRun {
    /// Characters covered.
    pub span: CharSpan,
    /// Their style.
    pub style: Style,
}

/// A reference to image data embedded in the text flow.
///
/// In MINOS "text is intermixed with images in the same page" (§2). At the
/// text level a figure is an anchor: a tag naming a data file (resolved by
/// the object layer) and the pixel extent it will occupy on the page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FigureRef {
    /// Tag naming the data file in the synthesis file (§4).
    pub tag: String,
    /// Pixel extent the figure occupies in the page flow.
    pub size: Size,
    /// Optional caption shown under the figure.
    pub caption: Option<String>,
}

/// One ordered element of the document's presentation flow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Block {
    /// The object title.
    Title(CharSpan),
    /// A chapter (`level == 1`) or section (`level == 2`) heading.
    Heading {
        /// 1 for chapter, 2 for section.
        level: u8,
        /// Characters of the heading text.
        span: CharSpan,
    },
    /// A body paragraph.
    Paragraph {
        /// Characters of the paragraph.
        span: CharSpan,
        /// First-line indent in pixels.
        indent: u32,
    },
    /// An anchored figure; index into [`Document::figures`].
    Figure(usize),
}

impl Block {
    /// The characters this block covers, if any (figures cover none).
    pub fn span(&self) -> Option<CharSpan> {
        match self {
            Block::Title(s) => Some(*s),
            Block::Heading { span, .. } => Some(*span),
            Block::Paragraph { span, .. } => Some(*span),
            Block::Figure(_) => None,
        }
    }
}

/// A fully built text document.
#[derive(Clone, Debug, Default)]
pub struct Document {
    chars: Vec<char>,
    runs: Vec<StyleRun>,
    blocks: Vec<Block>,
    figures: Vec<FigureRef>,
    tree: LogicalTree,
}

impl Document {
    /// The canonical character stream.
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// Total length in characters.
    pub fn len(&self) -> u32 {
        self.chars.len() as u32
    }

    /// Whether the document is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// The whole stream as a `String` (for search and display).
    pub fn text(&self) -> String {
        self.chars.iter().collect()
    }

    /// The characters covered by `span` as a `String`.
    pub fn slice(&self, span: CharSpan) -> String {
        let start = (span.start as usize).min(self.chars.len());
        let end = (span.end as usize).min(self.chars.len());
        self.chars[start..end].iter().collect()
    }

    /// Style in effect at character `pos`. Positions past the end get the
    /// default style.
    pub fn style_at(&self, pos: u32) -> Style {
        match self.runs.binary_search_by(|r| {
            if pos < r.span.start {
                std::cmp::Ordering::Greater
            } else if pos >= r.span.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.runs[i].style,
            Err(_) => Style::default(),
        }
    }

    /// All style runs, in stream order.
    pub fn runs(&self) -> &[StyleRun] {
        &self.runs
    }

    /// Ordered layout blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Figure anchors.
    pub fn figures(&self) -> &[FigureRef] {
        &self.figures
    }

    /// The logical structure tree.
    pub fn tree(&self) -> &LogicalTree {
        &self.tree
    }
}

/// Incrementally constructs a [`Document`].
///
/// Used by the markup parser and directly by synthetic corpus generators.
/// The builder tracks the open chapter/section/abstract/references unit and
/// records logical spans as units close.
#[derive(Debug)]
pub struct DocumentBuilder {
    chars: Vec<char>,
    runs: Vec<StyleRun>,
    blocks: Vec<Block>,
    figures: Vec<FigureRef>,

    // Style state.
    font: FontSpec,
    emphasis: Emphasis,
    indent: u32,

    // Paragraph accumulation: normalized (char, style) pairs.
    para: Vec<(char, Style)>,

    // Logical structure accumulation.
    title: Option<CharSpan>,
    abstract_start: Option<u32>,
    abstract_span: Option<CharSpan>,
    references_start: Option<u32>,
    references_span: Option<CharSpan>,
    chapters: Vec<Chapter>,
    open_chapter: Option<(String, u32, Vec<Section>)>,
    open_section: Option<(String, u32)>,
    paragraphs: Vec<CharSpan>,
    sentences: Vec<CharSpan>,
    words: Vec<CharSpan>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates an empty builder with the default body style.
    pub fn new() -> Self {
        DocumentBuilder {
            chars: Vec::new(),
            runs: Vec::new(),
            blocks: Vec::new(),
            figures: Vec::new(),
            font: FontSpec::BODY,
            emphasis: Emphasis::NONE,
            indent: 0,
            para: Vec::new(),
            title: None,
            abstract_start: None,
            abstract_span: None,
            references_start: None,
            references_span: None,
            chapters: Vec::new(),
            open_chapter: None,
            open_section: None,
            paragraphs: Vec::new(),
            sentences: Vec::new(),
            words: Vec::new(),
        }
    }

    fn pos(&self) -> u32 {
        self.chars.len() as u32
    }

    fn push_char(&mut self, ch: char, style: Style) {
        let at = self.pos();
        self.chars.push(ch);
        match self.runs.last_mut() {
            Some(last) if last.style == style && last.span.end == at => {
                last.span.end = at + 1;
            }
            _ => self.runs.push(StyleRun { span: CharSpan::at(at, 1), style }),
        }
    }

    /// Current base font.
    pub fn font(&self) -> FontSpec {
        self.font
    }

    /// Sets the base font family/size for subsequent text.
    pub fn set_font(&mut self, font: FontSpec) {
        self.font = font;
    }

    /// Sets the first-line indent (pixels) for subsequent paragraphs.
    pub fn set_indent(&mut self, indent: u32) {
        self.indent = indent;
    }

    /// Toggles emphasis flags (markup markers toggle on and off).
    pub fn toggle_emphasis(&mut self, e: Emphasis) {
        self.emphasis = self.emphasis.toggled(e);
    }

    /// Current emphasis flags.
    pub fn emphasis(&self) -> Emphasis {
        self.emphasis
    }

    /// Appends running text to the current paragraph. Whitespace is
    /// normalized at paragraph end; any whitespace separates words.
    pub fn text(&mut self, s: &str) {
        let style = Style { font: self.font, emphasis: self.emphasis };
        for ch in s.chars() {
            self.para.push((ch, style));
        }
    }

    /// Appends a single space worth of separation (used between source
    /// lines of the same paragraph).
    pub fn soft_break(&mut self) {
        let style = Style { font: self.font, emphasis: self.emphasis };
        self.para.push((' ', style));
    }

    /// Emits the accumulated words of `self.para` into the canonical
    /// stream, recording word and sentence spans. Returns the span of the
    /// emitted text (without the trailing newline), or `None` if the buffer
    /// held no words.
    fn flush_words(&mut self) -> Option<CharSpan> {
        // Group into words: maximal runs of non-whitespace.
        let mut emitted_start: Option<u32> = None;
        let mut sentence_start: Option<u32> = None;
        let mut i = 0;
        let para = std::mem::take(&mut self.para);
        while i < para.len() {
            // Skip whitespace.
            while i < para.len() && para[i].0.is_whitespace() {
                i += 1;
            }
            if i >= para.len() {
                break;
            }
            // Separate from previous word.
            if emitted_start.is_some() {
                let sep_style = para[i].1;
                self.push_char(' ', sep_style);
            }
            let word_start = self.pos();
            if emitted_start.is_none() {
                emitted_start = Some(word_start);
            }
            if sentence_start.is_none() {
                sentence_start = Some(word_start);
            }
            let mut last_ch = ' ';
            while i < para.len() && !para[i].0.is_whitespace() {
                let (ch, style) = para[i];
                self.push_char(ch, style);
                last_ch = ch;
                i += 1;
            }
            let word_end = self.pos();
            self.words.push(CharSpan::new(word_start, word_end));
            if matches!(last_ch, '.' | '!' | '?') {
                self.sentences.push(CharSpan::new(sentence_start.take().unwrap(), word_end));
            }
        }
        // Unterminated tail is still a sentence.
        if let Some(start) = sentence_start {
            self.sentences.push(CharSpan::new(start, self.pos()));
        }
        emitted_start.map(|s| CharSpan::new(s, self.pos()))
    }

    /// Closes the current paragraph, if it holds any words, recording a
    /// paragraph span and a layout block.
    pub fn end_paragraph(&mut self) {
        let indent = self.indent;
        if let Some(span) = self.flush_words() {
            let style = Style { font: self.font, emphasis: self.emphasis };
            self.push_char('\n', style);
            self.paragraphs.push(span);
            self.blocks.push(Block::Paragraph { span, indent });
        }
    }

    /// Sets the document title. Title text participates in the canonical
    /// stream so that pattern search can find it.
    pub fn title(&mut self, text: &str) {
        self.end_paragraph();
        let saved_font = self.font;
        self.font = FontSpec::new(crate::font::FontFamily::Bold, saved_font.size + 6);
        self.text(text);
        if let Some(span) = self.flush_words() {
            let style = Style { font: self.font, emphasis: self.emphasis };
            self.push_char('\n', style);
            self.title = Some(span);
            self.blocks.push(Block::Title(span));
        }
        self.font = saved_font;
    }

    fn close_section(&mut self) {
        if let Some((title, start)) = self.open_section.take() {
            let span = CharSpan::new(start, self.pos());
            if let Some((_, _, sections)) = self.open_chapter.as_mut() {
                sections.push(Section { title, span });
            }
        }
    }

    fn close_chapter(&mut self) {
        self.close_section();
        if let Some((title, start, sections)) = self.open_chapter.take() {
            let span = CharSpan::new(start, self.pos());
            self.chapters.push(Chapter { title, span, sections });
        }
    }

    fn close_abstract(&mut self) {
        if let Some(start) = self.abstract_start.take() {
            self.abstract_span = Some(CharSpan::new(start, self.pos()));
        }
    }

    fn close_references(&mut self) {
        if let Some(start) = self.references_start.take() {
            self.references_span = Some(CharSpan::new(start, self.pos()));
        }
    }

    /// Begins the abstract. Ends any open chapter.
    pub fn begin_abstract(&mut self) {
        self.end_paragraph();
        self.close_chapter();
        self.close_references();
        self.abstract_start = Some(self.pos());
    }

    /// Begins a new chapter with the given heading text.
    pub fn begin_chapter(&mut self, heading: &str) {
        self.end_paragraph();
        self.close_chapter();
        self.close_abstract();
        self.close_references();
        let start = self.pos();
        self.emit_heading(heading, 1);
        self.open_chapter = Some((heading.to_string(), start, Vec::new()));
    }

    /// Begins a new section within the open chapter.
    pub fn begin_section(&mut self, heading: &str) {
        self.end_paragraph();
        self.close_section();
        let start = self.pos();
        self.emit_heading(heading, 2);
        self.open_section = Some((heading.to_string(), start));
    }

    /// Begins the references unit.
    pub fn begin_references(&mut self) {
        self.end_paragraph();
        self.close_chapter();
        self.close_abstract();
        self.references_start = Some(self.pos());
    }

    fn emit_heading(&mut self, text: &str, level: u8) {
        let saved_font = self.font;
        let bump = if level == 1 { 4 } else { 2 };
        self.font = FontSpec::new(crate::font::FontFamily::Bold, saved_font.size + bump);
        self.text(text);
        if let Some(span) = self.flush_words() {
            let style = Style { font: self.font, emphasis: self.emphasis };
            self.push_char('\n', style);
            self.blocks.push(Block::Heading { level, span });
        }
        self.font = saved_font;
    }

    /// Anchors a figure at the current position in the flow. Closes the
    /// current paragraph first: figures sit between paragraphs, as in the
    /// paper's visual pages.
    pub fn figure(&mut self, fig: FigureRef) {
        self.end_paragraph();
        let idx = self.figures.len();
        self.figures.push(fig);
        self.blocks.push(Block::Figure(idx));
    }

    /// Finishes the document, closing all open units.
    pub fn finish(mut self) -> Document {
        self.end_paragraph();
        self.close_chapter();
        self.close_abstract();
        self.close_references();
        let tree = LogicalTree::new(
            self.title,
            self.abstract_span,
            self.references_span,
            self.chapters,
            self.paragraphs,
            self.sentences,
            self.words,
        );
        Document {
            chars: self.chars,
            runs: self.runs,
            blocks: self.blocks,
            figures: self.figures,
            tree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::font::FontFamily;

    fn simple_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.title("The MINOS System");
        b.begin_abstract();
        b.text("We present MINOS. It is symmetric.");
        b.end_paragraph();
        b.begin_chapter("Introduction");
        b.text("Workstations appeared in the market. They are powerful.");
        b.end_paragraph();
        b.begin_section("Motivation");
        b.text("Voice matters! Does text?");
        b.end_paragraph();
        b.begin_chapter("Conclusions");
        b.text("The end.");
        b.end_paragraph();
        b.finish()
    }

    #[test]
    fn stream_is_normalized() {
        let doc = simple_doc();
        let text = doc.text();
        assert!(text.starts_with("The MINOS System\n"));
        assert!(text.contains("We present MINOS. It is symmetric.\n"));
        // No double spaces anywhere after normalization.
        assert!(!text.contains("  "));
    }

    #[test]
    fn whitespace_is_collapsed() {
        let mut b = DocumentBuilder::new();
        b.text("a   b\t\tc");
        b.soft_break();
        b.text("   d");
        b.end_paragraph();
        let doc = b.finish();
        assert_eq!(doc.text(), "a b c d\n");
        assert_eq!(doc.tree().words.len(), 4);
    }

    #[test]
    fn empty_paragraphs_are_dropped() {
        let mut b = DocumentBuilder::new();
        b.end_paragraph();
        b.text("   ");
        b.end_paragraph();
        b.text("real");
        b.end_paragraph();
        let doc = b.finish();
        assert_eq!(doc.tree().paragraphs.len(), 1);
        assert_eq!(doc.blocks().len(), 1);
    }

    #[test]
    fn word_spans_match_slices() {
        let doc = simple_doc();
        for w in &doc.tree().words {
            let s = doc.slice(*w);
            assert!(!s.is_empty());
            assert!(!s.contains(' '), "word {s:?} contains space");
        }
    }

    #[test]
    fn sentence_boundaries() {
        let doc = simple_doc();
        let sentences: Vec<String> = doc.tree().sentences.iter().map(|s| doc.slice(*s)).collect();
        assert!(sentences.contains(&"We present MINOS.".to_string()));
        assert!(sentences.contains(&"It is symmetric.".to_string()));
        assert!(sentences.contains(&"Voice matters!".to_string()));
        assert!(sentences.contains(&"Does text?".to_string()));
    }

    #[test]
    fn headings_are_single_sentences() {
        let doc = simple_doc();
        let sentences: Vec<String> = doc.tree().sentences.iter().map(|s| doc.slice(*s)).collect();
        assert!(sentences.contains(&"Introduction".to_string()));
    }

    #[test]
    fn chapter_and_section_structure() {
        let doc = simple_doc();
        let tree = doc.tree();
        assert_eq!(tree.chapters.len(), 2);
        assert_eq!(tree.chapters[0].title, "Introduction");
        assert_eq!(tree.chapters[0].sections.len(), 1);
        assert_eq!(tree.chapters[0].sections[0].title, "Motivation");
        assert_eq!(tree.chapters[1].sections.len(), 0);
        // Chapter spans cover their section content.
        let ch = &tree.chapters[0];
        assert!(ch.span.contains_span(&ch.sections[0].span));
        // Chapters do not overlap.
        assert!(!tree.chapters[0].span.overlaps(&tree.chapters[1].span));
    }

    #[test]
    fn abstract_span_covers_its_paragraph() {
        let doc = simple_doc();
        let abs = doc.tree().abstract_span.expect("abstract");
        let text = doc.slice(abs);
        assert!(text.contains("We present MINOS."));
        assert!(!text.contains("Workstations"));
    }

    #[test]
    fn title_is_recorded_and_styled() {
        let doc = simple_doc();
        let title = doc.tree().title.expect("title");
        assert_eq!(doc.slice(title), "The MINOS System");
        let style = doc.style_at(title.start);
        assert_eq!(style.font.family, FontFamily::Bold);
        assert_eq!(style.font.size, 18);
    }

    #[test]
    fn style_runs_cover_stream_without_gaps() {
        let doc = simple_doc();
        let mut pos = 0;
        for run in doc.runs() {
            assert_eq!(run.span.start, pos, "gap before run");
            pos = run.span.end;
        }
        assert_eq!(pos, doc.len());
    }

    #[test]
    fn adjacent_same_style_runs_merge() {
        let mut b = DocumentBuilder::new();
        b.text("one ");
        b.text("two");
        b.end_paragraph();
        let doc = b.finish();
        assert_eq!(doc.runs().len(), 1);
    }

    #[test]
    fn emphasis_toggles_create_runs() {
        let mut b = DocumentBuilder::new();
        b.text("plain ");
        b.toggle_emphasis(Emphasis::BOLD);
        b.text("bold");
        b.toggle_emphasis(Emphasis::BOLD);
        b.text(" plain");
        b.end_paragraph();
        let doc = b.finish();
        assert_eq!(doc.text(), "plain bold plain\n");
        let bold_pos = doc.text().find("bold").unwrap() as u32;
        assert!(doc.style_at(bold_pos).emphasis.contains(Emphasis::BOLD));
        assert!(doc.style_at(0).emphasis.is_none());
        assert!(doc.style_at(bold_pos).effective_font().family == FontFamily::Bold);
    }

    #[test]
    fn figures_anchor_between_paragraphs() {
        let mut b = DocumentBuilder::new();
        b.text("before");
        b.figure(FigureRef { tag: "xray".into(), size: Size::new(100, 80), caption: None });
        b.text("after");
        b.end_paragraph();
        let doc = b.finish();
        assert_eq!(doc.figures().len(), 1);
        assert_eq!(doc.figures()[0].tag, "xray");
        // Order: paragraph("before"), figure, paragraph("after").
        assert!(matches!(doc.blocks()[0], Block::Paragraph { .. }));
        assert!(matches!(doc.blocks()[1], Block::Figure(0)));
        assert!(matches!(doc.blocks()[2], Block::Paragraph { .. }));
    }

    #[test]
    fn style_at_past_end_is_default() {
        let doc = simple_doc();
        assert_eq!(doc.style_at(doc.len() + 100), Style::default());
    }

    #[test]
    fn references_unit() {
        let mut b = DocumentBuilder::new();
        b.begin_chapter("Body");
        b.text("Content.");
        b.end_paragraph();
        b.begin_references();
        b.text("[Knuth 79] TEX.");
        b.end_paragraph();
        let doc = b.finish();
        let refs = doc.tree().references.expect("references");
        assert!(doc.slice(refs).contains("[Knuth 79]"));
        // Chapter closed before references start.
        assert!(doc.tree().chapters[0].span.end <= refs.start);
    }

    #[test]
    fn block_spans_are_ordered_and_disjoint() {
        let doc = simple_doc();
        let mut prev_end = 0;
        for block in doc.blocks() {
            if let Some(span) = block.span() {
                assert!(span.start >= prev_end);
                prev_end = span.end;
            }
        }
    }
}
