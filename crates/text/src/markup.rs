//! The declarative markup language.
//!
//! Objects "generated interactively in a given environment" carry "tags that
//! the user inserts in order to format the text" (§2), and the object
//! formatter is "declarative … emphasiz\[ing\] more the logical structure of
//! the object instead of how to do the formatting" (§4). This module defines
//! that tag language for the reproduction: a line-oriented format in the
//! tradition of the formatters the paper cites (Scribe, troff, TeX).
//!
//! # Grammar
//!
//! Directive lines start with `.` in column one:
//!
//! | Directive | Meaning |
//! |---|---|
//! | `.ti <text>`        | document title |
//! | `.ab`               | begin abstract |
//! | `.ch <text>`        | begin chapter |
//! | `.se <text>`        | begin section |
//! | `.pp`               | begin a new paragraph |
//! | `.rf`               | begin references |
//! | `.fig <tag> <w> <h> [caption…]` | anchor an image data file |
//! | `.ft <family>`      | switch font family (`roman`, `bold`, `italic`, `typewriter`) |
//! | `.sz <points>`      | switch font size |
//! | `.in <pixels>`      | set paragraph first-line indent |
//!
//! Any other line is paragraph text. Inline emphasis toggles: `*…*` bold,
//! `_…_` underline, `~…~` tilted (italic). A literal `*`, `_`, `~` or
//! leading `.` is escaped with a backslash. Blank lines end the current
//! paragraph (equivalent to `.pp`).

use crate::document::{Document, DocumentBuilder, FigureRef};
use crate::font::{Emphasis, FontFamily, FontSpec};
use minos_types::{MinosError, Result, Size};

/// Parses markup source into a [`Document`].
pub fn parse_markup(source: &str) -> Result<Document> {
    let mut b = DocumentBuilder::new();
    for (lineno0, raw_line) in source.lines().enumerate() {
        let lineno = lineno0 as u32 + 1;
        let line = raw_line.trim_end();
        if let Some(rest) = directive(line) {
            apply_directive(&mut b, rest, lineno)?;
        } else if line.trim().is_empty() {
            b.end_paragraph();
        } else {
            push_inline_text(&mut b, line, lineno)?;
            b.soft_break();
        }
    }
    // Unbalanced emphasis at end of input is an error: silent imbalance
    // would silently restyle the rest of any appended text.
    if !b.emphasis().is_none() {
        return Err(MinosError::parse(
            source.lines().count() as u32,
            "unclosed inline emphasis at end of input",
        ));
    }
    Ok(b.finish())
}

/// Returns the directive body if `line` is a directive (starts with an
/// unescaped `.`).
fn directive(line: &str) -> Option<&str> {
    let stripped = line.strip_prefix('.')?;
    Some(stripped)
}

fn apply_directive(b: &mut DocumentBuilder, body: &str, lineno: u32) -> Result<()> {
    let mut parts = body.splitn(2, char::is_whitespace);
    let name = parts.next().unwrap_or("");
    let arg = parts.next().unwrap_or("").trim();
    match name {
        "ti" => {
            if arg.is_empty() {
                return Err(MinosError::parse(lineno, ".ti requires title text"));
            }
            b.title(arg);
        }
        "ab" => b.begin_abstract(),
        "ch" => {
            if arg.is_empty() {
                return Err(MinosError::parse(lineno, ".ch requires a heading"));
            }
            b.begin_chapter(arg);
        }
        "se" => {
            if arg.is_empty() {
                return Err(MinosError::parse(lineno, ".se requires a heading"));
            }
            b.begin_section(arg);
        }
        "pp" => b.end_paragraph(),
        "rf" => b.begin_references(),
        "fig" => {
            let mut words = arg.split_whitespace();
            let tag = words
                .next()
                .ok_or_else(|| MinosError::parse(lineno, ".fig requires a data-file tag"))?;
            let w: u32 = words
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| MinosError::parse(lineno, ".fig requires a width"))?;
            let h: u32 = words
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| MinosError::parse(lineno, ".fig requires a height"))?;
            if w == 0 || h == 0 {
                return Err(MinosError::parse(lineno, ".fig dimensions must be positive"));
            }
            let caption: String = words.collect::<Vec<_>>().join(" ");
            b.figure(FigureRef {
                tag: tag.to_string(),
                size: Size::new(w, h),
                caption: (!caption.is_empty()).then_some(caption),
            });
        }
        "ft" => {
            let family = FontFamily::parse(arg)
                .ok_or_else(|| MinosError::parse(lineno, format!("unknown font family {arg:?}")))?;
            let size = b.font().size;
            b.set_font(FontSpec::new(family, size));
        }
        "sz" => {
            let size: u8 = arg
                .parse()
                .ok()
                .filter(|&s| (4..=72).contains(&s))
                .ok_or_else(|| MinosError::parse(lineno, "size must be 4..=72 points"))?;
            let family = b.font().family;
            b.set_font(FontSpec::new(family, size));
        }
        "in" => {
            let indent: u32 = arg
                .parse()
                .map_err(|_| MinosError::parse(lineno, "indent must be a pixel count"))?;
            b.set_indent(indent);
        }
        other => {
            return Err(MinosError::parse(lineno, format!("unknown directive .{other}")));
        }
    }
    Ok(())
}

/// Pushes one source line of paragraph text, interpreting inline emphasis
/// markers and backslash escapes.
fn push_inline_text(b: &mut DocumentBuilder, line: &str, lineno: u32) -> Result<()> {
    let mut buf = String::new();
    let mut chars = line.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '\\' => match chars.next() {
                Some(escaped) => buf.push(escaped),
                None => return Err(MinosError::parse(lineno, "dangling backslash at end of line")),
            },
            '*' | '_' | '~' => {
                if !buf.is_empty() {
                    b.text(&buf);
                    buf.clear();
                }
                let e = match ch {
                    '*' => Emphasis::BOLD,
                    '_' => Emphasis::UNDERLINE,
                    _ => Emphasis::ITALIC,
                };
                b.toggle_emphasis(e);
            }
            _ => buf.push(ch),
        }
    }
    if !buf.is_empty() {
        b.text(&buf);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Block;
    use crate::font::FontFamily;
    use crate::logical::LogicalLevel;
    use minos_types::MinosError;

    const SAMPLE: &str = "\
.ti Multimedia Presentation in MINOS
.ab
We describe the presentation manager.
It treats text and voice *symmetrically*.
.ch Introduction
Workstations appeared in the market.
Optical disks become reality.
.se Voice
Voice will be a very important way of communication.
.fig fig1 200 120 A visual page
.ch Conclusions
The manager treats media symmetrically.
.rf
[Knuth 79] TEX: A System for Technical Text.
";

    #[test]
    fn parses_full_structure() {
        let doc = parse_markup(SAMPLE).unwrap();
        let tree = doc.tree();
        assert!(tree.title.is_some());
        assert!(tree.abstract_span.is_some());
        assert!(tree.references.is_some());
        assert_eq!(tree.chapters.len(), 2);
        assert_eq!(tree.chapters[0].sections.len(), 1);
        assert_eq!(doc.figures().len(), 1);
        assert_eq!(doc.figures()[0].caption.as_deref(), Some("A visual page"));
    }

    #[test]
    fn lines_of_same_paragraph_are_joined() {
        let doc = parse_markup(SAMPLE).unwrap();
        let text = doc.text();
        assert!(text.contains("Workstations appeared in the market. Optical disks become reality."));
    }

    #[test]
    fn blank_line_splits_paragraphs() {
        let doc = parse_markup("one one\n\ntwo two\n").unwrap();
        assert_eq!(doc.tree().count(LogicalLevel::Paragraph), 2);
    }

    #[test]
    fn pp_splits_paragraphs() {
        let doc = parse_markup("one one\n.pp\ntwo two\n").unwrap();
        assert_eq!(doc.tree().count(LogicalLevel::Paragraph), 2);
    }

    #[test]
    fn inline_emphasis_is_applied() {
        let doc = parse_markup("plain *bold* _under_ ~tilt~ done\n").unwrap();
        let text = doc.text();
        assert_eq!(text, "plain bold under tilt done\n");
        let at = |needle: &str| text.find(needle).unwrap() as u32;
        assert!(doc.style_at(at("bold")).emphasis.contains(Emphasis::BOLD));
        assert!(doc.style_at(at("under")).emphasis.contains(Emphasis::UNDERLINE));
        assert!(doc.style_at(at("tilt")).emphasis.contains(Emphasis::ITALIC));
        assert!(doc.style_at(at("done")).emphasis.is_none());
    }

    #[test]
    fn escapes_produce_literals() {
        let doc = parse_markup("a \\*star\\* and \\.dot\n").unwrap();
        assert_eq!(doc.text(), "a *star* and .dot\n");
    }

    #[test]
    fn escaped_leading_dot_is_text() {
        let doc = parse_markup("\\.pp is a directive name\n").unwrap();
        assert!(doc.text().starts_with(".pp is"));
        assert_eq!(doc.tree().count(LogicalLevel::Paragraph), 1);
    }

    #[test]
    fn font_directives_change_style() {
        let doc = parse_markup(".ft typewriter\n.sz 10\nverbatim text\n").unwrap();
        let style = doc.style_at(0);
        assert_eq!(style.font.family, FontFamily::Typewriter);
        assert_eq!(style.font.size, 10);
    }

    #[test]
    fn indent_applies_to_paragraph_blocks() {
        let doc = parse_markup(".in 24\nindented paragraph\n").unwrap();
        match &doc.blocks()[0] {
            Block::Paragraph { indent, .. } => assert_eq!(*indent, 24),
            other => panic!("expected paragraph, got {other:?}"),
        }
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let err = parse_markup("hello\n.zz what\n").unwrap_err();
        assert_eq!(err, MinosError::parse(2, "unknown directive .zz"));
    }

    #[test]
    fn missing_heading_is_an_error() {
        assert!(matches!(parse_markup(".ch\n"), Err(MinosError::Parse { line: 1, .. })));
        assert!(matches!(parse_markup(".se  \n"), Err(MinosError::Parse { line: 1, .. })));
    }

    #[test]
    fn bad_fig_arguments_are_errors() {
        assert!(parse_markup(".fig\n").is_err());
        assert!(parse_markup(".fig t\n").is_err());
        assert!(parse_markup(".fig t 10\n").is_err());
        assert!(parse_markup(".fig t 0 10\n").is_err());
        assert!(parse_markup(".fig t 10 10\n").is_ok());
    }

    #[test]
    fn bad_size_is_an_error() {
        assert!(parse_markup(".sz 3\n").is_err());
        assert!(parse_markup(".sz 80\n").is_err());
        assert!(parse_markup(".sz twelve\n").is_err());
    }

    #[test]
    fn unclosed_emphasis_is_an_error() {
        let err = parse_markup("oops *bold forever\n").unwrap_err();
        assert!(matches!(err, MinosError::Parse { .. }));
    }

    #[test]
    fn dangling_backslash_is_an_error() {
        assert!(parse_markup("line ends badly \\\n").is_err());
    }

    #[test]
    fn empty_input_is_an_empty_document() {
        let doc = parse_markup("").unwrap();
        assert!(doc.is_empty());
        assert!(doc.tree().available_levels().is_empty());
    }

    #[test]
    fn emphasis_spanning_lines_within_paragraph() {
        let doc = parse_markup("start *bold\nstill bold* end\n").unwrap();
        let text = doc.text();
        let at = |needle: &str| text.find(needle).unwrap() as u32;
        assert!(doc.style_at(at("still")).emphasis.contains(Emphasis::BOLD));
        assert!(doc.style_at(at("end")).emphasis.is_none());
    }
}
