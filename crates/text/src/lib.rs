//! Text substrate for the MINOS reproduction.
//!
//! MINOS "supports text presentation facilities similar to those that are
//! provided by text formatters" (§2): character fonts, letter sizes,
//! paragraphing, indenting, and a logical subdivision of every text segment
//! into title, abstract, chapters, sections, paragraphs, sentences and
//! words. This crate provides:
//!
//! * [`markup`] — the declarative tag language users write (`.ch`, `.se`,
//!   `.pp`, inline emphasis), in the spirit of the paper's "tags that the
//!   user inserts in order to format the text";
//! * [`document`] — the parsed document: a canonical character stream,
//!   style runs, layout blocks, and figure anchors;
//! * [`logical`] — the logical structure tree and navigation over it
//!   (next/previous chapter, section, paragraph, sentence, word);
//! * [`font`] — deterministic font metrics for the simulated workstation
//!   display;
//! * [`layout`] — line breaking and justification;
//! * [`paginate`] — assembly of laid-out lines into *visual pages*, the
//!   paper's unit of text presentation;
//! * [`search`] — pattern-match browsing support (Boyer–Moore–Horspool over
//!   the canonical stream plus a word index).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod document;
pub mod font;
pub mod layout;
pub mod logical;
pub mod markup;
pub mod paginate;
pub mod search;

pub use document::{Block, Document, DocumentBuilder, FigureRef, Style, StyleRun};
pub use font::{Emphasis, FontFamily, FontMetrics, FontSpec};
pub use layout::{LaidBlock, Line, PlacedRun};
pub use logical::{LogicalLevel, LogicalTree, UnitRef};
pub use markup::parse_markup;
pub use paginate::{PageElement, PaginateConfig, PresentationForm, VisualPage};
pub use search::{PatternSearcher, WordIndex};
