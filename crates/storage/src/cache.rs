//! The LRU block cache.
//!
//! The server subsystem provides "cashing" (§5): hot blocks of the optical
//! store are kept in faster storage (main memory here; experiment E7 also
//! stages through the magnetic disk) so repeated object accesses avoid the
//! optical actuator.

use crate::device::{BlockDevice, DeviceStats};
use minos_types::{ByteSpan, Result, SimDuration};
use std::collections::{BTreeMap, HashMap};

/// Cost of serving a block from cache memory.
pub const CACHE_HIT_COST: SimDuration = SimDuration::from_micros(200);

/// One resident block: its bytes and the use tick keying it in the LRU
/// order.
#[derive(Debug)]
struct CachedBlock {
    data: Vec<u8>,
    tick: u64,
}

/// A read-through LRU block cache over a device.
#[derive(Debug)]
pub struct BlockCache<D: BlockDevice> {
    device: D,
    block_size: u64,
    capacity_blocks: usize,
    blocks: HashMap<u64, CachedBlock>,
    /// Use tick -> block index. Ticks are unique (one per access), so the
    /// first entry is always the least recently used block: eviction is
    /// O(log n) instead of a scan over the whole cache.
    lru: BTreeMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<D: BlockDevice> BlockCache<D> {
    /// Wraps `device` with a cache of `capacity_blocks` blocks of
    /// `block_size` bytes.
    pub fn new(device: D, block_size: u64, capacity_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(capacity_blocks > 0, "cache must hold at least one block");
        BlockCache {
            device,
            block_size,
            capacity_blocks,
            blocks: HashMap::with_capacity(capacity_blocks),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The wrapped device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable access to the wrapped device (appends bypass the cache).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Underlying device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    fn evict_if_full(&mut self) {
        while self.blocks.len() >= self.capacity_blocks {
            // An empty recency map with resident blocks would mean the LRU
            // order lost track of them; stop evicting rather than spin.
            let Some((_, block)) = self.lru.pop_first() else {
                break;
            };
            self.blocks.remove(&block);
        }
    }

    /// Reads a span through the cache. Whole blocks are fetched on miss;
    /// the returned duration charges device time for missed blocks plus
    /// the in-memory cost for hits. Hits copy only the requested slice of
    /// the resident block — no per-hit block clone.
    pub fn read_at(&mut self, span: ByteSpan) -> Result<(Vec<u8>, SimDuration)> {
        if span.is_empty() {
            return Ok((Vec::new(), SimDuration::ZERO));
        }
        if span.end > self.device.len() {
            return Err(minos_types::MinosError::Storage(format!(
                "cached read {span} past device frontier {}",
                self.device.len()
            )));
        }
        let first = span.start / self.block_size;
        let last = (span.end - 1) / self.block_size;
        let mut total = SimDuration::ZERO;
        let mut out = Vec::with_capacity(span.len() as usize);
        for block in first..=last {
            self.tick += 1;
            let tick = self.tick;
            if let Some(entry) = self.blocks.get_mut(&block) {
                self.lru.remove(&entry.tick);
                self.lru.insert(tick, block);
                entry.tick = tick;
                total += CACHE_HIT_COST;
                self.hits += 1;
                Self::copy_block_part(&mut out, &entry.data, block, self.block_size, span);
            } else {
                self.misses += 1;
                let start = block * self.block_size;
                let end = (start + self.block_size).min(self.device.len());
                let (data, took) = self.device.read_at(ByteSpan::new(start, end))?;
                total += took;
                self.evict_if_full();
                Self::copy_block_part(&mut out, &data, block, self.block_size, span);
                self.blocks.insert(block, CachedBlock { data, tick });
                self.lru.insert(tick, block);
            }
        }
        Ok((out, total))
    }

    fn copy_block_part(
        out: &mut Vec<u8>,
        data: &[u8],
        block: u64,
        block_size: u64,
        span: ByteSpan,
    ) {
        let block_start = block * block_size;
        let from = span.start.max(block_start) - block_start;
        let to = (span.end.min(block_start + block_size) - block_start).min(data.len() as u64);
        if let Some(part) = data.get(from as usize..to as usize) {
            out.extend_from_slice(part);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magnetic::MagneticDisk;
    use crate::optical::OpticalDisk;

    fn loaded_cache(blocks: usize) -> BlockCache<OpticalDisk> {
        let mut disk = OpticalDisk::with_capacity(1 << 20);
        let data: Vec<u8> = (0..40_960u32).map(|i| (i % 251) as u8).collect();
        disk.append(&data).unwrap();
        BlockCache::new(disk, 4_096, blocks)
    }

    #[test]
    fn read_returns_correct_bytes() {
        let mut c = loaded_cache(4);
        let (data, _) = c.read_at(ByteSpan::at(1_000, 6_000)).unwrap();
        assert_eq!(data.len(), 6_000);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(b, ((1_000 + i) % 251) as u8, "byte {i}");
        }
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let mut c = loaded_cache(8);
        let span = ByteSpan::at(0, 4_096);
        let (_, cold) = c.read_at(span).unwrap();
        let (_, warm) = c.read_at(span).unwrap();
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
        assert!(warm * 10 < cold, "warm {warm} not ≪ cold {cold}");
        assert_eq!(warm, CACHE_HIT_COST);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = loaded_cache(2);
        c.read_at(ByteSpan::at(0, 100)).unwrap(); // block 0
        c.read_at(ByteSpan::at(4_096, 100)).unwrap(); // block 1
        c.read_at(ByteSpan::at(0, 100)).unwrap(); // touch block 0
        c.read_at(ByteSpan::at(8_192, 100)).unwrap(); // block 2 evicts block 1
        c.read_at(ByteSpan::at(0, 100)).unwrap(); // still cached
        assert_eq!(c.hits(), 2);
        c.read_at(ByteSpan::at(4_096, 100)).unwrap(); // block 1 must re-read
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn spanning_reads_mix_hits_and_misses() {
        let mut c = loaded_cache(8);
        c.read_at(ByteSpan::at(0, 4_096)).unwrap(); // block 0 cached
        let (data, _) = c.read_at(ByteSpan::at(2_000, 4_096)).unwrap(); // blocks 0,1
        assert_eq!(data.len(), 4_096);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn empty_span_costs_nothing() {
        let mut c = loaded_cache(2);
        let (data, took) = c.read_at(ByteSpan::empty_at(5)).unwrap();
        assert!(data.is_empty());
        assert_eq!(took, SimDuration::ZERO);
    }

    #[test]
    fn read_past_end_is_error() {
        let mut c = loaded_cache(2);
        assert!(c.read_at(ByteSpan::at(40_000, 10_000)).is_err());
    }

    #[test]
    fn hit_ratio_reporting() {
        let mut c = loaded_cache(8);
        assert_eq!(c.hit_ratio(), 0.0);
        c.read_at(ByteSpan::at(0, 100)).unwrap();
        c.read_at(ByteSpan::at(0, 100)).unwrap();
        c.read_at(ByteSpan::at(0, 100)).unwrap();
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_order_survives_many_touches() {
        // Touch pattern chosen so a tick-scan and a true LRU order agree;
        // guards the BTreeMap order against drift from repeated re-touches.
        let mut c = loaded_cache(3);
        for round in 0..20u64 {
            for block in 0..3u64 {
                c.read_at(ByteSpan::at(block * 4_096, 10)).unwrap();
                let _ = round;
            }
        }
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 57);
        // Block 0 is now least recent: loading block 3 must evict it only.
        c.read_at(ByteSpan::at(3 * 4_096, 10)).unwrap();
        c.read_at(ByteSpan::at(4_096, 10)).unwrap(); // block 1: still hit
        c.read_at(ByteSpan::at(2 * 4_096, 10)).unwrap(); // block 2: still hit
        assert_eq!(c.hits(), 59);
        c.read_at(ByteSpan::at(0, 10)).unwrap(); // block 0: must re-read
        assert_eq!(c.misses(), 5);
    }

    #[test]
    fn works_over_magnetic_too() {
        let mut disk = MagneticDisk::with_capacity(1 << 20);
        disk.append(&[9u8; 8_192]).unwrap();
        let mut c = BlockCache::new(disk, 4_096, 2);
        let (data, _) = c.read_at(ByteSpan::at(4_000, 200)).unwrap();
        assert_eq!(data, vec![9u8; 200]);
    }
}
