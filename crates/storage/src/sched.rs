//! Request scheduling on a shared device.
//!
//! "Performance may be crucial due to queueing delays that may be
//! experienced when several users try to access data from the same
//! device. The subsystem provides access methods, scheduling …" (§5)
//!
//! A small discrete-event simulation: requests arrive at given instants,
//! the device serves one at a time, and the scheduler picks the next
//! request from the queue either in arrival order (FCFS) or by an elevator
//! sweep over byte offsets (the classic seek-minimizing policy). Experiment
//! E7 runs both against the optical disk under increasing load.

use crate::device::BlockDevice;
use minos_types::{ByteSpan, Result, SimDuration, SimInstant};

/// Scheduling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPolicy {
    /// First come, first served.
    Fcfs,
    /// Elevator (SCAN): serve the nearest request in the sweep direction,
    /// reversing at the ends.
    Elevator,
}

/// A read request against the shared device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// Caller-chosen identifier.
    pub id: u64,
    /// When the request arrives at the server.
    pub arrival: SimInstant,
    /// The bytes requested.
    pub span: ByteSpan,
}

/// The outcome of one request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// The request's identifier.
    pub id: u64,
    /// When service began.
    pub start: SimInstant,
    /// When the data was delivered.
    pub finish: SimInstant,
    /// Queueing delay (start − arrival).
    pub wait: SimDuration,
    /// Total response time (finish − arrival).
    pub response: SimDuration,
}

/// Runs the queueing simulation: serves every request on `device` under
/// `policy`, returning completions in service order.
pub fn simulate_schedule(
    device: &mut dyn BlockDevice,
    requests: &[Request],
    policy: SchedPolicy,
) -> Result<Vec<Completion>> {
    let mut pending: Vec<Request> = requests.to_vec();
    pending.sort_by_key(|r| (r.arrival, r.id));
    let mut queue: Vec<Request> = Vec::new();
    let mut completions = Vec::with_capacity(pending.len());
    let mut now = SimInstant::EPOCH;
    let mut next_arrival = 0usize;
    let mut sweep_up = true;

    while next_arrival < pending.len() || !queue.is_empty() {
        // Admit everything that has arrived by now.
        while let Some(request) = pending.get(next_arrival) {
            if request.arrival > now {
                break;
            }
            queue.push(*request);
            next_arrival += 1;
        }
        if queue.is_empty() {
            // Idle until the next arrival (the loop condition guarantees
            // one exists when the queue is empty).
            match pending.get(next_arrival) {
                Some(request) => now = request.arrival,
                None => break,
            }
            continue;
        }
        // Pick the next request.
        let idx = match policy {
            SchedPolicy::Fcfs => 0,
            SchedPolicy::Elevator => {
                let head = device.head_position();
                let pick = |up: bool| {
                    queue
                        .iter()
                        .enumerate()
                        .filter(
                            |(_, r)| {
                                if up {
                                    r.span.start >= head
                                } else {
                                    r.span.start <= head
                                }
                            },
                        )
                        .min_by_key(|(_, r)| r.span.start.abs_diff(head))
                        .map(|(i, _)| i)
                };
                match pick(sweep_up) {
                    Some(i) => i,
                    None => {
                        sweep_up = !sweep_up;
                        pick(sweep_up).expect("queue is non-empty")
                    }
                }
            }
        };
        let request = queue.remove(idx);
        let start = now;
        let (_, took) = device.read_at(request.span)?;
        now = now + took;
        completions.push(Completion {
            id: request.id,
            start,
            finish: now,
            wait: start.saturating_since(request.arrival),
            response: now.since(request.arrival),
        });
    }
    Ok(completions)
}

/// Mean response time over a set of completions.
pub fn mean_response(completions: &[Completion]) -> SimDuration {
    if completions.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u64 = completions.iter().map(|c| c.response.as_micros()).sum();
    SimDuration::from_micros(total / completions.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optical::OpticalDisk;

    fn loaded_disk() -> OpticalDisk {
        let mut d = OpticalDisk::with_capacity(64 << 20);
        d.append(&vec![0u8; 32 << 20]).unwrap();
        d
    }

    fn burst(n: u64, stride: u64, len: u64) -> Vec<Request> {
        // n simultaneous requests scattered over the disk.
        (0..n)
            .map(|i| Request {
                id: i,
                arrival: SimInstant::EPOCH,
                span: ByteSpan::at((i * stride * 7919) % (30 << 20), len),
            })
            .collect()
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut d = loaded_disk();
        let reqs = vec![
            Request { id: 10, arrival: SimInstant::from_micros(0), span: ByteSpan::at(0, 100) },
            Request {
                id: 11,
                arrival: SimInstant::from_micros(1),
                span: ByteSpan::at(5_000_000, 100),
            },
            Request { id: 12, arrival: SimInstant::from_micros(2), span: ByteSpan::at(100, 100) },
        ];
        let done = simulate_schedule(&mut d, &reqs, SchedPolicy::Fcfs).unwrap();
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn completions_are_consistent() {
        let mut d = loaded_disk();
        let reqs = burst(20, 1 << 16, 4_096);
        let done = simulate_schedule(&mut d, &reqs, SchedPolicy::Fcfs).unwrap();
        assert_eq!(done.len(), 20);
        for c in &done {
            assert!(c.finish > c.start);
            assert_eq!(c.response, c.wait + c.finish.since(c.start));
        }
        // Service is serialized: starts are ordered.
        for pair in done.windows(2) {
            assert!(pair[1].start >= pair[0].finish);
        }
    }

    #[test]
    fn elevator_beats_fcfs_on_scattered_burst() {
        let reqs = burst(40, 1 << 14, 4_096);
        let mut d1 = loaded_disk();
        let fcfs = simulate_schedule(&mut d1, &reqs, SchedPolicy::Fcfs).unwrap();
        let mut d2 = loaded_disk();
        let elevator = simulate_schedule(&mut d2, &reqs, SchedPolicy::Elevator).unwrap();
        let mf = mean_response(&fcfs);
        let me = mean_response(&elevator);
        assert!(me < mf, "elevator {me} not better than fcfs {mf}");
    }

    #[test]
    fn elevator_serves_everything_exactly_once() {
        let mut d = loaded_disk();
        let reqs = burst(25, 1 << 15, 1_024);
        let done = simulate_schedule(&mut d, &reqs, SchedPolicy::Elevator).unwrap();
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let mut d = loaded_disk();
        let reqs = vec![
            Request { id: 0, arrival: SimInstant::from_micros(0), span: ByteSpan::at(0, 100) },
            Request {
                id: 1,
                arrival: SimInstant::EPOCH + SimDuration::from_secs(100),
                span: ByteSpan::at(200, 100),
            },
        ];
        let done = simulate_schedule(&mut d, &reqs, SchedPolicy::Fcfs).unwrap();
        assert_eq!(done[1].start, SimInstant::EPOCH + SimDuration::from_secs(100));
        assert_eq!(done[1].wait, SimDuration::ZERO);
    }

    #[test]
    fn later_arrivals_wait_under_load() {
        let mut d = loaded_disk();
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request {
                id: i,
                arrival: SimInstant::from_micros(i * 1_000),
                span: ByteSpan::at(i * 1_000_000, 100_000),
            })
            .collect();
        let done = simulate_schedule(&mut d, &reqs, SchedPolicy::Fcfs).unwrap();
        let last = done.last().unwrap();
        assert!(last.wait > SimDuration::from_secs(1), "expected queueing, wait {}", last.wait);
    }

    #[test]
    fn empty_request_set() {
        let mut d = loaded_disk();
        let done = simulate_schedule(&mut d, &[], SchedPolicy::Elevator).unwrap();
        assert!(done.is_empty());
        assert_eq!(mean_response(&done), SimDuration::ZERO);
    }
}
