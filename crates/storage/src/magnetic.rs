//! The rewritable magnetic disk.
//!
//! The server subsystem "may also contain one or more high performance
//! magnetic disks" (§5) — smaller than the optical store but several times
//! faster to access, which is what makes it worth staging hot blocks on
//! (experiment E7's cache configuration).

use crate::device::{BlockDevice, DeviceStats, TimingModel};
use minos_types::{ByteSpan, MinosError, Result, SimDuration};

/// Default capacity: 100 MB.
pub const DEFAULT_MAGNETIC_CAPACITY: u64 = 100 << 20;

/// Mid-80s high-performance magnetic disk: ~25 ms average access, 1 MB/s.
pub const MAGNETIC_TIMING: TimingModel = TimingModel {
    seek_base: SimDuration::from_millis(8),
    seek_full_stroke: SimDuration::from_millis(40),
    rotation: SimDuration::from_millis(8),
    transfer_rate: 1_000_000,
};

/// A rewritable magnetic disk.
#[derive(Clone, Debug)]
pub struct MagneticDisk {
    data: Vec<u8>,
    capacity: u64,
    head: u64,
    timing: TimingModel,
    stats: DeviceStats,
}

impl MagneticDisk {
    /// A disk with the default capacity and timing.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAGNETIC_CAPACITY)
    }

    /// A disk with explicit capacity.
    pub fn with_capacity(capacity: u64) -> Self {
        MagneticDisk {
            data: Vec::new(),
            capacity,
            head: 0,
            timing: MAGNETIC_TIMING,
            stats: DeviceStats::default(),
        }
    }

    /// Overrides the timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }
}

impl Default for MagneticDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for MagneticDisk {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn head_position(&self) -> u64 {
        self.head
    }

    fn access_cost(&self, offset: u64, len: u64) -> SimDuration {
        self.timing.access(self.head, offset, len, self.capacity)
    }

    fn read_at(&mut self, span: ByteSpan) -> Result<(Vec<u8>, SimDuration)> {
        if span.end > self.len() {
            return Err(MinosError::Storage(format!(
                "read {span} past magnetic frontier {}",
                self.len()
            )));
        }
        let took = self.access_cost(span.start, span.len());
        let data = self
            .data
            .get(span.start as usize..span.end as usize)
            .ok_or_else(|| MinosError::Storage(format!("read {span} outside magnetic media")))?
            .to_vec();
        self.head = span.end;
        self.stats.record_read(span.len(), took);
        Ok((data, took))
    }

    fn append(&mut self, data: &[u8]) -> Result<(u64, SimDuration)> {
        let offset = self.len();
        if offset + data.len() as u64 > self.capacity {
            return Err(MinosError::Storage(format!(
                "magnetic disk full: {} + {} > {}",
                offset,
                data.len(),
                self.capacity
            )));
        }
        let took = self.access_cost(offset, data.len() as u64);
        self.data.extend_from_slice(data);
        self.head = self.len();
        self.stats.record_write(data.len() as u64, took);
        Ok((offset, took))
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        let end = offset + data.len() as u64;
        if end > self.len() {
            return Err(MinosError::Storage(format!(
                "write [{offset}, {end}) past magnetic frontier {}",
                self.len()
            )));
        }
        let took = self.access_cost(offset, data.len() as u64);
        self.data
            .get_mut(offset as usize..end as usize)
            .ok_or_else(|| {
                MinosError::Storage(format!("write [{offset}, {end}) outside magnetic media"))
            })?
            .copy_from_slice(data);
        self.head = end;
        self.stats.record_write(data.len() as u64, took);
        Ok(took)
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optical::OpticalDisk;

    #[test]
    fn rewrite_in_place_works() {
        let mut d = MagneticDisk::with_capacity(1 << 20);
        d.append(b"original!!").unwrap();
        d.write_at(0, b"rewritten").unwrap();
        let (data, _) = d.read_at(ByteSpan::at(0, 10)).unwrap();
        assert_eq!(&data, b"rewritten!");
    }

    #[test]
    fn write_past_frontier_is_error() {
        let mut d = MagneticDisk::with_capacity(1 << 20);
        d.append(b"xy").unwrap();
        assert!(d.write_at(1, b"abc").is_err());
    }

    #[test]
    fn magnetic_is_faster_than_optical() {
        let mut m = MagneticDisk::with_capacity(1 << 20);
        let mut o = OpticalDisk::with_capacity(1 << 20);
        let payload = vec![0u8; 100_000];
        m.append(&payload).unwrap();
        o.append(&payload).unwrap();
        let span = ByteSpan::at(0, 100_000);
        let (_, tm) = m.read_at(span).unwrap();
        let (_, to) = o.read_at(span).unwrap();
        assert!(tm * 2 < to, "magnetic {tm} not ≪ optical {to}");
    }

    #[test]
    fn capacity_enforced() {
        let mut d = MagneticDisk::with_capacity(4);
        assert!(d.append(&[0; 5]).is_err());
        d.append(&[0; 4]).unwrap();
    }

    #[test]
    fn stats_cover_rewrites() {
        let mut d = MagneticDisk::with_capacity(1 << 20);
        d.append(&[0; 10]).unwrap();
        d.write_at(0, &[1; 10]).unwrap();
        assert_eq!(d.stats().writes, 2);
        assert_eq!(d.stats().bytes_written, 20);
    }
}
