//! The write-once optical disk.
//!
//! "Optical disks with huge storage capacities become reality. They will be
//! appropriate for storing text, digitized voice and digitized images."
//! (§1) The mid-80s optical disk is WORM: huge, slow to seek, modest
//! transfer rate, and sectors can never be rewritten — which is why
//! archived objects are immutable and version control appends.

use crate::device::{BlockDevice, DeviceStats, TimingModel};
use minos_types::{ByteSpan, MinosError, Result, SimDuration};

/// Default capacity: 1 GB — "huge" for 1986.
pub const DEFAULT_OPTICAL_CAPACITY: u64 = 1 << 30;

/// Mid-80s optical timing: slow actuator, ~250 KB/s transfer.
pub const OPTICAL_TIMING: TimingModel = TimingModel {
    seek_base: SimDuration::from_millis(35),
    seek_full_stroke: SimDuration::from_millis(250),
    rotation: SimDuration::from_millis(20),
    transfer_rate: 250_000,
};

/// A write-once optical disk.
#[derive(Clone, Debug)]
pub struct OpticalDisk {
    data: Vec<u8>,
    capacity: u64,
    head: u64,
    timing: TimingModel,
    stats: DeviceStats,
    /// Probability a read transiently fails (media degradation).
    fault_rate: f64,
    /// Deterministic state for the fault stream.
    fault_state: u64,
    /// Probability a read surfaces latent bit rot (per read).
    rot_rate: f64,
    /// Deterministic state for the bit-rot stream.
    rot_state: u64,
    /// Bits flipped in the media by latent rot so far.
    rot_flips: u64,
}

impl OpticalDisk {
    /// A disk with the default capacity and timing.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_OPTICAL_CAPACITY)
    }

    /// A disk with explicit capacity.
    pub fn with_capacity(capacity: u64) -> Self {
        OpticalDisk {
            data: Vec::new(),
            capacity,
            head: 0,
            timing: OPTICAL_TIMING,
            stats: DeviceStats::default(),
            fault_rate: 0.0,
            fault_state: 0,
            rot_rate: 0.0,
            rot_state: 0,
            rot_flips: 0,
        }
    }

    /// Overrides the timing model (for calibration sweeps).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// A disk whose reads transiently fail with probability `rate`,
    /// deterministically in `seed` — the aging-media error path for the
    /// fault experiments. A failed read moves nothing, charges no device
    /// time, and leaves the head in place; retrying the same span may
    /// succeed. Appends never fault: archival is verified at write time.
    pub fn with_read_faults(mut self, seed: u64, rate: f64) -> Self {
        self.fault_state = seed;
        self.fault_rate = rate;
        self
    }

    /// A disk whose media suffers latent bit rot: each successful read
    /// has probability `rate` of *persistently* flipping one bit inside
    /// the span it touches, deterministically in `seed`. Decay is
    /// physics, not a write — the WORM interface still refuses
    /// overwrites, the read returns the now-corrupt bytes with normal
    /// timing, and only a checksum can tell. The scrub/read-repair path
    /// exists to catch exactly this.
    pub fn with_bit_rot(mut self, seed: u64, rate: f64) -> Self {
        self.set_bit_rot(seed, rate);
        self
    }

    /// Enables (or re-seeds) latent bit rot on a live disk — the chaos
    /// orchestrator's knob for media already serving a fleet member.
    pub fn set_bit_rot(&mut self, seed: u64, rate: f64) {
        self.rot_state = seed;
        self.rot_rate = rate;
    }

    /// Bits flipped by latent rot over the disk's lifetime.
    pub fn bit_rot_flips(&self) -> u64 {
        self.rot_flips
    }

    /// One SplitMix64 step of the rot stream.
    fn rot_draw(&mut self) -> u64 {
        self.rot_state = self.rot_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rot_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Possibly decays one bit of the media inside `span` before a read
    /// returns it. The flip lands at a rot-stream-chosen offset, so equal
    /// seeds decay equal bits — chaos schedules replay exactly.
    fn apply_bit_rot(&mut self, span: ByteSpan) {
        if self.rot_rate <= 0.0 || span.is_empty() {
            return;
        }
        let draw = self.rot_draw();
        if ((draw >> 11) as f64 / (1u64 << 53) as f64) >= self.rot_rate {
            return;
        }
        let within = self.rot_draw();
        let offset = span.start + within % span.len();
        let bit = (within >> 32) % 8;
        if let Some(byte) = self.data.get_mut(offset as usize) {
            *byte ^= 1 << bit;
            self.rot_flips += 1;
        }
    }

    /// One Bernoulli draw from the deterministic fault stream. SplitMix64,
    /// inlined so the storage crate stays free of a transport dependency.
    fn read_fault_fires(&mut self) -> bool {
        if self.fault_rate <= 0.0 {
            return false;
        }
        if self.fault_rate >= 1.0 {
            return true;
        }
        self.fault_state = self.fault_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.fault_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < self.fault_rate
    }
}

impl Default for OpticalDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for OpticalDisk {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn head_position(&self) -> u64 {
        self.head
    }

    fn access_cost(&self, offset: u64, len: u64) -> SimDuration {
        self.timing.access(self.head, offset, len, self.capacity)
    }

    fn read_at(&mut self, span: ByteSpan) -> Result<(Vec<u8>, SimDuration)> {
        if span.end > self.len() {
            return Err(MinosError::Storage(format!(
                "read {span} past optical frontier {}",
                self.len()
            )));
        }
        if self.read_fault_fires() {
            return Err(MinosError::Storage(format!("transient read fault at {span}")));
        }
        self.apply_bit_rot(span);
        let took = self.access_cost(span.start, span.len());
        let data = self
            .data
            .get(span.start as usize..span.end as usize)
            .ok_or_else(|| {
                MinosError::Storage(format!("read {span} outside optical media bounds"))
            })?
            .to_vec();
        self.head = span.end;
        self.stats.record_read(span.len(), took);
        Ok((data, took))
    }

    fn read_at_into(&mut self, span: ByteSpan, out: &mut Vec<u8>) -> Result<SimDuration> {
        if span.end > self.len() {
            return Err(MinosError::Storage(format!(
                "read {span} past optical frontier {}",
                self.len()
            )));
        }
        if self.read_fault_fires() {
            return Err(MinosError::Storage(format!("transient read fault at {span}")));
        }
        self.apply_bit_rot(span);
        let took = self.access_cost(span.start, span.len());
        let data = self.data.get(span.start as usize..span.end as usize).ok_or_else(|| {
            MinosError::Storage(format!("read {span} outside optical media bounds"))
        })?;
        out.clear();
        out.extend_from_slice(data);
        self.head = span.end;
        self.stats.record_read(span.len(), took);
        Ok(took)
    }

    fn append(&mut self, data: &[u8]) -> Result<(u64, SimDuration)> {
        let offset = self.len();
        if offset + data.len() as u64 > self.capacity {
            return Err(MinosError::Storage(format!(
                "optical disk full: {} + {} > {}",
                offset,
                data.len(),
                self.capacity
            )));
        }
        let took = self.access_cost(offset, data.len() as u64);
        self.data.extend_from_slice(data);
        self.head = self.len();
        self.stats.record_write(data.len() as u64, took);
        Ok((offset, took))
    }

    fn write_at(&mut self, offset: u64, _data: &[u8]) -> Result<SimDuration> {
        Err(MinosError::Storage(format!(
            "optical disk is write-once: cannot overwrite at {offset}"
        )))
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_read_round_trips() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        let (off_a, _) = d.append(b"first record").unwrap();
        let (off_b, _) = d.append(b"second").unwrap();
        assert_eq!(off_a, 0);
        assert_eq!(off_b, 12);
        let (data, _) = d.read_at(ByteSpan::at(off_a, 12)).unwrap();
        assert_eq!(data, b"first record");
        let (data, _) = d.read_at(ByteSpan::at(off_b, 6)).unwrap();
        assert_eq!(data, b"second");
    }

    #[test]
    fn read_at_into_reuses_the_buffer_and_matches_read_at() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(b"pooled read target").unwrap();
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        let took = d.read_at_into(ByteSpan::at(0, 6), &mut buf).unwrap();
        assert_eq!(buf, b"pooled");
        assert_eq!(buf.capacity(), cap, "the caller's allocation is reused");
        assert!(took > SimDuration::ZERO);
        let (owned, _) = d.read_at(ByteSpan::at(0, 6)).unwrap();
        assert_eq!(owned, buf, "both read paths return the same bytes");
        assert!(d.read_at_into(ByteSpan::at(10, 100), &mut buf).is_err(), "bounds still checked");
    }

    #[test]
    fn overwrite_is_refused() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(b"immutable").unwrap();
        assert!(d.write_at(0, b"mutated!!").is_err());
        let (data, _) = d.read_at(ByteSpan::at(0, 9)).unwrap();
        assert_eq!(data, b"immutable");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut d = OpticalDisk::with_capacity(10);
        d.append(&[0; 8]).unwrap();
        assert!(d.append(&[0; 3]).is_err());
        assert_eq!(d.len(), 8, "failed append leaves nothing behind");
        d.append(&[0; 2]).unwrap();
    }

    #[test]
    fn read_past_frontier_is_error() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(&[1; 100]).unwrap();
        assert!(d.read_at(ByteSpan::at(50, 100)).is_err());
    }

    #[test]
    fn timing_charges_seek_and_transfer() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(&vec![0u8; 500_000]).unwrap();
        // Head is at 500_000. Reading near the head is cheaper than
        // seeking back to 0 and reading the same amount.
        let near = d.access_cost(499_000, 1_000);
        let far = d.access_cost(0, 1_000);
        assert!(near < far);
        // A large transfer is dominated by transfer time: 250_000 bytes at
        // 250 KB/s is one second.
        let big = d.access_cost(500_000, 250_000);
        assert!(big >= SimDuration::from_secs(1));
    }

    #[test]
    fn reads_move_the_head() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(&[7; 1000]).unwrap();
        d.read_at(ByteSpan::at(100, 50)).unwrap();
        assert_eq!(d.head_position(), 150);
    }

    #[test]
    fn injected_read_faults_are_transient_and_deterministic() {
        let make = || {
            let mut d = OpticalDisk::with_capacity(1 << 20).with_read_faults(13, 0.5);
            d.append(&[9; 1024]).unwrap();
            d
        };
        let mut a = make();
        let mut b = make();
        let outcomes_a: Vec<bool> =
            (0..32).map(|_| a.read_at(ByteSpan::at(0, 16)).is_ok()).collect();
        let outcomes_b: Vec<bool> =
            (0..32).map(|_| b.read_at(ByteSpan::at(0, 16)).is_ok()).collect();
        assert_eq!(outcomes_a, outcomes_b, "equal seeds replay equal fault sequences");
        assert!(outcomes_a.iter().any(|&ok| ok), "faults are transient: a retry can succeed");
        assert!(outcomes_a.iter().any(|&ok| !ok), "the fault rate really fires");
        // A failed read charges nothing: only successful reads are in the
        // device statistics.
        let ok_reads = outcomes_a.iter().filter(|&&ok| ok).count() as u64;
        assert_eq!(a.stats().reads, ok_reads);
        // A clean disk is unaffected by the machinery.
        let mut clean = OpticalDisk::with_capacity(1 << 20);
        clean.append(&[9; 64]).unwrap();
        for _ in 0..16 {
            clean.read_at(ByteSpan::at(0, 8)).unwrap();
        }
    }

    #[test]
    fn bit_rot_decays_the_media_persistently_and_deterministically() {
        let make = || {
            let mut d = OpticalDisk::with_capacity(1 << 20).with_bit_rot(29, 1.0);
            d.append(&[0xAA; 256]).unwrap();
            d
        };
        let mut a = make();
        let mut b = make();
        let (bytes_a, _) = a.read_at(ByteSpan::at(0, 256)).unwrap();
        let (bytes_b, _) = b.read_at(ByteSpan::at(0, 256)).unwrap();
        assert_eq!(bytes_a, bytes_b, "equal seeds decay equal bits");
        assert_eq!(a.bit_rot_flips(), 1, "rate 1.0 rots one bit per read");
        let flipped: Vec<usize> =
            bytes_a.iter().enumerate().filter(|(_, &by)| by != 0xAA).map(|(i, _)| i).collect();
        assert_eq!(flipped.len(), 1, "exactly one byte differs");
        // The decay is persistent: turning rot off and re-reading still
        // shows the flipped bit — the media itself changed, not the copy.
        a.set_bit_rot(0, 0.0);
        let (again, _) = a.read_at(ByteSpan::at(0, 256)).unwrap();
        assert_eq!(again, bytes_a, "the flip is in the media, not the read path");
        // The WORM interface still refuses to repair in place.
        assert!(a.write_at(flipped[0] as u64, &[0xAA]).is_err());
        // A rot-free disk is untouched by the machinery.
        let mut clean = OpticalDisk::with_capacity(1 << 20);
        clean.append(&[0xAA; 64]).unwrap();
        let (bytes, _) = clean.read_at(ByteSpan::at(0, 64)).unwrap();
        assert!(bytes.iter().all(|&by| by == 0xAA));
        assert_eq!(clean.bit_rot_flips(), 0);
    }

    #[test]
    fn bit_rot_at_low_rate_spares_most_reads() {
        let mut d = OpticalDisk::with_capacity(1 << 20).with_bit_rot(7, 0.05);
        d.append(&[0x55; 1024]).unwrap();
        for _ in 0..200 {
            let _ = d.read_at(ByteSpan::at(0, 512)).unwrap();
        }
        let flips = d.bit_rot_flips();
        assert!(flips > 0, "200 draws at 5% fire at least once");
        assert!(flips < 60, "the rate bounds the decay: {flips} flips");
    }

    #[test]
    fn stats_track_operations() {
        let mut d = OpticalDisk::with_capacity(1 << 20);
        d.append(&[0; 64]).unwrap();
        d.read_at(ByteSpan::at(0, 32)).unwrap();
        d.read_at(ByteSpan::at(32, 16)).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 64);
        assert_eq!(s.bytes_read, 48);
        assert!(s.busy > SimDuration::ZERO);
    }
}
