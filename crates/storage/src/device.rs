//! The block-device abstraction and its timing vocabulary.
//!
//! Devices charge simulated time for every access: a position-dependent
//! seek, an average rotational latency, and a size-dependent transfer. The
//! numbers are per-device (see [`crate::optical`] and [`crate::magnetic`])
//! and chosen to mid-1980s magnitudes, which is what gives the queueing
//! experiment (E7) its shape.

use minos_types::{ByteSpan, Result, SimDuration};

/// Access statistics, maintained by every device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed writes/appends.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total simulated time the device was busy.
    pub busy: SimDuration,
}

impl DeviceStats {
    /// Records a read.
    pub fn record_read(&mut self, bytes: u64, took: SimDuration) {
        self.reads += 1;
        self.bytes_read += bytes;
        self.busy += took;
    }

    /// Records a write.
    pub fn record_write(&mut self, bytes: u64, took: SimDuration) {
        self.writes += 1;
        self.bytes_written += bytes;
        self.busy += took;
    }
}

/// A storage device with explicit timing.
pub trait BlockDevice {
    /// Bytes currently stored (the write frontier for append-only
    /// devices).
    fn len(&self) -> u64;

    /// Whether nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in bytes.
    fn capacity(&self) -> u64;

    /// Current head position (byte offset), for seek modelling and
    /// scheduling.
    fn head_position(&self) -> u64;

    /// Pure cost query: what an access of `len` bytes at `offset` would
    /// cost with the head where it is now. Schedulers use this without
    /// disturbing the device.
    fn access_cost(&self, offset: u64, len: u64) -> SimDuration;

    /// Reads a span, returning the data and the time charged.
    fn read_at(&mut self, span: ByteSpan) -> Result<(Vec<u8>, SimDuration)>;

    /// Reads a span into `out` (cleared first), reusing its capacity, and
    /// returns the time charged. The default delegates to
    /// [`BlockDevice::read_at`]; devices on the hot read path override it
    /// to copy straight from media into the caller's pooled buffer.
    fn read_at_into(&mut self, span: ByteSpan, out: &mut Vec<u8>) -> Result<SimDuration> {
        let (data, took) = self.read_at(span)?;
        out.clear();
        out.extend_from_slice(&data);
        Ok(took)
    }

    /// Appends data at the write frontier, returning its offset and the
    /// time charged.
    fn append(&mut self, data: &[u8]) -> Result<(u64, SimDuration)>;

    /// Overwrites in place. Write-once devices refuse.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration>;

    /// Access statistics so far.
    fn stats(&self) -> DeviceStats;
}

/// Shared timing math for the concrete devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingModel {
    /// Fixed cost of starting any access.
    pub seek_base: SimDuration,
    /// Additional full-stroke seek cost; actual seek scales with distance
    /// as a fraction of capacity.
    pub seek_full_stroke: SimDuration,
    /// Average rotational latency.
    pub rotation: SimDuration,
    /// Transfer rate in bytes per second.
    pub transfer_rate: u64,
}

impl TimingModel {
    /// Cost of accessing `len` bytes at `offset` from `head`, on a device
    /// of `capacity` bytes.
    pub fn access(&self, head: u64, offset: u64, len: u64, capacity: u64) -> SimDuration {
        let distance = head.abs_diff(offset);
        let seek = self.seek_base + self.seek_full_stroke.mul_ratio(distance, capacity.max(1));
        let transfer =
            SimDuration::from_micros(len.saturating_mul(1_000_000) / self.transfer_rate.max(1));
        seek + self.rotation + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: TimingModel = TimingModel {
        seek_base: SimDuration::from_millis(10),
        seek_full_stroke: SimDuration::from_millis(100),
        rotation: SimDuration::from_millis(8),
        transfer_rate: 1_000_000, // 1 MB/s
    };

    #[test]
    fn access_cost_components() {
        // Zero distance, zero length: base + rotation.
        let t = MODEL.access(0, 0, 0, 1_000_000);
        assert_eq!(t, SimDuration::from_millis(18));
        // Full stroke adds the full seek.
        let t = MODEL.access(0, 1_000_000, 0, 1_000_000);
        assert_eq!(t, SimDuration::from_millis(118));
        // Transfer of 1MB at 1MB/s adds a second.
        let t = MODEL.access(0, 0, 1_000_000, 1_000_000);
        assert_eq!(t, SimDuration::from_millis(1_018));
    }

    #[test]
    fn nearer_accesses_are_cheaper() {
        let near = MODEL.access(500_000, 510_000, 1_000, 1_000_000);
        let far = MODEL.access(500_000, 990_000, 1_000, 1_000_000);
        assert!(near < far);
    }

    #[test]
    fn cost_is_symmetric_in_direction() {
        let fwd = MODEL.access(100, 200, 10, 1_000);
        let back = MODEL.access(200, 100, 10, 1_000);
        assert_eq!(fwd, back);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = DeviceStats::default();
        s.record_read(100, SimDuration::from_millis(5));
        s.record_read(50, SimDuration::from_millis(3));
        s.record_write(10, SimDuration::from_millis(2));
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.busy, SimDuration::from_millis(10));
    }

    #[test]
    fn zero_capacity_does_not_divide_by_zero() {
        let t = MODEL.access(0, 10, 0, 0);
        assert!(t >= MODEL.seek_base);
    }
}
