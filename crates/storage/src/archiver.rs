//! The object archiver.
//!
//! The archiver stores archived multimedia objects on the optical store,
//! keeps a directory from object id to the stored regions, and provides
//! version control (§5). Because the optical disk is write-once, a new
//! version is a new appended region; old versions remain readable forever.

use crate::device::BlockDevice;
use minos_object::ArchiverRead;
use minos_types::{ByteSpan, MinosError, ObjectId, Result, SimDuration, VersionId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Directory record for one stored version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArchiveRecord {
    /// Version number (1-based, in store order).
    pub version: VersionId,
    /// Where the version's bytes live on the device.
    pub span: ByteSpan,
}

/// The archiver over a block device.
#[derive(Debug)]
pub struct Archiver<D: BlockDevice> {
    device: D,
    directory: BTreeMap<ObjectId, Vec<ArchiveRecord>>,
}

impl<D: BlockDevice> Archiver<D> {
    /// Creates an archiver on an empty device.
    pub fn new(device: D) -> Self {
        Archiver { device, directory: BTreeMap::new() }
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable access to the underlying device — the chaos orchestrator's
    /// route to fault knobs (e.g. enabling latent bit rot) on media that
    /// is already serving.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Next write offset — callers encoding an archived object need the
    /// base before storing (offset rebasing, §4).
    pub fn next_offset(&self) -> u64 {
        self.device.len()
    }

    /// Stores a new version of `id`, returning its record and the time
    /// charged.
    pub fn store(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(ArchiveRecord, SimDuration)> {
        let (offset, took) = self.device.append(bytes)?;
        let versions = self.directory.entry(id).or_default();
        let record = ArchiveRecord {
            version: VersionId::new(versions.len() as u64 + 1),
            span: ByteSpan::at(offset, bytes.len() as u64),
        };
        versions.push(record);
        Ok((record, took))
    }

    /// The latest version record of `id`.
    pub fn latest(&self, id: ObjectId) -> Result<ArchiveRecord> {
        self.directory
            .get(&id)
            .and_then(|v| v.last())
            .copied()
            .ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }

    /// A specific version record of `id`.
    pub fn version(&self, id: ObjectId, version: VersionId) -> Result<ArchiveRecord> {
        self.directory
            .get(&id)
            .and_then(|v| v.iter().find(|r| r.version == version))
            .copied()
            .ok_or_else(|| MinosError::UnknownObject(format!("{id} {version}")))
    }

    /// All version records of `id`, oldest first.
    pub fn versions(&self, id: ObjectId) -> &[ArchiveRecord] {
        self.directory.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All stored object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.directory.keys().copied()
    }

    /// Number of stored objects (not versions).
    pub fn object_count(&self) -> usize {
        self.directory.len()
    }

    /// Fetches the latest version's bytes with the time charged.
    pub fn fetch_latest(&mut self, id: ObjectId) -> Result<(Vec<u8>, SimDuration)> {
        let record = self.latest(id)?;
        self.device.read_at(record.span)
    }

    /// Reads an arbitrary span (for descriptor pointers into shared data).
    pub fn read_at(&mut self, span: ByteSpan) -> Result<(Vec<u8>, SimDuration)> {
        self.device.read_at(span)
    }

    /// Reads an arbitrary span into `out` (cleared first), reusing its
    /// capacity — the pooled-buffer read path the object server's frame
    /// service loop uses to avoid a fresh allocation per served span.
    pub fn read_at_into(&mut self, span: ByteSpan, out: &mut Vec<u8>) -> Result<SimDuration> {
        self.device.read_at_into(span, out)
    }
}

/// A shareable archiver handle implementing [`ArchiverRead`], so the object
/// layer can resolve pointers during mailing.
#[derive(Clone, Debug)]
pub struct SharedArchiver<D: BlockDevice>(Arc<Mutex<Archiver<D>>>);

impl<D: BlockDevice> SharedArchiver<D> {
    /// Wraps an archiver for sharing.
    pub fn new(archiver: Archiver<D>) -> Self {
        SharedArchiver(Arc::new(Mutex::new(archiver)))
    }

    /// Runs `f` with exclusive access to the archiver.
    pub fn with<R>(&self, f: impl FnOnce(&mut Archiver<D>) -> R) -> R {
        f(&mut self.0.lock())
    }
}

impl<D: BlockDevice> ArchiverRead for SharedArchiver<D> {
    fn read_span(&self, span: ByteSpan) -> Result<Vec<u8>> {
        let (data, _) = self.0.lock().read_at(span)?;
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optical::OpticalDisk;

    fn archiver() -> Archiver<OpticalDisk> {
        Archiver::new(OpticalDisk::with_capacity(1 << 20))
    }

    #[test]
    fn store_and_fetch_round_trips() {
        let mut a = archiver();
        let id = ObjectId::new(1);
        let (record, _) = a.store(id, b"object bytes").unwrap();
        assert_eq!(record.version, VersionId::new(1));
        let (data, took) = a.fetch_latest(id).unwrap();
        assert_eq!(data, b"object bytes");
        assert!(took > SimDuration::ZERO);
    }

    #[test]
    fn versions_accumulate_append_only() {
        let mut a = archiver();
        let id = ObjectId::new(2);
        a.store(id, b"v1 bytes").unwrap();
        a.store(id, b"v2 bytes longer").unwrap();
        let versions = a.versions(id);
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[0].version, VersionId::new(1));
        assert_eq!(versions[1].version, VersionId::new(2));
        assert!(versions[1].span.start >= versions[0].span.end, "append-only layout");
        // Old version still readable.
        let (old, _) = a.read_at(versions[0].span).unwrap();
        assert_eq!(old, b"v1 bytes");
        let (latest, _) = a.fetch_latest(id).unwrap();
        assert_eq!(latest, b"v2 bytes longer");
    }

    #[test]
    fn version_lookup() {
        let mut a = archiver();
        let id = ObjectId::new(3);
        a.store(id, b"one").unwrap();
        a.store(id, b"two").unwrap();
        let r = a.version(id, VersionId::new(1)).unwrap();
        assert_eq!(a.read_at(r.span).unwrap().0, b"one");
        assert!(a.version(id, VersionId::new(3)).is_err());
    }

    #[test]
    fn unknown_object_is_error() {
        let mut a = archiver();
        assert!(a.fetch_latest(ObjectId::new(9)).is_err());
        assert!(a.latest(ObjectId::new(9)).is_err());
        assert!(a.versions(ObjectId::new(9)).is_empty());
    }

    #[test]
    fn next_offset_tracks_frontier() {
        let mut a = archiver();
        assert_eq!(a.next_offset(), 0);
        a.store(ObjectId::new(1), &[0; 100]).unwrap();
        assert_eq!(a.next_offset(), 100);
    }

    #[test]
    fn directory_enumerates_objects() {
        let mut a = archiver();
        a.store(ObjectId::new(5), b"x").unwrap();
        a.store(ObjectId::new(3), b"y").unwrap();
        a.store(ObjectId::new(5), b"z").unwrap();
        assert_eq!(a.object_count(), 2);
        let ids: Vec<ObjectId> = a.object_ids().collect();
        assert_eq!(ids, vec![ObjectId::new(3), ObjectId::new(5)]);
    }

    #[test]
    fn shared_archiver_reads_spans() {
        let mut a = archiver();
        let (record, _) = a.store(ObjectId::new(1), b"shared data here").unwrap();
        let shared = SharedArchiver::new(a);
        let data = shared.read_span(record.span).unwrap();
        assert_eq!(data, b"shared data here");
        assert!(shared.read_span(ByteSpan::at(1 << 19, 10)).is_err());
        // `with` gives exclusive access.
        let count = shared.with(|a| a.object_count());
        assert_eq!(count, 1);
    }
}
