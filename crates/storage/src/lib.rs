//! Storage substrate: the optical-disk archiver and its performance model.
//!
//! "The multimedia object server subsystem is optical disk based and it may
//! also contain one or more high performance magnetic disks. It is used to
//! store objects in an archived state. The major concern in the server
//! subsystem is performance. Performance may be crucial due to queueing
//! delays that may be experienced when several users try to access data
//! from the same device. The subsystem provides access methods, scheduling,
//! cashing, version control." (§5)
//!
//! The reproduction models both device classes with seek/rotation/transfer
//! timing charged to the simulated clock, an LRU block cache, request
//! scheduling (FCFS and elevator), and the archiver with its object
//! directory and version control.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod archiver;
pub mod cache;
pub mod device;
pub mod magnetic;
pub mod optical;
pub mod sched;

pub use archiver::{ArchiveRecord, Archiver, SharedArchiver};
pub use cache::BlockCache;
pub use device::{BlockDevice, DeviceStats};
pub use magnetic::MagneticDisk;
pub use optical::OpticalDisk;
pub use sched::{simulate_schedule, Completion, Request, SchedPolicy};
