//! Voice and visual logical messages.
//!
//! "Voice logical messages are unstructured audio segments (typically
//! short). They can be attached to either visual mode objects or audio mode
//! objects. When attached to visual mode objects they may be associated
//! with text segments or images. … When attached to audio mode objects they
//! may be associated with voice segments or with particular points within
//! the object voice part. The semantics are that the voice logical message
//! will be played when the user first branches into the corresponding
//! segments during browsing." (§2)
//!
//! "Visual logical messages are short (at most one visual page long)
//! segments of visual information (text and/or images). They are … always
//! displayed in the same page of the presentation form (top part)." (§2)

use minos_types::{CharSpan, SimDuration, SimInstant, TimeSpan};

/// What a logical message is anchored to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Anchor {
    /// A span of a text segment. "Text is linear. Two points identify the
    /// beginning and the end of a text segment. The two points may
    /// coincide." (§2)
    TextSegment {
        /// Index of the text segment within the object text part.
        segment: usize,
        /// The anchored span (may be empty: the two points coincide).
        span: CharSpan,
    },
    /// A whole image of the object image part.
    Image {
        /// Index of the image within the object image part.
        image: usize,
    },
    /// A span of a voice segment.
    VoiceSegment {
        /// Index of the voice segment within the object voice part.
        segment: usize,
        /// The anchored time span.
        span: TimeSpan,
    },
    /// A particular point within a voice segment.
    VoicePoint {
        /// Index of the voice segment.
        segment: usize,
        /// The anchored instant.
        at: SimInstant,
    },
}

impl Anchor {
    /// Whether browsing at text position `(segment, pos)` is inside this
    /// anchor. An empty text span anchors to the single position where its
    /// two points coincide.
    pub fn covers_text(&self, segment: usize, pos: u32) -> bool {
        match self {
            Anchor::TextSegment { segment: s, span } => {
                *s == segment && (span.contains(pos) || (span.is_empty() && span.start == pos))
            }
            _ => false,
        }
    }

    /// Whether playback at voice position `(segment, t)` is inside this
    /// anchor. Voice points cover only their exact instant's neighbourhood
    /// (the caller quantizes by its tick).
    pub fn covers_voice(&self, segment: usize, t: SimInstant) -> bool {
        match self {
            Anchor::VoiceSegment { segment: s, span } => *s == segment && span.contains(t),
            Anchor::VoicePoint { segment: s, at } => *s == segment && *at <= t,
            _ => false,
        }
    }

    /// Whether this anchor refers to image `image`.
    pub fn covers_image(&self, image: usize) -> bool {
        matches!(self, Anchor::Image { image: i } if *i == image)
    }
}

/// The visual content of a visual logical message: text and/or an image,
/// at most one visual page long.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VisualMessageContent {
    /// Optional short text.
    pub text: Option<String>,
    /// Optional image (index into the object image part).
    pub image: Option<usize>,
}

/// The body of a logical message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MessageBody {
    /// A short audio segment, named by the voice data file holding it.
    Voice {
        /// Index of the voice segment (in the object voice part) holding
        /// the message audio.
        segment: usize,
        /// Play length (used to gate process-simulation page turns).
        duration: SimDuration,
    },
    /// A short visual page-top display.
    Visual {
        /// What is shown.
        content: VisualMessageContent,
        /// "The user has the option to specify that the visual logical
        /// message is displayed only once whenever the user branches during
        /// browsing from a non-related segment" (§2).
        show_once: bool,
    },
}

impl MessageBody {
    /// Whether this is a voice message.
    pub fn is_voice(&self) -> bool {
        matches!(self, MessageBody::Voice { .. })
    }
}

/// A logical message: a body attached to an anchor. Logical messages "have
/// only existence as a part of a multimedia object" (§2), so they are plain
/// data owned by the object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogicalMessage {
    /// What the message is attached to.
    pub anchor: Anchor,
    /// What the message presents.
    pub body: MessageBody,
}

/// Indices of the messages anchored at text position `(segment, pos)` —
/// anchors may overlap, so several can fire at once ("Voice logical
/// messages may be attached to overlapping text segments", §2).
pub fn messages_at_text(messages: &[LogicalMessage], segment: usize, pos: u32) -> Vec<usize> {
    messages
        .iter()
        .enumerate()
        .filter(|(_, m)| m.anchor.covers_text(segment, pos))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of the messages anchored at voice position `(segment, t)`.
pub fn messages_at_voice(messages: &[LogicalMessage], segment: usize, t: SimInstant) -> Vec<usize> {
    messages
        .iter()
        .enumerate()
        .filter(|(_, m)| m.anchor.covers_voice(segment, t))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of the messages anchored to image `image`.
pub fn messages_at_image(messages: &[LogicalMessage], image: usize) -> Vec<usize> {
    messages
        .iter()
        .enumerate()
        .filter(|(_, m)| m.anchor.covers_image(image))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_micros(ms * 1_000)
    }

    fn voice_msg(anchor: Anchor) -> LogicalMessage {
        LogicalMessage {
            anchor,
            body: MessageBody::Voice { segment: 0, duration: SimDuration::from_secs(2) },
        }
    }

    #[test]
    fn text_anchor_coverage() {
        let a = Anchor::TextSegment { segment: 1, span: CharSpan::new(10, 20) };
        assert!(a.covers_text(1, 10));
        assert!(a.covers_text(1, 19));
        assert!(!a.covers_text(1, 20));
        assert!(!a.covers_text(0, 15));
        assert!(!a.covers_voice(1, t(0)));
    }

    #[test]
    fn coincident_points_anchor_single_position() {
        let a = Anchor::TextSegment { segment: 0, span: CharSpan::empty_at(5) };
        assert!(a.covers_text(0, 5));
        assert!(!a.covers_text(0, 4));
        assert!(!a.covers_text(0, 6));
    }

    #[test]
    fn voice_anchor_coverage() {
        let span = minos_types::TimeSpan::new(t(1_000), t(3_000));
        let a = Anchor::VoiceSegment { segment: 0, span };
        assert!(a.covers_voice(0, t(1_000)));
        assert!(a.covers_voice(0, t(2_999)));
        assert!(!a.covers_voice(0, t(3_000)));
        assert!(!a.covers_voice(1, t(2_000)));
    }

    #[test]
    fn voice_point_covers_from_its_instant() {
        let a = Anchor::VoicePoint { segment: 0, at: t(500) };
        assert!(!a.covers_voice(0, t(400)));
        assert!(a.covers_voice(0, t(500)));
        assert!(a.covers_voice(0, t(10_000)));
    }

    #[test]
    fn image_anchor() {
        let a = Anchor::Image { image: 2 };
        assert!(a.covers_image(2));
        assert!(!a.covers_image(1));
        assert!(!a.covers_text(2, 0));
    }

    #[test]
    fn overlapping_text_anchors_all_fire() {
        let messages = vec![
            voice_msg(Anchor::TextSegment { segment: 0, span: CharSpan::new(0, 50) }),
            voice_msg(Anchor::TextSegment { segment: 0, span: CharSpan::new(30, 80) }),
            voice_msg(Anchor::TextSegment { segment: 1, span: CharSpan::new(0, 100) }),
        ];
        assert_eq!(messages_at_text(&messages, 0, 40), vec![0, 1]);
        assert_eq!(messages_at_text(&messages, 0, 10), vec![0]);
        assert_eq!(messages_at_text(&messages, 1, 40), vec![2]);
        assert!(messages_at_text(&messages, 0, 90).is_empty());
    }

    #[test]
    fn voice_and_image_lookups() {
        let span = minos_types::TimeSpan::new(t(0), t(5_000));
        let messages = vec![
            voice_msg(Anchor::VoiceSegment { segment: 0, span }),
            LogicalMessage {
                anchor: Anchor::Image { image: 0 },
                body: MessageBody::Visual {
                    content: VisualMessageContent { text: Some("see figure".into()), image: None },
                    show_once: true,
                },
            },
        ];
        assert_eq!(messages_at_voice(&messages, 0, t(100)), vec![0]);
        assert_eq!(messages_at_image(&messages, 0), vec![1]);
        assert!(messages[0].body.is_voice());
        assert!(!messages[1].body.is_voice());
    }
}
