//! The in-memory multimedia object.
//!
//! "Multimedia objects may be in an editing state or in an archived state.
//! Objects in an editing state are allowed to be modified. Objects in the
//! archived state are not allowed to be modified. The presentation and
//! browsing capabilities … are applicable to multimedia objects which are
//! in the archived state." (§2)
//!
//! "Each multimedia object has a driving mode associated with it. The
//! driving mode is the principal way of presenting the information in the
//! object, and it can be either visual or audio." (§2)

use crate::messages::LogicalMessage;
use crate::relevant::RelevantLink;
use minos_image::{Image, Overwrite, Tour, TransparencyDisplay};
use minos_text::{Document, LogicalLevel};
use minos_types::{MinosError, ObjectId, Result, SimDuration};
use minos_voice::{
    pause::PauseDetector, recognize::RecognizedUtterance, synth::SpeakerProfile, synthesize,
    AudioBuffer, DetectedPause, Recognizer, Transcript, VoiceMarks,
};

/// The principal presentation medium of an object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DrivingMode {
    /// Page browsing commands act on visual pages. The default for
    /// documents.
    Visual,
    /// Page browsing commands act on audio pages. "The reason for enforcing
    /// a driving mode … is so that the users do not become confused trying
    /// to navigate in two different media at the same time." (§2)
    Audio,
}

/// Lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjectState {
    /// Modifiable; lives in workstation disk files.
    Editing,
    /// Immutable; lives in the archiver. Browsing applies here.
    Archived,
}

/// A formatted attribute of the object (author, date, patient id, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: String,
}

/// One voice segment with everything browsing needs: the digitized audio,
/// ground-truth transcript (the synthetic stand-in for the speaker),
/// detected pauses, manual logical marks, and recognized utterances.
#[derive(Clone, Debug)]
pub struct VoiceSegment {
    /// The digitized audio.
    pub audio: AudioBuffer,
    /// Ground-truth transcript (simulation artifact; see DESIGN.md).
    pub transcript: Transcript,
    /// Pauses found by the detector at insertion time.
    pub pauses: Vec<DetectedPause>,
    /// Manually identified logical units (may be empty).
    pub marks: VoiceMarks,
    /// Utterances recognized at insertion or idle time (may be empty).
    pub utterances: Vec<RecognizedUtterance>,
}

impl VoiceSegment {
    /// Creates a segment by "dictating" `text` with the given speaker
    /// profile: synthesizes the audio and runs pause detection, as the real
    /// system would at insertion time.
    pub fn dictate(text: &str, profile: &SpeakerProfile, seed: u64) -> Self {
        let (audio, transcript) = synthesize(text, profile, seed);
        let pauses = PauseDetector::new().detect(&audio);
        VoiceSegment {
            audio,
            transcript,
            pauses,
            marks: VoiceMarks::none(),
            utterances: Vec::new(),
        }
    }

    /// Adds manual logical marks for the given levels (the speaker pressed
    /// the buttons while dictating).
    pub fn with_marks(mut self, levels: &[LogicalLevel]) -> Self {
        self.marks = VoiceMarks::from_transcript(&self.transcript, levels);
        self
    }

    /// Runs the (simulated) recognizer and stores its utterances.
    pub fn with_recognition(mut self, recognizer: &Recognizer) -> Self {
        self.utterances = recognizer.recognize(&self.transcript);
        self
    }

    /// Total duration of the segment.
    pub fn duration(&self) -> SimDuration {
        self.audio.duration()
    }
}

/// A transparency set defined over images of the object image part.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransparencySetSpec {
    /// Image the set is projected over (the "last page before the set").
    pub base_image: usize,
    /// Image indices serving as the transparencies, in designer order.
    pub sheets: Vec<usize>,
    /// The designer's display method.
    pub display: TransparencyDisplay,
}

/// A tour defined over one image of the object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TourSpec {
    /// The toured image.
    pub image: usize,
    /// The tour definition (stop messages index into the object's message
    /// table).
    pub tour: Tour,
}

/// One step of a process simulation.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcessStep {
    /// The overwrite applied when this step's page turns.
    pub overwrite: Overwrite,
    /// Logical message attached to the page (index into the object's
    /// message table). When the message is audio, "the next visual page is
    /// only shown after the logical audio message has been played" (§2).
    pub message: Option<usize>,
}

/// A process simulation: automatically turned pages over a base image.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcessSimulation {
    /// The image the simulation starts from.
    pub base_image: usize,
    /// Steps in play order.
    pub steps: Vec<ProcessStep>,
    /// "The relative speed by which pages are placed one on the top of
    /// another is set at object creation time but it may be altered by the
    /// user." (§2)
    pub interval: SimDuration,
}

/// The unit of information in MINOS.
#[derive(Clone, Debug)]
pub struct MultimediaObject {
    /// Unique object identifier.
    pub id: ObjectId,
    /// Human name (editing-state objects are "retriev\[ed\] by name", §5).
    pub name: String,
    /// Formatted attributes.
    pub attributes: Vec<Attribute>,
    /// The object text part: a collection of text segments.
    pub text_segments: Vec<Document>,
    /// The object voice part: a collection of voice segments.
    pub voice_segments: Vec<VoiceSegment>,
    /// The object image part: a collection of images.
    pub images: Vec<Image>,
    /// The principal presentation medium.
    pub driving_mode: DrivingMode,
    /// Logical messages owned by the object.
    pub messages: Vec<LogicalMessage>,
    /// Relevant object links.
    pub relevant: Vec<RelevantLink>,
    /// Transparency sets.
    pub transparency_sets: Vec<TransparencySetSpec>,
    /// Tours.
    pub tours: Vec<TourSpec>,
    /// Process simulations.
    pub process_sims: Vec<ProcessSimulation>,
    state: ObjectState,
}

impl MultimediaObject {
    /// Creates an empty object in editing state.
    pub fn new(id: ObjectId, name: impl Into<String>, driving_mode: DrivingMode) -> Self {
        MultimediaObject {
            id,
            name: name.into(),
            attributes: Vec::new(),
            text_segments: Vec::new(),
            voice_segments: Vec::new(),
            images: Vec::new(),
            driving_mode,
            messages: Vec::new(),
            relevant: Vec::new(),
            transparency_sets: Vec::new(),
            tours: Vec::new(),
            process_sims: Vec::new(),
            state: ObjectState::Editing,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ObjectState {
        self.state
    }

    /// Whether the object may be browsed (archived state).
    pub fn is_archived(&self) -> bool {
        self.state == ObjectState::Archived
    }

    /// Errors unless the object is still modifiable.
    pub fn ensure_editing(&self) -> Result<()> {
        if self.state == ObjectState::Editing {
            Ok(())
        } else {
            Err(MinosError::WrongState(format!("{} is archived and may not be modified", self.id)))
        }
    }

    /// Validates all internal references: every message anchor, relevant
    /// link, transparency sheet, tour and process simulation must refer to
    /// existing parts and messages.
    pub fn validate(&self) -> Result<()> {
        let check = |ok: bool, what: String| {
            if ok {
                Ok(())
            } else {
                Err(MinosError::UnknownComponent(what))
            }
        };
        for (i, m) in self.messages.iter().enumerate() {
            use crate::messages::{Anchor, MessageBody};
            match &m.anchor {
                Anchor::TextSegment { segment, .. } => check(
                    *segment < self.text_segments.len(),
                    format!("message {i}: text segment {segment}"),
                )?,
                Anchor::Image { image } => {
                    check(*image < self.images.len(), format!("message {i}: image {image}"))?
                }
                Anchor::VoiceSegment { segment, .. } | Anchor::VoicePoint { segment, .. } => check(
                    *segment < self.voice_segments.len(),
                    format!("message {i}: voice segment {segment}"),
                )?,
            }
            match &m.body {
                MessageBody::Voice { segment, .. } => check(
                    *segment < self.voice_segments.len(),
                    format!("message {i}: body voice segment {segment}"),
                )?,
                MessageBody::Visual { content, .. } => {
                    if let Some(img) = content.image {
                        check(img < self.images.len(), format!("message {i}: body image {img}"))?;
                    }
                }
            }
        }
        for (i, set) in self.transparency_sets.iter().enumerate() {
            check(
                set.base_image < self.images.len(),
                format!("transparency set {i}: base image {}", set.base_image),
            )?;
            for &s in &set.sheets {
                check(s < self.images.len(), format!("transparency set {i}: sheet {s}"))?;
            }
        }
        for (i, t) in self.tours.iter().enumerate() {
            check(t.image < self.images.len(), format!("tour {i}: image {}", t.image))?;
            for stop in t.tour.stops() {
                if let Some(m) = stop.message {
                    check(m < self.messages.len(), format!("tour {i}: message {m}"))?;
                }
            }
        }
        for (i, p) in self.process_sims.iter().enumerate() {
            check(
                p.base_image < self.images.len(),
                format!("process sim {i}: base image {}", p.base_image),
            )?;
            for (j, step) in p.steps.iter().enumerate() {
                if let Some(m) = step.message {
                    check(
                        m < self.messages.len(),
                        format!("process sim {i} step {j}: message {m}"),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Freezes the object: validates and transitions to archived state.
    pub fn archive(&mut self) -> Result<()> {
        self.ensure_editing()?;
        self.validate()?;
        self.state = ObjectState::Archived;
        Ok(())
    }

    /// Logical levels available for logical browsing under the driving
    /// mode: the text tree's levels for visual objects, the voice marks'
    /// levels for audio objects. Menu options derive from this.
    pub fn available_logical_levels(&self) -> Vec<LogicalLevel> {
        match self.driving_mode {
            DrivingMode::Visual => {
                self.text_segments.first().map(|d| d.tree().available_levels()).unwrap_or_default()
            }
            DrivingMode::Audio => {
                self.voice_segments.first().map(|v| v.marks.available_levels()).unwrap_or_default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Anchor, MessageBody, VisualMessageContent};
    use minos_image::Bitmap;
    use minos_types::CharSpan;

    fn base_object() -> MultimediaObject {
        let mut obj = MultimediaObject::new(ObjectId::new(1), "report", DrivingMode::Visual);
        obj.text_segments.push(minos_text::parse_markup(".ch One\nBody text here.\n").unwrap());
        obj.images.push(Image::Bitmap(Bitmap::new(10, 10)));
        obj
    }

    #[test]
    fn new_object_is_editing() {
        let obj = base_object();
        assert_eq!(obj.state(), ObjectState::Editing);
        assert!(!obj.is_archived());
        obj.ensure_editing().unwrap();
    }

    #[test]
    fn archive_freezes() {
        let mut obj = base_object();
        obj.archive().unwrap();
        assert!(obj.is_archived());
        assert!(obj.ensure_editing().is_err());
        assert!(obj.archive().is_err(), "double archive rejected");
    }

    #[test]
    fn validate_catches_bad_message_anchor() {
        let mut obj = base_object();
        obj.messages.push(LogicalMessage {
            anchor: Anchor::TextSegment { segment: 5, span: CharSpan::new(0, 1) },
            body: MessageBody::Visual {
                content: VisualMessageContent::default(),
                show_once: false,
            },
        });
        assert!(obj.validate().is_err());
        assert!(obj.archive().is_err(), "archive must validate");
    }

    #[test]
    fn validate_catches_bad_body_image() {
        let mut obj = base_object();
        obj.messages.push(LogicalMessage {
            anchor: Anchor::TextSegment { segment: 0, span: CharSpan::new(0, 1) },
            body: MessageBody::Visual {
                content: VisualMessageContent { text: None, image: Some(9) },
                show_once: false,
            },
        });
        assert!(obj.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_transparency_sheet() {
        let mut obj = base_object();
        obj.transparency_sets.push(TransparencySetSpec {
            base_image: 0,
            sheets: vec![0, 3],
            display: TransparencyDisplay::Stacked,
        });
        assert!(obj.validate().is_err());
    }

    #[test]
    fn validate_accepts_consistent_object() {
        let mut obj = base_object();
        obj.messages.push(LogicalMessage {
            anchor: Anchor::Image { image: 0 },
            body: MessageBody::Visual {
                content: VisualMessageContent { text: Some("note".into()), image: Some(0) },
                show_once: true,
            },
        });
        obj.transparency_sets.push(TransparencySetSpec {
            base_image: 0,
            sheets: vec![0],
            display: TransparencyDisplay::Separate,
        });
        obj.validate().unwrap();
    }

    #[test]
    fn dictated_voice_segment_has_pauses() {
        let seg = VoiceSegment::dictate(
            "one two three. four five six.\nsecond paragraph words.",
            &SpeakerProfile::CLEAR,
            11,
        );
        assert!(!seg.pauses.is_empty());
        assert!(seg.duration() > SimDuration::from_secs(2));
        assert!(seg.marks.available_levels().is_empty());
        let marked = seg.with_marks(&[LogicalLevel::Paragraph]);
        assert_eq!(marked.marks.available_levels(), vec![LogicalLevel::Paragraph]);
    }

    #[test]
    fn available_levels_follow_driving_mode() {
        let obj = base_object();
        assert!(!obj.available_logical_levels().is_empty());
        let mut audio_obj = MultimediaObject::new(ObjectId::new(2), "memo", DrivingMode::Audio);
        audio_obj.voice_segments.push(
            VoiceSegment::dictate("alpha beta.\ngamma delta.", &SpeakerProfile::CLEAR, 1)
                .with_marks(&[LogicalLevel::Paragraph]),
        );
        assert_eq!(audio_obj.available_logical_levels(), vec![LogicalLevel::Paragraph]);
        // An audio object without marks offers no logical browsing.
        let bare = MultimediaObject::new(ObjectId::new(3), "raw", DrivingMode::Audio);
        assert!(bare.available_logical_levels().is_empty());
    }

    #[test]
    fn recognition_populates_utterances() {
        use minos_voice::recognize::RecognizerConfig;
        let recognizer = Recognizer::new(
            ["alpha"],
            RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 0 },
        );
        let seg = VoiceSegment::dictate("alpha beta alpha.", &SpeakerProfile::CLEAR, 2)
            .with_recognition(&recognizer);
        assert_eq!(seg.utterances.len(), 2);
    }
}
