//! Archival and mailing transforms.
//!
//! "Archived or mailed within the organization multimedia objects are
//! composed of the concatenation of the descriptor file with the
//! composition file. In the case that objects are archived the offsets of
//! the descriptor have to be incremented by the offset where the
//! composition file is placed within the archiver. Finally when the
//! multimedia object is mailed outside the organization the object
//! descriptor is searched for pointers to information which exists in the
//! archiver. If such pointers exist, the relevant data is extracted from
//! the archiver and appended to the composition \[file\]. The pointers of
//! the descriptor which pointed to the archiver are changed to point within
//! the composition file." (§4)

use crate::composition::CompositionFile;
use crate::descriptor::{DataLocation, ObjectDescriptor};
use crate::formatter::MultimediaObjectFile;
use minos_types::{ByteSpan, Decoder, Encoder, MinosError, Result};

/// Read access to archiver-resident data, implemented by the storage
/// subsystem. Kept as a trait here so the object layer does not depend on
/// a concrete archiver.
pub trait ArchiverRead {
    /// Reads the bytes of an absolute archiver span.
    fn read_span(&self, span: ByteSpan) -> Result<Vec<u8>>;
}

/// An archivable/mailable object: descriptor + composition file.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchivedObject {
    /// The descriptor; composition pointers are relative to
    /// [`ArchivedObject::composition`].
    pub descriptor: ObjectDescriptor,
    /// The composition file.
    pub composition: CompositionFile,
}

impl ArchivedObject {
    /// Takes the archivable parts of a formatted object file.
    pub fn from_file(file: &MultimediaObjectFile) -> Self {
        ArchivedObject {
            descriptor: file.descriptor.clone(),
            composition: file.composition.clone(),
        }
    }

    /// Total size of the stored form in bytes.
    pub fn stored_size(&self) -> u64 {
        self.descriptor.encode().len() as u64 + self.composition.len() + 4
    }

    /// Encodes for placement in the archiver at absolute offset `base`:
    /// the descriptor's composition pointers are rebased to absolute
    /// archiver offsets, then the descriptor is concatenated with the
    /// composition file (with a 4-byte descriptor-length header so the
    /// concatenation can be split again).
    ///
    /// Rebasing changes varint-encoded offsets, which can change the
    /// descriptor's encoded length — the rebase target is therefore found
    /// by fixpoint iteration (converges in a few rounds since lengths grow
    /// monotonically with offsets).
    pub fn encode_for_archive(&self, base: u64) -> Vec<u8> {
        let mut desc_len = self.descriptor.encode().len() as u64;
        loop {
            let composition_base = base + 4 + desc_len;
            let rebased = self.descriptor.rebased_for_archive(composition_base);
            let bytes = rebased.encode();
            if bytes.len() as u64 == desc_len {
                let mut e =
                    Encoder::with_capacity(bytes.len() + self.composition.bytes().len() + 4);
                e.put_u32(bytes.len() as u32);
                e.put_raw(&bytes);
                e.put_raw(self.composition.bytes());
                return e.finish();
            }
            desc_len = bytes.len() as u64;
        }
    }

    /// Decodes an archived region placed at absolute offset `base`,
    /// returning the object with composition pointers made
    /// composition-relative again. Pointers into other archiver regions
    /// (shared data) stay absolute.
    pub fn decode_from_archive(bytes: &[u8], base: u64) -> Result<ArchivedObject> {
        let mut d = Decoder::new(bytes);
        let desc_len = d.get_u32()? as usize;
        let desc_bytes = d.get_raw(desc_len)?;
        let descriptor = ObjectDescriptor::decode(desc_bytes)?;
        let composition_bytes = d.get_raw(d.remaining())?.to_vec();
        let composition_base = base + 4 + desc_len as u64;
        let composition_end = composition_base + composition_bytes.len() as u64;

        let mut local = descriptor.clone();
        for entry in &mut local.entries {
            if let DataLocation::Archiver(span) = entry.location {
                // Pointers inside this object's own composition region
                // become composition-relative; anything else is shared data
                // elsewhere in the archiver.
                if span.start >= composition_base && span.end <= composition_end {
                    entry.location = DataLocation::Composition(ByteSpan::new(
                        span.start - composition_base,
                        span.end - composition_base,
                    ));
                }
            }
        }
        Ok(ArchivedObject {
            descriptor: local,
            composition: CompositionFile::from_bytes(composition_bytes),
        })
    }

    /// The mailed-within-the-organization form: descriptor and composition
    /// concatenated as-is; archiver pointers are legal because the
    /// recipient shares the archiver.
    pub fn mail_inside(&self) -> Vec<u8> {
        let desc = self.descriptor.encode();
        let mut e = Encoder::with_capacity(desc.len() + self.composition.bytes().len() + 4);
        e.put_u32(desc.len() as u32);
        e.put_raw(&desc);
        e.put_raw(self.composition.bytes());
        e.finish()
    }

    /// The mailed-outside form: every archiver pointer is resolved by
    /// extracting the data and appending it to the composition file; the
    /// result is self-contained. Identical archiver spans are appended
    /// once.
    pub fn mail_outside(&self, archiver: &dyn ArchiverRead) -> Result<ArchivedObject> {
        let mut out = self.clone();
        let mut resolved: Vec<(ByteSpan, ByteSpan)> = Vec::new(); // archiver span -> composition span
        for entry in &mut out.descriptor.entries {
            if let DataLocation::Archiver(span) = entry.location {
                let comp_span = match resolved.iter().find(|(a, _)| *a == span) {
                    Some((_, c)) => *c,
                    None => {
                        let data = archiver.read_span(span)?;
                        if data.len() as u64 != span.len() {
                            return Err(MinosError::Storage(format!(
                                "archiver returned {} bytes for {span}",
                                data.len()
                            )));
                        }
                        let c = out.composition.append_anonymous(&data);
                        resolved.push((span, c));
                        c
                    }
                };
                entry.location = DataLocation::Composition(comp_span);
            }
        }
        Ok(out)
    }

    /// Whether the object is self-contained (no archiver pointers) — a
    /// precondition for leaving the organization.
    pub fn is_self_contained(&self) -> bool {
        self.descriptor.entries.iter().all(|e| !e.location.is_archiver())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorEntry;
    use crate::model::DrivingMode;
    use crate::payload::DataKind;
    use minos_types::ObjectId;
    use std::collections::HashMap;

    /// A toy archiver for tests: span → bytes.
    struct FakeArchiver {
        regions: HashMap<(u64, u64), Vec<u8>>,
    }

    impl ArchiverRead for FakeArchiver {
        fn read_span(&self, span: ByteSpan) -> Result<Vec<u8>> {
            self.regions
                .get(&(span.start, span.end))
                .cloned()
                .ok_or_else(|| MinosError::Storage(format!("no region at {span}")))
        }
    }

    fn object_with_pointer() -> ArchivedObject {
        let mut composition = CompositionFile::new();
        let local_span = composition.append("notes", b"the local notes text");
        ArchivedObject {
            descriptor: ObjectDescriptor {
                object_id: ObjectId::new(5),
                name: "mailme".into(),
                driving_mode: DrivingMode::Visual,
                attributes: vec![],
                entries: vec![
                    DescriptorEntry {
                        tag: "notes".into(),
                        kind: DataKind::Text,
                        location: DataLocation::Composition(local_span),
                    },
                    DescriptorEntry {
                        tag: "xray".into(),
                        kind: DataKind::Image,
                        location: DataLocation::Archiver(ByteSpan::at(70_000, 16)),
                    },
                    DescriptorEntry {
                        tag: "xray-again".into(),
                        kind: DataKind::Image,
                        location: DataLocation::Archiver(ByteSpan::at(70_000, 16)),
                    },
                ],
            },
            composition,
        }
    }

    #[test]
    fn archive_round_trip_at_various_bases() {
        let obj = object_with_pointer();
        for base in [0u64, 1, 127, 128, 100_000, u32::MAX as u64] {
            let bytes = obj.encode_for_archive(base);
            let back = ArchivedObject::decode_from_archive(&bytes, base).unwrap();
            assert_eq!(back.descriptor.entries.len(), 3);
            // Local data is composition-relative again and readable.
            let notes = back.descriptor.entry("notes").unwrap();
            assert!(matches!(notes.location, DataLocation::Composition(_)), "base {base}");
            assert_eq!(
                back.composition.read(notes.location.span()).unwrap(),
                b"the local notes text"
            );
            // The shared pointer survives untouched.
            assert_eq!(
                back.descriptor.entry("xray").unwrap().location,
                DataLocation::Archiver(ByteSpan::at(70_000, 16))
            );
        }
    }

    #[test]
    fn archived_offsets_are_absolute() {
        let obj = object_with_pointer();
        let base = 12_345u64;
        let bytes = obj.encode_for_archive(base);
        // Parse the raw descriptor (before un-rebasing) to check offsets.
        let desc_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let raw = ObjectDescriptor::decode(&bytes[4..4 + desc_len]).unwrap();
        let notes = raw.entry("notes").unwrap();
        match notes.location {
            DataLocation::Archiver(span) => {
                assert_eq!(span.start, base + 4 + desc_len as u64);
            }
            other => panic!("expected absolute archiver pointer, got {other:?}"),
        }
    }

    #[test]
    fn mail_inside_keeps_pointers() {
        let obj = object_with_pointer();
        let bytes = obj.mail_inside();
        let back = ArchivedObject::decode_from_archive(&bytes, 0).unwrap();
        assert!(!back.is_self_contained());
        assert!(back.descriptor.entry("xray").unwrap().location.is_archiver());
    }

    #[test]
    fn mail_outside_resolves_pointers_once() {
        let obj = object_with_pointer();
        let archiver = FakeArchiver {
            regions: HashMap::from([((70_000, 70_016), b"XRAYDATA16BYTES!".to_vec())]),
        };
        let mailed = obj.mail_outside(&archiver).unwrap();
        assert!(mailed.is_self_contained());
        let xray = mailed.descriptor.entry("xray").unwrap();
        let again = mailed.descriptor.entry("xray-again").unwrap();
        assert_eq!(xray.location, again.location, "shared span appended once");
        assert_eq!(mailed.composition.read(xray.location.span()).unwrap(), b"XRAYDATA16BYTES!");
        // Size grew by exactly one copy of the shared data.
        assert_eq!(mailed.composition.len(), obj.composition.len() + 16);
    }

    #[test]
    fn mail_outside_fails_on_missing_region() {
        let obj = object_with_pointer();
        let archiver = FakeArchiver { regions: HashMap::new() };
        assert!(obj.mail_outside(&archiver).is_err());
    }

    #[test]
    fn self_contained_object_mails_outside_unchanged() {
        let mut composition = CompositionFile::new();
        let span = composition.append("only", b"data");
        let obj = ArchivedObject {
            descriptor: ObjectDescriptor {
                object_id: ObjectId::new(1),
                name: "solo".into(),
                driving_mode: DrivingMode::Visual,
                attributes: vec![],
                entries: vec![DescriptorEntry {
                    tag: "only".into(),
                    kind: DataKind::Text,
                    location: DataLocation::Composition(span),
                }],
            },
            composition,
        };
        assert!(obj.is_self_contained());
        let archiver = FakeArchiver { regions: HashMap::new() };
        let mailed = obj.mail_outside(&archiver).unwrap();
        assert_eq!(mailed, obj);
    }

    #[test]
    fn stored_size_accounts_for_both_parts() {
        let obj = object_with_pointer();
        let encoded = obj.encode_for_archive(0);
        // Fixpoint rebasing may change descriptor length slightly; the
        // stored size is within a few varint bytes of the encoding.
        let diff = (encoded.len() as i64 - obj.stored_size() as i64).abs();
        assert!(diff <= 16, "stored_size off by {diff}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::descriptor::{DescriptorEntry, ObjectDescriptor};
    use crate::model::DrivingMode;
    use crate::payload::DataKind;
    use minos_types::ObjectId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Archive encode/decode round-trips for arbitrary local payload
        /// layouts and arbitrary placement bases, including bases that
        /// stress varint length changes during the rebase fixpoint.
        #[test]
        fn archive_round_trips_arbitrary_objects(
            parts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..6),
            base in proptest::sample::select(vec![
                0u64, 1, 127, 128, 16_383, 16_384, 1 << 20, (1 << 32) - 1, 1 << 40,
            ]),
        ) {
            let mut composition = CompositionFile::new();
            let mut entries = Vec::new();
            for (i, data) in parts.iter().enumerate() {
                let tag = format!("part{i}");
                let span = composition.append(&tag, data);
                entries.push(DescriptorEntry {
                    tag,
                    kind: DataKind::Text,
                    location: DataLocation::Composition(span),
                });
            }
            let obj = ArchivedObject {
                descriptor: ObjectDescriptor {
                    object_id: ObjectId::new(9),
                    name: "prop".into(),
                    driving_mode: DrivingMode::Visual,
                    attributes: vec![],
                    entries,
                },
                composition,
            };
            let bytes = obj.encode_for_archive(base);
            let back = ArchivedObject::decode_from_archive(&bytes, base).unwrap();
            prop_assert_eq!(back.descriptor.entries.len(), parts.len());
            for (i, data) in parts.iter().enumerate() {
                let entry = back.descriptor.entry(&format!("part{i}")).unwrap();
                prop_assert!(matches!(entry.location, DataLocation::Composition(_)));
                prop_assert_eq!(back.composition.read(entry.location.span()).unwrap(), &data[..]);
            }
        }

        /// Mailing outside is idempotent: a self-contained object mails to
        /// itself, and resolving twice equals resolving once.
        #[test]
        fn mail_outside_is_idempotent(
            data in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            struct NoArchiver;
            impl ArchiverRead for NoArchiver {
                fn read_span(&self, span: ByteSpan) -> Result<Vec<u8>> {
                    Err(MinosError::Storage(format!("unexpected read of {span}")))
                }
            }
            let mut composition = CompositionFile::new();
            let span = composition.append("only", &data);
            let obj = ArchivedObject {
                descriptor: ObjectDescriptor {
                    object_id: ObjectId::new(1),
                    name: "solo".into(),
                    driving_mode: DrivingMode::Audio,
                    attributes: vec![("k".into(), "v".into())],
                    entries: vec![DescriptorEntry {
                        tag: "only".into(),
                        kind: DataKind::Voice,
                        location: DataLocation::Composition(span),
                    }],
                },
                composition,
            };
            let once = obj.mail_outside(&NoArchiver).unwrap();
            let twice = once.mail_outside(&NoArchiver).unwrap();
            prop_assert_eq!(&once, &obj);
            prop_assert_eq!(&twice, &once);
        }
    }
}
