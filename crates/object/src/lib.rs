//! The multimedia object model and formation pipeline (§2 and §4 of the
//! paper).
//!
//! "The unit of information in MINOS is a multimedia object. Multimedia
//! objects may be composed of attributes, an object text part (collection
//! of text segments) an object voice part (collection of voice segments),
//! and an object image part (collection of images)." (§2)
//!
//! * [`payload`] — typed data payloads and their byte serializations (what
//!   composition files and the archiver actually store);
//! * [`model`] — the in-memory multimedia object: parts, attributes,
//!   driving mode, editing/archived state, presentation specs;
//! * [`messages`] — voice and visual logical messages and their anchors;
//! * [`relevant`] — relevant objects and relevances;
//! * [`descriptor`] — the binary object descriptor: "the object descriptor
//!   points either to offsets within the composition file or to offsets
//!   within the archiver" (§4);
//! * [`datadir`] — the data directory file of an editing-state object;
//! * [`synthesis`] — the synthesis-file language;
//! * [`composition`] — composition-file construction;
//! * [`formatter`] — the declarative, interactive multimedia object
//!   formatter;
//! * [`archive`] — archival and mailing transforms (offset rebasing,
//!   pointer resolution, shared-data deduplication).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod composition;
pub mod datadir;
pub mod descriptor;
pub mod editors;
pub mod formatter;
pub mod messages;
pub mod model;
pub mod payload;
pub mod relevant;
pub mod synthesis;

pub use archive::{ArchivedObject, ArchiverRead};
pub use composition::CompositionFile;
pub use datadir::{DataDirectory, DataEntry, DataStatus};
pub use descriptor::{DataLocation, DescriptorEntry, ObjectDescriptor};
pub use editors::{ImageEditor, TextEditor, VoiceEditor};
pub use formatter::{FormatterSession, MultimediaObjectFile};
pub use messages::{Anchor, LogicalMessage, MessageBody, VisualMessageContent};
pub use model::{
    Attribute, DrivingMode, MultimediaObject, ObjectState, ProcessSimulation, ProcessStep,
    TourSpec, TransparencySetSpec, VoiceSegment,
};
pub use payload::{DataKind, DataPayload};
pub use relevant::{Relevance, RelevantLink};
pub use synthesis::{SynthesisFile, SynthesisItem};
