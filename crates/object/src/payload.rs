//! Typed data payloads.
//!
//! The composition file and the archiver store *bytes*; the editors and the
//! presentation manager work with typed media. A [`DataPayload`] is the
//! bridge: a kind tag plus the canonical byte serialization of one piece of
//! media. "The presentation interface of the archiver expects always the
//! data in its final form" (§4) — `DataPayload` *is* that final form.

use minos_image::Bitmap;
use minos_types::{Decoder, Encoder, MinosError, Result};

/// The media kind of a data file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataKind {
    /// Markup text (a text segment's source).
    Text,
    /// A raster image.
    Image,
    /// Digitized voice samples.
    Voice,
}

impl DataKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            DataKind::Text => 1,
            DataKind::Image => 2,
            DataKind::Voice => 3,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Result<DataKind> {
        match tag {
            1 => Ok(DataKind::Text),
            2 => Ok(DataKind::Image),
            3 => Ok(DataKind::Voice),
            other => Err(MinosError::Codec(format!("unknown data kind tag {other}"))),
        }
    }
}

/// One data file's content in final (archival) form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataPayload {
    /// Media kind.
    pub kind: DataKind,
    /// Canonical bytes.
    pub bytes: Vec<u8>,
}

impl DataPayload {
    /// A text payload: UTF-8 markup source.
    pub fn text(markup_source: &str) -> Self {
        DataPayload { kind: DataKind::Text, bytes: markup_source.as_bytes().to_vec() }
    }

    /// Decodes a text payload back to markup source.
    pub fn as_text(&self) -> Result<String> {
        if self.kind != DataKind::Text {
            return Err(MinosError::Codec("payload is not text".into()));
        }
        String::from_utf8(self.bytes.clone())
            .map_err(|e| MinosError::Codec(format!("invalid utf-8 in text payload: {e}")))
    }

    /// An image payload: bit-packed raster with a small header.
    pub fn image(bitmap: &Bitmap) -> Self {
        let mut e = Encoder::with_capacity(16 + bitmap.byte_size() as usize);
        e.put_u32(bitmap.width());
        e.put_u32(bitmap.height());
        // Row-major bits, packed 8 per byte for a device-independent form.
        let mut byte = 0u8;
        let mut nbits = 0;
        for y in 0..bitmap.height() as i32 {
            for x in 0..bitmap.width() as i32 {
                if bitmap.get(x, y) {
                    byte |= 1 << nbits;
                }
                nbits += 1;
                if nbits == 8 {
                    e.put_u8(byte);
                    byte = 0;
                    nbits = 0;
                }
            }
        }
        if nbits > 0 {
            e.put_u8(byte);
        }
        DataPayload { kind: DataKind::Image, bytes: e.finish() }
    }

    /// Decodes an image payload.
    pub fn as_image(&self) -> Result<Bitmap> {
        if self.kind != DataKind::Image {
            return Err(MinosError::Codec("payload is not an image".into()));
        }
        let mut d = Decoder::new(&self.bytes);
        let width = d.get_u32()?;
        let height = d.get_u32()?;
        let total_bits = width as u64 * height as u64;
        let need = total_bits.div_ceil(8) as usize;
        let data = d.get_raw(need)?;
        let mut bm = Bitmap::new(width, height);
        let mut bit = 0u64;
        for y in 0..height as i32 {
            for x in 0..width as i32 {
                if data[(bit / 8) as usize] & (1 << (bit % 8)) != 0 {
                    bm.set(x, y, true);
                }
                bit += 1;
            }
        }
        d.expect_end()?;
        Ok(bm)
    }

    /// A voice payload: sample rate plus 16-bit little-endian samples.
    pub fn voice(samples: &[i16], sample_rate: u32) -> Self {
        let mut e = Encoder::with_capacity(8 + samples.len() * 2);
        e.put_u32(sample_rate);
        e.put_u32(samples.len() as u32);
        for &s in samples {
            e.put_u16(s as u16);
        }
        DataPayload { kind: DataKind::Voice, bytes: e.finish() }
    }

    /// Decodes a voice payload to `(samples, sample_rate)`.
    pub fn as_voice(&self) -> Result<(Vec<i16>, u32)> {
        if self.kind != DataKind::Voice {
            return Err(MinosError::Codec("payload is not voice".into()));
        }
        let mut d = Decoder::new(&self.bytes);
        let rate = d.get_u32()?;
        let n = d.get_u32()? as usize;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(d.get_u16()? as i16);
        }
        d.expect_end()?;
        Ok((samples, rate))
    }

    /// Length in bytes — what storing or shipping this payload costs.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::Rect;
    use proptest::prelude::*;

    #[test]
    fn kind_tags_round_trip() {
        for kind in [DataKind::Text, DataKind::Image, DataKind::Voice] {
            assert_eq!(DataKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(DataKind::from_tag(0).is_err());
        assert!(DataKind::from_tag(9).is_err());
    }

    #[test]
    fn text_round_trip() {
        let p = DataPayload::text(".ch Intro\nSome *bold* text.\n");
        assert_eq!(p.as_text().unwrap(), ".ch Intro\nSome *bold* text.\n");
        assert!(p.as_image().is_err());
        assert!(p.as_voice().is_err());
    }

    #[test]
    fn image_round_trip() {
        let mut bm = Bitmap::new(13, 7); // deliberately not byte-aligned
        bm.fill_rect(Rect::new(2, 1, 5, 3), true);
        bm.set(12, 6, true);
        let p = DataPayload::image(&bm);
        assert_eq!(p.as_image().unwrap(), bm);
        assert!(p.as_text().is_err());
    }

    #[test]
    fn voice_round_trip() {
        let samples: Vec<i16> = vec![0, 100, -100, i16::MAX, i16::MIN, 42];
        let p = DataPayload::voice(&samples, 8_000);
        let (got, rate) = p.as_voice().unwrap();
        assert_eq!(got, samples);
        assert_eq!(rate, 8_000);
    }

    #[test]
    fn empty_payloads() {
        assert!(DataPayload::text("").is_empty());
        let p = DataPayload::voice(&[], 8_000);
        assert!(!p.is_empty()); // header bytes
        assert_eq!(p.as_voice().unwrap().0.len(), 0);
    }

    #[test]
    fn corrupt_image_is_an_error() {
        let mut p = DataPayload::image(&Bitmap::new(8, 8));
        p.bytes.truncate(6);
        assert!(p.as_image().is_err());
    }

    #[test]
    fn image_payload_size_tracks_area() {
        let small = DataPayload::image(&Bitmap::new(100, 100));
        let large = DataPayload::image(&Bitmap::new(1000, 1000));
        assert!(large.len() > small.len() * 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn image_round_trips_arbitrary(
            w in 1u32..40,
            h in 1u32..20,
            pts in proptest::collection::vec((0i32..40, 0i32..20), 0..64),
        ) {
            let mut bm = Bitmap::new(w, h);
            for (x, y) in pts {
                bm.set(x, y, true);
            }
            let p = DataPayload::image(&bm);
            prop_assert_eq!(p.as_image().unwrap(), bm);
        }

        #[test]
        fn voice_round_trips_arbitrary(samples in proptest::collection::vec(any::<i16>(), 0..256)) {
            let p = DataPayload::voice(&samples, 16_000);
            let (got, rate) = p.as_voice().unwrap();
            prop_assert_eq!(got, samples);
            prop_assert_eq!(rate, 16_000);
        }
    }
}
