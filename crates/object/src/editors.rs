//! The media editors of §4.
//!
//! "There is a number of editors in MINOS. These editors are responsible
//! for the interactive generation and editing of text, image and voice
//! data. … The status information describes if the data in a particular
//! file is in its final form which is to be used for archiving or mailing.
//! For images with graphics for example the archival form may be different
//! than the editing form. When the editing of an image is completed its
//! archival form (which is device and software package independent) is
//! produced." (§4)
//!
//! Each editor owns one data file's *editing form* and writes draft
//! payloads into the object's [`crate::datadir::DataDirectory`]; `finish`
//! produces the final archival form and marks the entry final. The editors
//! are deliberately small — their interactive behaviour is not the paper's
//! contribution — but they complete the formation pipeline so the
//! draft→final lifecycle is real.

use crate::datadir::{DataDirectory, DataStatus};
use crate::payload::DataPayload;
use minos_image::{raster, GraphicsImage, GraphicsObject};
use minos_types::{MinosError, Result};
use minos_voice::synth::SpeakerProfile;
use minos_voice::AudioBuffer;

/// A line-oriented markup text editor.
#[derive(Clone, Debug, Default)]
pub struct TextEditor {
    lines: Vec<String>,
}

impl TextEditor {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens existing markup source.
    pub fn open(source: &str) -> Self {
        TextEditor { lines: source.lines().map(str::to_string).collect() }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Appends a line at the end.
    pub fn append(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Inserts a line before 0-based `at` (clamped to the end).
    pub fn insert(&mut self, at: usize, line: impl Into<String>) {
        let at = at.min(self.lines.len());
        self.lines.insert(at, line.into());
    }

    /// Deletes the 0-based line `at`.
    pub fn delete(&mut self, at: usize) -> Result<()> {
        if at >= self.lines.len() {
            return Err(MinosError::UnknownComponent(format!("line {at}")));
        }
        self.lines.remove(at);
        Ok(())
    }

    /// Replaces the first occurrence of `from` with `to` across the buffer.
    /// Returns whether anything changed.
    pub fn replace_first(&mut self, from: &str, to: &str) -> bool {
        for line in &mut self.lines {
            if let Some(idx) = line.find(from) {
                line.replace_range(idx..idx + from.len(), to);
                return true;
            }
        }
        false
    }

    /// The current source.
    pub fn source(&self) -> String {
        let mut s = self.lines.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Saves a draft into the data directory under `tag` (creating or
    /// updating the entry).
    pub fn save_draft(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        let payload = DataPayload::text(&self.source());
        if datadir.get(tag).is_some() {
            datadir.update_local(tag, payload)
        } else {
            datadir.insert_local(tag, payload, DataStatus::Draft)
        }
    }

    /// Validates the markup and finalizes the entry — the archiver only
    /// accepts final forms, and final text must parse.
    pub fn finish(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        minos_text::parse_markup(&self.source())?;
        self.save_draft(datadir, tag)?;
        datadir.finalize(tag)
    }
}

/// A graphics image editor. The *editing form* is the symbolic
/// [`GraphicsImage`]; the *archival form* is the rasterized,
/// device-independent image payload — exactly the §4 distinction.
#[derive(Clone, Debug)]
pub struct ImageEditor {
    image: GraphicsImage,
}

impl ImageEditor {
    /// A blank canvas.
    pub fn new(width: u32, height: u32) -> Self {
        ImageEditor { image: GraphicsImage::new(width, height) }
    }

    /// Opens an existing editing form.
    pub fn open(image: GraphicsImage) -> Self {
        ImageEditor { image }
    }

    /// The editing form.
    pub fn image(&self) -> &GraphicsImage {
        &self.image
    }

    /// Adds a graphics object, returning its index.
    pub fn add(&mut self, object: GraphicsObject) -> usize {
        self.image.push(object)
    }

    /// Removes the topmost object at `at` (mouse-delete). Returns the
    /// removed object, or an error when nothing is there.
    pub fn delete_at(&mut self, at: minos_types::Point) -> Result<GraphicsObject> {
        match self.image.object_at(at) {
            Some(idx) => Ok(self.image.objects.remove(idx)),
            None => Err(MinosError::UnknownComponent(format!("no object at {at:?}"))),
        }
    }

    /// Saves the *editing form* as a draft. (Drafts are not archival: the
    /// raster has not been produced yet, so the payload is a placeholder
    /// raster at draft status.)
    pub fn save_draft(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        let payload = DataPayload::image(&raster::render_graphics(&self.image));
        if datadir.get(tag).is_some() {
            datadir.update_local(tag, payload)
        } else {
            datadir.insert_local(tag, payload, DataStatus::Draft)
        }
    }

    /// Produces the device-independent archival form (the rendered raster)
    /// and finalizes the entry.
    pub fn finish(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        self.save_draft(datadir, tag)?;
        datadir.finalize(tag)
    }
}

/// A voice editor: dictation capture with optional re-takes.
#[derive(Clone, Debug)]
pub struct VoiceEditor {
    profile: SpeakerProfile,
    seed: u64,
    takes: Vec<String>,
}

impl VoiceEditor {
    /// A fresh recorder for one speaker.
    pub fn new(profile: SpeakerProfile, seed: u64) -> Self {
        VoiceEditor { profile, seed, takes: Vec::new() }
    }

    /// Records (dictates) one more take; takes are concatenated as
    /// paragraphs.
    pub fn record(&mut self, text: impl Into<String>) {
        self.takes.push(text.into());
    }

    /// Discards the last take ("no — again").
    pub fn discard_last(&mut self) -> Option<String> {
        self.takes.pop()
    }

    /// Number of takes kept.
    pub fn take_count(&self) -> usize {
        self.takes.len()
    }

    /// Renders the digitized audio of all takes.
    pub fn audio(&self) -> AudioBuffer {
        minos_voice::synthesize(&self.takes.join("\n"), &self.profile, self.seed).0
    }

    /// Saves the digitized form as a draft.
    pub fn save_draft(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        let audio = self.audio();
        let payload = DataPayload::voice(audio.samples(), audio.sample_rate());
        if datadir.get(tag).is_some() {
            datadir.update_local(tag, payload)
        } else {
            datadir.insert_local(tag, payload, DataStatus::Draft)
        }
    }

    /// Finalizes the dictation. Empty recordings are rejected — an empty
    /// voice part has no final form.
    pub fn finish(&self, datadir: &mut DataDirectory, tag: &str) -> Result<()> {
        if self.takes.iter().all(|t| t.trim().is_empty()) {
            return Err(MinosError::WrongState("nothing was dictated".into()));
        }
        self.save_draft(datadir, tag)?;
        datadir.finalize(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_image::Shape;
    use minos_types::Point;

    #[test]
    fn text_editor_edit_cycle() {
        let mut e = TextEditor::open(".ch One\nfirst line\n");
        assert_eq!(e.line_count(), 2);
        e.append("appended line");
        e.insert(1, "inserted line");
        assert_eq!(e.source(), ".ch One\ninserted line\nfirst line\nappended line\n");
        e.delete(2).unwrap();
        assert!(e.delete(99).is_err());
        assert!(e.replace_first("inserted", "edited"));
        assert!(!e.replace_first("missing", "x"));
        assert_eq!(e.source(), ".ch One\nedited line\nappended line\n");
    }

    #[test]
    fn text_editor_draft_then_final() {
        let mut datadir = DataDirectory::new();
        let mut e = TextEditor::new();
        e.append(".ch Draft");
        e.append("work in progress");
        e.save_draft(&mut datadir, "notes").unwrap();
        assert_eq!(datadir.get("notes").unwrap().status, DataStatus::Draft);
        assert!(datadir.ensure_all_final().is_err());
        e.finish(&mut datadir, "notes").unwrap();
        datadir.ensure_all_final().unwrap();
    }

    #[test]
    fn text_editor_finish_rejects_bad_markup() {
        let mut datadir = DataDirectory::new();
        let mut e = TextEditor::new();
        e.append(".zz not a directive");
        assert!(e.finish(&mut datadir, "bad").is_err());
        assert!(datadir.get("bad").is_none(), "failed finish must not pollute the directory");
    }

    #[test]
    fn image_editor_draw_delete_finish() {
        let mut datadir = DataDirectory::new();
        let mut e = ImageEditor::new(100, 100);
        e.add(GraphicsObject::new(Shape::Circle {
            center: Point::new(50, 50),
            radius: 20,
            filled: true,
        }));
        e.add(GraphicsObject::new(Shape::Point(Point::new(10, 10))));
        assert_eq!(e.image().objects.len(), 2);
        // Mouse-delete the circle.
        e.delete_at(Point::new(50, 50)).unwrap();
        assert_eq!(e.image().objects.len(), 1);
        assert!(e.delete_at(Point::new(90, 90)).is_err());
        e.finish(&mut datadir, "figure").unwrap();
        // The archival form decodes to the rendered raster.
        let entry = datadir.get("figure").unwrap();
        assert_eq!(entry.status, DataStatus::Final);
        match &entry.home {
            crate::datadir::DataHome::Local(p) => {
                let bm = p.as_image().unwrap();
                assert!(bm.get(10, 10));
                assert!(!bm.get(50, 50), "deleted circle must not render");
            }
            other => panic!("unexpected home {other:?}"),
        }
    }

    #[test]
    fn voice_editor_takes_and_retakes() {
        let mut e = VoiceEditor::new(SpeakerProfile::CLEAR, 9);
        e.record("first attempt that went badly");
        e.record("second paragraph");
        assert_eq!(e.take_count(), 2);
        let long = e.audio().duration();
        e.discard_last();
        assert_eq!(e.take_count(), 1);
        let short = e.audio().duration();
        assert!(short < long);
    }

    #[test]
    fn voice_editor_draft_updates_and_finalizes() {
        let mut datadir = DataDirectory::new();
        let mut e = VoiceEditor::new(SpeakerProfile::CLEAR, 9);
        e.record("the dictated memo");
        e.save_draft(&mut datadir, "memo").unwrap();
        let len1 = datadir.get("memo").unwrap().len();
        e.record("with a second paragraph added");
        e.save_draft(&mut datadir, "memo").unwrap();
        let len2 = datadir.get("memo").unwrap().len();
        assert!(len2 > len1);
        assert_eq!(datadir.get("memo").unwrap().status, DataStatus::Draft);
        e.finish(&mut datadir, "memo").unwrap();
        assert_eq!(datadir.get("memo").unwrap().status, DataStatus::Final);
    }

    #[test]
    fn empty_dictation_cannot_finalize() {
        let mut datadir = DataDirectory::new();
        let e = VoiceEditor::new(SpeakerProfile::CLEAR, 1);
        assert!(e.finish(&mut datadir, "empty").is_err());
    }

    #[test]
    fn editors_feed_the_formatter() {
        // The full §4 flow: editors → data directory → synthesis → build.
        use crate::formatter::FormatterSession;
        let mut session = FormatterSession::new(minos_types::ObjectId::new(1));

        let mut text = TextEditor::new();
        text.append(".ch Edited Chapter");
        text.append("body written in the text editor.");
        text.finish(session.datadir_mut(), "body").unwrap();

        let mut image = ImageEditor::new(120, 80);
        image.add(GraphicsObject::new(Shape::Circle {
            center: Point::new(60, 40),
            radius: 15,
            filled: false,
        }));
        image.finish(session.datadir_mut(), "figure").unwrap();

        session.set_synthesis("@object edited\n@data body\n@data figure\n").unwrap();
        let file = session.build().unwrap();
        assert_eq!(file.descriptor.entries.len(), 2);
        assert_eq!(file.descriptor.entries[0].kind, crate::payload::DataKind::Text);
        assert_eq!(file.descriptor.entries[1].kind, crate::payload::DataKind::Image);
    }
}
