//! Relevant objects and relevances.
//!
//! "Relevant objects are objects which contain information related to the
//! information which exists in a section of a given (parent) object.
//! Relevant objects are independent multimedia objects (e.g. they have
//! existence by themselves) … The user does not automatically see the
//! relevant objects (in contrast to logical messages). A relevant object
//! indicator which is displayed on the screen of the workstation indicates
//! the existence of a relevant object." (§2)

use crate::messages::Anchor;
use minos_types::{CharSpan, ObjectId, Point, TimeSpan};

/// A relevance: a section *of the relevant object* related to the anchored
/// section of the parent. "Relevances to text sections are indicated
/// graphically with beginning and end indicators. Relevances to images are
/// indicated by closed polygons displayed at the top of the image.
/// Relevances to voice segments are indicated by the fact that the voice
/// segment is played independently." (§2)
#[derive(Clone, PartialEq, Debug)]
pub enum Relevance {
    /// A text span of the relevant object.
    Text {
        /// Text segment index within the relevant object.
        segment: usize,
        /// The related span.
        span: CharSpan,
    },
    /// A polygonal region of one of the relevant object's images.
    ImagePolygon {
        /// Image index within the relevant object.
        image: usize,
        /// Vertices of the closed polygon projected on the image.
        vertices: Vec<Point>,
    },
    /// A voice span of the relevant object (played independently, on menu
    /// selection).
    Voice {
        /// Voice segment index within the relevant object.
        segment: usize,
        /// The related span.
        span: TimeSpan,
    },
}

/// A link from a section of the parent object to a relevant object.
#[derive(Clone, PartialEq, Debug)]
pub struct RelevantLink {
    /// The label shown on the relevant object indicator.
    pub label: String,
    /// The independent object the indicator leads to. "An object may have
    /// several relevant objects (including itself)" — the target may equal
    /// the parent's id.
    pub target: ObjectId,
    /// The section of the parent the relevant object relates to.
    pub anchor: Anchor,
    /// Relevances within the target object.
    pub relevances: Vec<Relevance>,
}

/// Indices of the links whose indicator should be visible while browsing
/// text position `(segment, pos)` of the parent.
pub fn links_at_text(links: &[RelevantLink], segment: usize, pos: u32) -> Vec<usize> {
    links
        .iter()
        .enumerate()
        .filter(|(_, l)| l.anchor.covers_text(segment, pos))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of links visible at voice position `(segment, t)`.
pub fn links_at_voice(
    links: &[RelevantLink],
    segment: usize,
    t: minos_types::SimInstant,
) -> Vec<usize> {
    links
        .iter()
        .enumerate()
        .filter(|(_, l)| l.anchor.covers_voice(segment, t))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of links anchored to image `image`.
pub fn links_at_image(links: &[RelevantLink], image: usize) -> Vec<usize> {
    links.iter().enumerate().filter(|(_, l)| l.anchor.covers_image(image)).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::SimInstant;

    fn link(label: &str, anchor: Anchor) -> RelevantLink {
        RelevantLink { label: label.into(), target: ObjectId::new(7), anchor, relevances: vec![] }
    }

    #[test]
    fn indicators_appear_only_in_anchored_sections() {
        let links = vec![
            link("hospitals", Anchor::Image { image: 0 }),
            link("details", Anchor::TextSegment { segment: 0, span: CharSpan::new(10, 40) }),
        ];
        assert_eq!(links_at_image(&links, 0), vec![0]);
        assert!(links_at_image(&links, 1).is_empty());
        assert_eq!(links_at_text(&links, 0, 20), vec![1]);
        assert!(links_at_text(&links, 0, 50).is_empty());
    }

    #[test]
    fn voice_anchored_links() {
        let span = TimeSpan::new(SimInstant::from_micros(0), SimInstant::from_micros(1_000_000));
        let links = vec![link("x-ray", Anchor::VoiceSegment { segment: 0, span })];
        assert_eq!(links_at_voice(&links, 0, SimInstant::from_micros(500_000)), vec![0]);
        assert!(links_at_voice(&links, 0, SimInstant::from_micros(2_000_000)).is_empty());
    }

    #[test]
    fn self_relevant_object_is_allowed() {
        // "An object may have several relevant objects (including itself)".
        let l = RelevantLink {
            label: "same object".into(),
            target: ObjectId::new(7),
            anchor: Anchor::TextSegment { segment: 0, span: CharSpan::new(0, 5) },
            relevances: vec![Relevance::Text { segment: 0, span: CharSpan::new(100, 150) }],
        };
        assert_eq!(l.target, ObjectId::new(7));
        assert_eq!(l.relevances.len(), 1);
    }

    #[test]
    fn relevance_variants_carry_their_geometry() {
        let r = Relevance::ImagePolygon {
            image: 2,
            vertices: vec![Point::new(0, 0), Point::new(10, 0), Point::new(5, 8)],
        };
        match r {
            Relevance::ImagePolygon { image, vertices } => {
                assert_eq!(image, 2);
                assert_eq!(vertices.len(), 3);
            }
            _ => unreachable!(),
        }
    }
}
