//! The composition file.
//!
//! "The composition file is the concatenation of several data files each
//! one of which contains a certain part of the multimedia object (text
//! parts, images, etc.)." (§4)
//!
//! Appends are deduplicated by tag: a data file spliced at several points
//! of the presentation (the x-ray of Figures 3–4, shown with each page of
//! its related text) is stored once and every descriptor entry points at
//! the same span — "The x-ray bitmap is only stored once within the
//! multimedia object." (§3)

use minos_types::{ByteSpan, MinosError, Result};
use std::collections::HashMap;

/// A composition file under construction or loaded from the archive.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompositionFile {
    bytes: Vec<u8>,
    /// tag → span of the (single) stored copy.
    toc: HashMap<String, ByteSpan>,
}

impl CompositionFile {
    /// An empty composition file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a composition file from raw bytes (no table of
    /// contents — spans come from the accompanying descriptor).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CompositionFile { bytes, toc: HashMap::new() }
    }

    /// Appends `data` under `tag`, returning its span. If the tag was
    /// already appended, returns the existing span without storing a second
    /// copy.
    pub fn append(&mut self, tag: &str, data: &[u8]) -> ByteSpan {
        if let Some(&span) = self.toc.get(tag) {
            return span;
        }
        let span = ByteSpan::at(self.bytes.len() as u64, data.len() as u64);
        self.bytes.extend_from_slice(data);
        self.toc.insert(tag.to_string(), span);
        span
    }

    /// Appends anonymous data (always stored; used when mailing resolves
    /// archiver pointers).
    pub fn append_anonymous(&mut self, data: &[u8]) -> ByteSpan {
        let span = ByteSpan::at(self.bytes.len() as u64, data.len() as u64);
        self.bytes.extend_from_slice(data);
        span
    }

    /// Reads the bytes of `span`.
    pub fn read(&self, span: ByteSpan) -> Result<&[u8]> {
        let (start, end) = (span.start as usize, span.end as usize);
        if end > self.bytes.len() {
            return Err(MinosError::Codec(format!(
                "span {span} outside composition file of {} bytes",
                self.bytes.len()
            )));
        }
        Ok(&self.bytes[start..end])
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes (for archival concatenation).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The span previously appended under `tag`, if any.
    pub fn span_of(&self, tag: &str) -> Option<ByteSpan> {
        self.toc.get(tag).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let mut c = CompositionFile::new();
        let a = c.append("a", b"hello");
        let b = c.append("b", b"world!");
        assert_eq!(a, ByteSpan::at(0, 5));
        assert_eq!(b, ByteSpan::at(5, 6));
        assert_eq!(c.read(a).unwrap(), b"hello");
        assert_eq!(c.read(b).unwrap(), b"world!");
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn repeated_tag_is_stored_once() {
        let mut c = CompositionFile::new();
        let first = c.append("xray", &[7u8; 1000]);
        let second = c.append("xray", &[7u8; 1000]);
        assert_eq!(first, second);
        assert_eq!(c.len(), 1000, "x-ray stored once");
    }

    #[test]
    fn anonymous_appends_always_store() {
        let mut c = CompositionFile::new();
        c.append_anonymous(b"one");
        c.append_anonymous(b"one");
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn read_out_of_range_is_error() {
        let mut c = CompositionFile::new();
        c.append("a", b"xy");
        assert!(c.read(ByteSpan::at(1, 5)).is_err());
        assert!(c.read(ByteSpan::at(0, 2)).is_ok());
    }

    #[test]
    fn span_lookup_by_tag() {
        let mut c = CompositionFile::new();
        c.append("a", b"abc");
        assert_eq!(c.span_of("a"), Some(ByteSpan::at(0, 3)));
        assert_eq!(c.span_of("b"), None);
    }

    #[test]
    fn from_bytes_supports_reading() {
        let c = CompositionFile::from_bytes(b"restored".to_vec());
        assert_eq!(c.read(ByteSpan::at(0, 8)).unwrap(), b"restored");
        assert_eq!(c.span_of("anything"), None);
    }

    #[test]
    fn empty_file() {
        let c = CompositionFile::new();
        assert!(c.is_empty());
        assert_eq!(c.read(ByteSpan::empty_at(0)).unwrap(), b"");
    }
}
