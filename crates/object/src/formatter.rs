//! The multimedia object formatter.
//!
//! "The multimedia object formatter is responsible for the creation of the
//! multimedia object descriptor. The formatter is declarative and
//! interactive. Declarative formatters emphasize more the logical structure
//! of the object instead of how to do the formatting. Interactive
//! formatters allow the user to see immediately the result of local changes
//! in the formatting commands." (§4)
//!
//! A [`FormatterSession`] owns the synthesis source and the data directory
//! of one editing-state object. Every change to the synthesis source
//! rebuilds the composition file and descriptor ("If the user makes certain
//! changes … part of the descriptor file and the composition file may have
//! to be deleted and recreated"), and the preview form is available at any
//! time for the page miniature shown beside the menu options.

use crate::composition::CompositionFile;
use crate::datadir::{DataDirectory, DataHome};
use crate::descriptor::{DataLocation, DescriptorEntry, ObjectDescriptor};
use crate::payload::DataKind;
use crate::synthesis::{SynthesisFile, SynthesisItem};
use minos_text::{PaginateConfig, PresentationForm};
use minos_types::{MinosError, ObjectId, Result};

/// The set of files that make up an editing-state multimedia object —
/// "a synthesis-file, the object descriptor, a composition-file, a
/// data-directory file, and a set of data files" (§4; the data files live
/// inside the data directory here).
#[derive(Clone, Debug)]
pub struct MultimediaObjectFile {
    /// The synthesis source as last written by the user.
    pub synthesis_source: String,
    /// Its parse.
    pub synthesis: SynthesisFile,
    /// The data directory (owning local data files).
    pub datadir: DataDirectory,
    /// The derived descriptor.
    pub descriptor: ObjectDescriptor,
    /// The derived composition file.
    pub composition: CompositionFile,
}

/// An interactive formatting session.
#[derive(Clone, Debug)]
pub struct FormatterSession {
    object_id: ObjectId,
    synthesis_source: String,
    datadir: DataDirectory,
}

impl FormatterSession {
    /// Opens a session for a new object.
    pub fn new(object_id: ObjectId) -> Self {
        FormatterSession {
            object_id,
            synthesis_source: String::new(),
            datadir: DataDirectory::new(),
        }
    }

    /// The object's data directory (register data files here).
    pub fn datadir(&self) -> &DataDirectory {
        &self.datadir
    }

    /// Mutable access to the data directory.
    pub fn datadir_mut(&mut self) -> &mut DataDirectory {
        &mut self.datadir
    }

    /// Replaces the synthesis source (the user edited it). Returns the
    /// parse result immediately — interactive feedback.
    pub fn set_synthesis(&mut self, source: &str) -> Result<SynthesisFile> {
        let parsed = SynthesisFile::parse(source)?;
        self.synthesis_source = source.to_string();
        Ok(parsed)
    }

    /// The current synthesis source.
    pub fn synthesis_source(&self) -> &str {
        &self.synthesis_source
    }

    /// Derives the markup the preview/pagination sees: markup runs pass
    /// through; image data references become `.fig` anchors with the
    /// image's real dimensions; text data references are spliced inline.
    fn preview_markup(&self, synthesis: &SynthesisFile) -> Result<String> {
        let mut out = String::new();
        for item in &synthesis.items {
            match item {
                SynthesisItem::Markup(m) => {
                    out.push_str(m);
                    out.push('\n');
                }
                SynthesisItem::DataRef(tag) => {
                    let entry = self.datadir.get(tag).ok_or_else(|| {
                        MinosError::UnknownComponent(format!("data tag {tag:?} not in directory"))
                    })?;
                    match (&entry.home, entry.kind) {
                        (DataHome::Local(p), DataKind::Image) => {
                            let bm = p.as_image()?;
                            out.push_str(&format!(".fig {tag} {} {}\n", bm.width(), bm.height()));
                        }
                        (DataHome::Archiver(_), DataKind::Image) => {
                            // Dimensions live with the data; the preview
                            // shows a standard placeholder frame.
                            out.push_str(&format!(".fig {tag} 200 150\n"));
                        }
                        (DataHome::Local(p), DataKind::Text) => {
                            out.push_str(&p.as_text()?);
                            out.push('\n');
                        }
                        (DataHome::Archiver(_), DataKind::Text) => {
                            out.push_str(".pp\n");
                        }
                        (_, DataKind::Voice) => {
                            // Voice data has no visual preview form.
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The interactive preview: the paginated presentation form of the
    /// object as currently written. "A miniature of the current page of
    /// the formatted object is displayed in the right hand side of the
    /// screen … This way the user can immediately see the results of his
    /// formatting actions." The screen substrate renders the miniature;
    /// this returns the form it renders from.
    pub fn preview(&self, config: PaginateConfig) -> Result<PresentationForm> {
        let synthesis = SynthesisFile::parse(&self.synthesis_source)?;
        let markup = self.preview_markup(&synthesis)?;
        let doc = minos_text::parse_markup(&markup)?;
        Ok(PresentationForm::paginate(&doc, config))
    }

    /// Builds the full object file: parses the synthesis source, creates
    /// the composition file by concatenating referenced final-form data,
    /// and derives the descriptor. Draft data files are rejected.
    pub fn build(&self) -> Result<MultimediaObjectFile> {
        let synthesis = SynthesisFile::parse(&self.synthesis_source)?;
        let mut composition = CompositionFile::new();
        let mut entries = Vec::new();
        let mut text_counter = 0usize;

        for item in &synthesis.items {
            match item {
                SynthesisItem::Markup(m) => {
                    let tag = format!("text#{text_counter}");
                    text_counter += 1;
                    let span = composition.append(&tag, m.as_bytes());
                    entries.push(DescriptorEntry {
                        tag,
                        kind: DataKind::Text,
                        location: DataLocation::Composition(span),
                    });
                }
                SynthesisItem::DataRef(tag) => {
                    let entry = self.datadir.get(tag).ok_or_else(|| {
                        MinosError::UnknownComponent(format!("data tag {tag:?} not in directory"))
                    })?;
                    if entry.status != crate::datadir::DataStatus::Final {
                        return Err(MinosError::WrongState(format!(
                            "data tag {tag:?} is not in final form"
                        )));
                    }
                    let location = match &entry.home {
                        DataHome::Local(p) => {
                            DataLocation::Composition(composition.append(tag, &p.bytes))
                        }
                        // "In the case that a data tag in the synthesis file
                        // refers to data which exist in the archiver, the
                        // object descriptor is updated with a pointer to the
                        // location within the archiver." (§4)
                        DataHome::Archiver(span) => DataLocation::Archiver(*span),
                    };
                    entries.push(DescriptorEntry { tag: tag.clone(), kind: entry.kind, location });
                }
            }
        }

        let descriptor = ObjectDescriptor {
            object_id: self.object_id,
            name: synthesis.name.clone(),
            driving_mode: synthesis.mode,
            attributes: synthesis.attributes.clone(),
            entries,
        };
        Ok(MultimediaObjectFile {
            synthesis_source: self.synthesis_source.clone(),
            synthesis,
            datadir: self.datadir.clone(),
            descriptor,
            composition,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datadir::DataStatus;
    use crate::model::DrivingMode;
    use crate::payload::DataPayload;
    use minos_image::Bitmap;
    use minos_types::ByteSpan;

    fn session() -> FormatterSession {
        let mut s = FormatterSession::new(ObjectId::new(9));
        s.datadir_mut()
            .insert_local("xray", DataPayload::image(&Bitmap::new(120, 90)), DataStatus::Final)
            .unwrap();
        s.datadir_mut()
            .insert_archiver_ref("old-film", DataKind::Image, ByteSpan::at(77_000, 4_096))
            .unwrap();
        s.set_synthesis(
            "@object report\n@mode visual\n@attr author jones\n\
             .ch Findings\nA shadow appears on the film.\n@data xray\n\
             Compare with the previous film.\n@data old-film\n@data xray\n",
        )
        .unwrap();
        s
    }

    #[test]
    fn build_produces_descriptor_and_composition() {
        let file = session().build().unwrap();
        assert_eq!(file.descriptor.name, "report");
        assert_eq!(file.descriptor.driving_mode, DrivingMode::Visual);
        assert_eq!(file.descriptor.attributes.len(), 1);
        // Items: markup, xray, markup, old-film, xray.
        assert_eq!(file.descriptor.entries.len(), 5);
        assert_eq!(file.descriptor.entries[1].tag, "xray");
        assert!(matches!(file.descriptor.entries[1].location, DataLocation::Composition(_)));
        assert!(matches!(file.descriptor.entries[3].location, DataLocation::Archiver(_)));
    }

    #[test]
    fn repeated_data_ref_shares_one_copy() {
        let file = session().build().unwrap();
        let first = file.descriptor.entries[1].location.span();
        let second = file.descriptor.entries[4].location.span();
        assert_eq!(first, second, "x-ray stored once, referenced twice");
        // Composition holds exactly one copy of the image payload.
        let img_len = DataPayload::image(&Bitmap::new(120, 90)).len();
        let markup_len: u64 = file
            .descriptor
            .entries
            .iter()
            .filter(|e| e.kind == DataKind::Text)
            .map(|e| e.location.span().len())
            .sum();
        assert_eq!(file.composition.len(), img_len + markup_len);
    }

    #[test]
    fn composition_data_reads_back() {
        let file = session().build().unwrap();
        let entry = file.descriptor.entry("xray").unwrap();
        let bytes = file.composition.read(entry.location.span()).unwrap();
        let payload = DataPayload { kind: DataKind::Image, bytes: bytes.to_vec() };
        assert_eq!(payload.as_image().unwrap().size(), minos_types::Size::new(120, 90));
    }

    #[test]
    fn unknown_data_tag_fails_build() {
        let mut s = FormatterSession::new(ObjectId::new(1));
        s.set_synthesis("@object x\n@data ghost\n").unwrap();
        assert!(matches!(s.build(), Err(MinosError::UnknownComponent(_))));
    }

    #[test]
    fn draft_data_fails_build() {
        let mut s = FormatterSession::new(ObjectId::new(1));
        s.datadir_mut()
            .insert_local("wip", DataPayload::text("unfinished"), DataStatus::Draft)
            .unwrap();
        s.set_synthesis("@object x\n@data wip\n").unwrap();
        assert!(matches!(s.build(), Err(MinosError::WrongState(_))));
        // Finalizing unblocks the build.
        let mut s2 = s.clone();
        s2.datadir_mut().finalize("wip").unwrap();
        assert!(s2.build().is_ok());
    }

    #[test]
    fn set_synthesis_rejects_bad_source_and_keeps_old() {
        let mut s = session();
        let before = s.synthesis_source().to_string();
        assert!(s.set_synthesis("no object line").is_err());
        assert_eq!(s.synthesis_source(), before);
    }

    #[test]
    fn preview_reflects_edits_immediately() {
        let mut s = session();
        let cfg = PaginateConfig::default();
        let before = s.preview(cfg).unwrap().page_count();
        // Append many paragraphs; the preview grows.
        let mut longer = s.synthesis_source().to_string();
        for i in 0..120 {
            longer.push_str(&format!(
                ".pp\nAdditional observation number {i} with enough words to fill lines of text.\n"
            ));
        }
        s.set_synthesis(&longer).unwrap();
        let after = s.preview(cfg).unwrap().page_count();
        assert!(after > before, "preview did not grow: {before} -> {after}");
    }

    #[test]
    fn preview_places_image_figures() {
        let s = session();
        let form = s.preview(PaginateConfig::default()).unwrap();
        let has_figure = form.pages().iter().any(|p| {
            p.elements.iter().any(|e| matches!(e, minos_text::PageElement::Figure { .. }))
        });
        assert!(has_figure);
    }

    #[test]
    fn voice_refs_have_no_visual_preview() {
        let mut s = FormatterSession::new(ObjectId::new(2));
        s.datadir_mut()
            .insert_local("memo", DataPayload::voice(&[0; 64], 8_000), DataStatus::Final)
            .unwrap();
        s.set_synthesis("@object m\n@mode audio\n@data memo\n").unwrap();
        let form = s.preview(PaginateConfig::default()).unwrap();
        assert_eq!(form.page_count(), 0);
        let file = s.build().unwrap();
        assert_eq!(file.descriptor.entries.len(), 1);
        assert_eq!(file.descriptor.entries[0].kind, DataKind::Voice);
    }
}
