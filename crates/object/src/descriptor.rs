//! The object descriptor.
//!
//! "The data interrelationships that are useful for multimedia object
//! presentation and browsing are encoded within the multimedia object
//! descriptor. The presentation manager uses the descriptor in order to
//! navigate through various parts of an object during browsing. … Thus the
//! object descriptor points either to offsets within the composition file
//! or to offsets within the archiver." (§4)
//!
//! The descriptor is a *byte format* (archived objects are "the object
//! descriptor concatenated with the composition file"), so this module
//! defines its binary encoding with full round-trip tests.

use crate::model::DrivingMode;
use crate::payload::DataKind;
use minos_types::{ByteSpan, Decoder, Encoder, MinosError, ObjectId, Result};

/// Magic prefix of an encoded descriptor.
pub const DESCRIPTOR_MAGIC: &[u8; 4] = b"MNOS";
/// Current descriptor format version.
pub const DESCRIPTOR_VERSION: u8 = 1;

/// Where a piece of the object's data lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataLocation {
    /// Offsets within the object's own composition file.
    Composition(ByteSpan),
    /// Offsets within the archiver ("so that data duplication is avoided",
    /// §4 — shared data is stored once and pointed to).
    Archiver(ByteSpan),
}

impl DataLocation {
    /// The byte span regardless of where it points.
    pub fn span(&self) -> ByteSpan {
        match self {
            DataLocation::Composition(s) | DataLocation::Archiver(s) => *s,
        }
    }

    /// Whether this is an archiver pointer.
    pub fn is_archiver(&self) -> bool {
        matches!(self, DataLocation::Archiver(_))
    }
}

/// One entry of the descriptor's part table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DescriptorEntry {
    /// The data tag the synthesis file used for this part.
    pub tag: String,
    /// Media kind.
    pub kind: DataKind,
    /// Where the final-form bytes live.
    pub location: DataLocation,
}

/// The binary object descriptor.
#[derive(Clone, PartialEq, Debug)]
pub struct ObjectDescriptor {
    /// The object's unique identifier.
    pub object_id: ObjectId,
    /// Object name.
    pub name: String,
    /// Driving mode of the object.
    pub driving_mode: DrivingMode,
    /// Attribute name/value pairs.
    pub attributes: Vec<(String, String)>,
    /// Part table, in presentation order.
    pub entries: Vec<DescriptorEntry>,
}

impl ObjectDescriptor {
    /// Encodes the descriptor to its archival byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64 + self.entries.len() * 24);
        e.put_raw(DESCRIPTOR_MAGIC);
        e.put_u8(DESCRIPTOR_VERSION);
        e.put_u64(self.object_id.raw());
        e.put_u8(match self.driving_mode {
            DrivingMode::Visual => 0,
            DrivingMode::Audio => 1,
        });
        e.put_str(&self.name);
        e.put_varint(self.attributes.len() as u64);
        for (name, value) in &self.attributes {
            e.put_str(name);
            e.put_str(value);
        }
        e.put_varint(self.entries.len() as u64);
        for entry in &self.entries {
            e.put_str(&entry.tag);
            e.put_u8(entry.kind.tag());
            let (loc_tag, span) = match entry.location {
                DataLocation::Composition(s) => (0u8, s),
                DataLocation::Archiver(s) => (1u8, s),
            };
            e.put_u8(loc_tag);
            e.put_varint(span.start);
            e.put_varint(span.end);
        }
        e.finish()
    }

    /// Decodes a descriptor, verifying magic, version and span sanity.
    pub fn decode(bytes: &[u8]) -> Result<ObjectDescriptor> {
        let mut d = Decoder::new(bytes);
        let magic = d.get_raw(4)?;
        if magic != DESCRIPTOR_MAGIC {
            return Err(MinosError::Codec("bad descriptor magic".into()));
        }
        let version = d.get_u8()?;
        if version != DESCRIPTOR_VERSION {
            return Err(MinosError::Codec(format!("unsupported descriptor version {version}")));
        }
        let object_id = ObjectId::new(d.get_u64()?);
        let driving_mode = match d.get_u8()? {
            0 => DrivingMode::Visual,
            1 => DrivingMode::Audio,
            other => return Err(MinosError::Codec(format!("bad driving mode {other}"))),
        };
        let name = d.get_str()?;
        // Element counts go through `get_len`, bounding them against the
        // remaining input before any allocation (every element costs at
        // least one byte).
        let n_attrs = d.get_len()?;
        let mut attributes = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attributes.push((d.get_str()?, d.get_str()?));
        }
        let n_entries = d.get_len()?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let tag = d.get_str()?;
            let kind = DataKind::from_tag(d.get_u8()?)?;
            let loc_tag = d.get_u8()?;
            let start = d.get_varint()?;
            let end = d.get_varint()?;
            if start > end {
                return Err(MinosError::Codec(format!("inverted span {start}..{end}")));
            }
            let span = ByteSpan::new(start, end);
            let location = match loc_tag {
                0 => DataLocation::Composition(span),
                1 => DataLocation::Archiver(span),
                other => return Err(MinosError::Codec(format!("bad location tag {other}"))),
            };
            entries.push(DescriptorEntry { tag, kind, location });
        }
        d.expect_end()?;
        Ok(ObjectDescriptor { object_id, name, driving_mode, attributes, entries })
    }

    /// Looks up an entry by its data tag.
    pub fn entry(&self, tag: &str) -> Option<&DescriptorEntry> {
        self.entries.iter().find(|e| e.tag == tag)
    }

    /// Entries of a given media kind, in presentation order.
    pub fn entries_of_kind(&self, kind: DataKind) -> impl Iterator<Item = &DescriptorEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// The archival transform: "the offsets of the descriptor have to be
    /// incremented by the offset where the composition file is placed
    /// within the archiver" (§4). Composition pointers become archiver
    /// pointers at `composition_base`; existing archiver pointers are
    /// untouched.
    pub fn rebased_for_archive(&self, composition_base: u64) -> ObjectDescriptor {
        let mut out = self.clone();
        for entry in &mut out.entries {
            if let DataLocation::Composition(span) = entry.location {
                entry.location = DataLocation::Archiver(span.rebased(composition_base));
            }
        }
        out
    }

    /// Total bytes of data the descriptor points at (composition +
    /// archiver).
    pub fn total_data_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.location.span().len()).sum()
    }

    /// Bytes referenced in the archiver rather than carried in the
    /// composition file — the sharing the paper's "data duplication is
    /// avoided" refers to.
    pub fn shared_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.location.is_archiver())
            .map(|e| e.location.span().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> ObjectDescriptor {
        ObjectDescriptor {
            object_id: ObjectId::new(42),
            name: "patient report".into(),
            driving_mode: DrivingMode::Audio,
            attributes: vec![
                ("author".into(), "dr. jones".into()),
                ("date".into(), "1986-05-28".into()),
            ],
            entries: vec![
                DescriptorEntry {
                    tag: "dictation".into(),
                    kind: DataKind::Voice,
                    location: DataLocation::Composition(ByteSpan::at(0, 8_000)),
                },
                DescriptorEntry {
                    tag: "xray".into(),
                    kind: DataKind::Image,
                    location: DataLocation::Archiver(ByteSpan::at(1_000_000, 50_000)),
                },
                DescriptorEntry {
                    tag: "notes".into(),
                    kind: DataKind::Text,
                    location: DataLocation::Composition(ByteSpan::at(8_000, 300)),
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let desc = sample();
        let bytes = desc.encode();
        assert_eq!(&bytes[..4], DESCRIPTOR_MAGIC);
        let back = ObjectDescriptor::decode(&bytes).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(ObjectDescriptor::decode(&bytes).is_err());
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert!(ObjectDescriptor::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_descriptor_rejected() {
        let bytes = sample().encode();
        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(ObjectDescriptor::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(ObjectDescriptor::decode(&bytes).is_err());
    }

    #[test]
    fn entry_lookup() {
        let desc = sample();
        assert_eq!(desc.entry("xray").unwrap().kind, DataKind::Image);
        assert!(desc.entry("absent").is_none());
        assert_eq!(desc.entries_of_kind(DataKind::Text).count(), 1);
        assert_eq!(desc.entries_of_kind(DataKind::Voice).count(), 1);
    }

    #[test]
    fn rebase_converts_composition_pointers_only() {
        let desc = sample();
        let rebased = desc.rebased_for_archive(500_000);
        assert_eq!(
            rebased.entry("dictation").unwrap().location,
            DataLocation::Archiver(ByteSpan::at(500_000, 8_000))
        );
        assert_eq!(
            rebased.entry("notes").unwrap().location,
            DataLocation::Archiver(ByteSpan::at(508_000, 300))
        );
        // Pre-existing archiver pointer untouched.
        assert_eq!(
            rebased.entry("xray").unwrap().location,
            DataLocation::Archiver(ByteSpan::at(1_000_000, 50_000))
        );
    }

    #[test]
    fn byte_accounting() {
        let desc = sample();
        assert_eq!(desc.total_data_bytes(), 8_000 + 50_000 + 300);
        assert_eq!(desc.shared_bytes(), 50_000);
    }

    #[test]
    fn empty_descriptor_round_trips() {
        let desc = ObjectDescriptor {
            object_id: ObjectId::new(0),
            name: String::new(),
            driving_mode: DrivingMode::Visual,
            attributes: vec![],
            entries: vec![],
        };
        assert_eq!(ObjectDescriptor::decode(&desc.encode()).unwrap(), desc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn descriptor_round_trips_arbitrary(
            id in any::<u64>(),
            name in ".{0,24}",
            audio in any::<bool>(),
            attrs in proptest::collection::vec((".{0,8}", ".{0,8}"), 0..4),
            entries in proptest::collection::vec(
                (".{0,8}", 1u8..4, any::<bool>(), 0u64..1_000_000, 0u64..1_000_000),
                0..8,
            ),
        ) {
            let desc = ObjectDescriptor {
                object_id: ObjectId::new(id),
                name,
                driving_mode: if audio { DrivingMode::Audio } else { DrivingMode::Visual },
                attributes: attrs,
                entries: entries
                    .into_iter()
                    .map(|(tag, kind, arch, a, b)| {
                        let span = ByteSpan::new(a.min(b), a.max(b));
                        DescriptorEntry {
                            tag,
                            kind: DataKind::from_tag(kind).unwrap(),
                            location: if arch {
                                DataLocation::Archiver(span)
                            } else {
                                DataLocation::Composition(span)
                            },
                        }
                    })
                    .collect(),
            };
            prop_assert_eq!(ObjectDescriptor::decode(&desc.encode()).unwrap(), desc);
        }

        #[test]
        fn decode_never_panics_on_garbage(mut bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Make some inputs start with valid magic to reach deeper code.
            if bytes.len() >= 5 {
                bytes[..4].copy_from_slice(DESCRIPTOR_MAGIC);
                bytes[4] = DESCRIPTOR_VERSION;
            }
            let _ = ObjectDescriptor::decode(&bytes);
        }
    }
}
