//! The synthesis-file language.
//!
//! "The object formation process starts when the user creates the synthesis
//! file. The synthesis file contains information about the presentation
//! form of the multimedia object, tags with the names of various data
//! files, and possibly text (this will typically be the case for visual
//! mode objects)." (§4)
//!
//! Grammar (line oriented, extending the `minos-text` markup):
//!
//! | Line | Meaning |
//! |---|---|
//! | `@object <name>` | object name (required, first non-blank line) |
//! | `@mode visual\|audio` | driving mode (default visual) |
//! | `@attr <name> <value…>` | an attribute |
//! | `@data <tag>` | splice the named data file at this point |
//! | anything else | markup text passed to the text formatter |

use crate::model::DrivingMode;
use minos_types::{MinosError, Result};

/// One ordered item of the synthesis file body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SynthesisItem {
    /// A run of markup source lines (joined with newlines).
    Markup(String),
    /// A reference to a data file by tag.
    DataRef(String),
}

/// A parsed synthesis file.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthesisFile {
    /// Object name.
    pub name: String,
    /// Driving mode.
    pub mode: DrivingMode,
    /// Attributes in order of appearance.
    pub attributes: Vec<(String, String)>,
    /// The body: markup runs and data references, in presentation order.
    pub items: Vec<SynthesisItem>,
}

impl SynthesisFile {
    /// Parses synthesis source.
    pub fn parse(source: &str) -> Result<SynthesisFile> {
        let mut name: Option<String> = None;
        let mut mode = DrivingMode::Visual;
        let mut attributes = Vec::new();
        let mut items: Vec<SynthesisItem> = Vec::new();
        let mut markup_run: Vec<&str> = Vec::new();

        let flush_markup = |items: &mut Vec<SynthesisItem>, run: &mut Vec<&str>| {
            if !run.is_empty() {
                let text = run.join("\n");
                if !text.trim().is_empty() {
                    items.push(SynthesisItem::Markup(text));
                }
                run.clear();
            }
        };

        for (lineno0, line) in source.lines().enumerate() {
            let lineno = lineno0 as u32 + 1;
            if let Some(body) = line.strip_prefix('@') {
                flush_markup(&mut items, &mut markup_run);
                let mut parts = body.splitn(2, char::is_whitespace);
                let directive = parts.next().unwrap_or("");
                let arg = parts.next().unwrap_or("").trim();
                match directive {
                    "object" => {
                        if arg.is_empty() {
                            return Err(MinosError::parse(lineno, "@object requires a name"));
                        }
                        if name.is_some() {
                            return Err(MinosError::parse(lineno, "duplicate @object"));
                        }
                        name = Some(arg.to_string());
                    }
                    "mode" => {
                        mode = match arg {
                            "visual" => DrivingMode::Visual,
                            "audio" => DrivingMode::Audio,
                            other => {
                                return Err(MinosError::parse(
                                    lineno,
                                    format!("mode must be visual or audio, got {other:?}"),
                                ))
                            }
                        };
                    }
                    "attr" => {
                        let mut kv = arg.splitn(2, char::is_whitespace);
                        let key = kv.next().unwrap_or("");
                        let value = kv.next().unwrap_or("").trim();
                        if key.is_empty() || value.is_empty() {
                            return Err(MinosError::parse(lineno, "@attr requires name and value"));
                        }
                        attributes.push((key.to_string(), value.to_string()));
                    }
                    "data" => {
                        if arg.is_empty() || arg.contains(char::is_whitespace) {
                            return Err(MinosError::parse(lineno, "@data requires a single tag"));
                        }
                        items.push(SynthesisItem::DataRef(arg.to_string()));
                    }
                    other => {
                        return Err(MinosError::parse(
                            lineno,
                            format!("unknown directive @{other}"),
                        ))
                    }
                }
            } else {
                markup_run.push(line);
            }
        }
        flush_markup(&mut items, &mut markup_run);

        let name = name.ok_or_else(|| MinosError::parse(1, "synthesis file needs @object"))?;
        Ok(SynthesisFile { name, mode, attributes, items })
    }

    /// All data tags referenced, in order (with duplicates — a tag may be
    /// spliced at several points, which is exactly how the x-ray of Figures
    /// 3–4 appears on every related page while being "only stored once").
    pub fn data_refs(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                SynthesisItem::DataRef(tag) => Some(tag.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
@object patient-2291
@mode visual
@attr author dr-jones
@attr date 1986-05-28
.ti Examination Report
.ch Findings
The film shows a small shadow.
@data xray
Further observations below the film.
@data xray
.ch Conclusion
Benign.
";

    #[test]
    fn parses_header_and_items() {
        let s = SynthesisFile::parse(SAMPLE).unwrap();
        assert_eq!(s.name, "patient-2291");
        assert_eq!(s.mode, DrivingMode::Visual);
        assert_eq!(s.attributes.len(), 2);
        assert_eq!(s.attributes[0], ("author".into(), "dr-jones".into()));
        // markup, data, markup, data, markup
        assert_eq!(s.items.len(), 5);
        assert!(matches!(&s.items[0], SynthesisItem::Markup(m) if m.contains(".ti")));
        assert!(matches!(&s.items[1], SynthesisItem::DataRef(t) if t == "xray"));
    }

    #[test]
    fn repeated_data_tags_are_allowed() {
        let s = SynthesisFile::parse(SAMPLE).unwrap();
        assert_eq!(s.data_refs(), vec!["xray", "xray"]);
    }

    #[test]
    fn audio_mode() {
        let s = SynthesisFile::parse("@object memo\n@mode audio\n@data dictation\n").unwrap();
        assert_eq!(s.mode, DrivingMode::Audio);
        assert_eq!(s.data_refs(), vec!["dictation"]);
    }

    #[test]
    fn missing_object_name_is_error() {
        assert!(SynthesisFile::parse("some text\n").is_err());
        assert!(SynthesisFile::parse("@object\n").is_err());
    }

    #[test]
    fn duplicate_object_is_error() {
        assert!(SynthesisFile::parse("@object a\n@object b\n").is_err());
    }

    #[test]
    fn bad_directives_are_errors() {
        assert!(SynthesisFile::parse("@object a\n@mode paper\n").is_err());
        assert!(SynthesisFile::parse("@object a\n@attr only-key\n").is_err());
        assert!(SynthesisFile::parse("@object a\n@data two tags\n").is_err());
        assert!(SynthesisFile::parse("@object a\n@wat\n").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = SynthesisFile::parse("@object a\nfine text\n@data\n").unwrap_err();
        assert!(matches!(err, MinosError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn whitespace_only_markup_is_dropped() {
        let s = SynthesisFile::parse("@object a\n\n   \n@data x\n").unwrap();
        assert_eq!(s.items.len(), 1);
    }

    #[test]
    fn markup_runs_preserve_line_structure() {
        let s = SynthesisFile::parse("@object a\n.ch One\nline a\nline b\n").unwrap();
        match &s.items[0] {
            SynthesisItem::Markup(m) => {
                assert_eq!(m, ".ch One\nline a\nline b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
