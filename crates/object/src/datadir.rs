//! The data directory file of an editing-state object.
//!
//! "The data directory file contains information about the various data
//! files as well as about data in the archiver that have been extracted but
//! not copied. Such information is the name, type, location, length, and
//! status of data. The status information describes if the data in a
//! particular file is in its final form which is to be used for archiving
//! or mailing." (§4)

use crate::payload::{DataKind, DataPayload};
use minos_types::{ByteSpan, MinosError, Result};
use std::collections::BTreeMap;

/// Whether a data file is ready for archiving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataStatus {
    /// Still being edited; not acceptable to the archiver ("the
    /// presentation interface of the archiver expects always the data in
    /// its final form").
    Draft,
    /// Final, device-independent form.
    Final,
}

/// Where an entry's data currently is.
#[derive(Clone, PartialEq, Debug)]
pub enum DataHome {
    /// A local data file within the multimedia object file, holding the
    /// payload.
    Local(DataPayload),
    /// Data that exists in the archiver and has been referenced but not
    /// copied.
    Archiver(ByteSpan),
}

/// One entry of the data directory.
#[derive(Clone, PartialEq, Debug)]
pub struct DataEntry {
    /// The tag the synthesis file refers to this data by.
    pub tag: String,
    /// Media kind.
    pub kind: DataKind,
    /// Where the data lives.
    pub home: DataHome,
    /// Editing status.
    pub status: DataStatus,
}

impl DataEntry {
    /// Length in bytes of the data (local payload length or archiver span
    /// length).
    pub fn len(&self) -> u64 {
        match &self.home {
            DataHome::Local(p) => p.len(),
            DataHome::Archiver(span) => span.len(),
        }
    }

    /// Whether the entry holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The data directory: tag → entry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataDirectory {
    entries: BTreeMap<String, DataEntry>,
}

impl DataDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a local data file. Errors if the tag is taken.
    pub fn insert_local(
        &mut self,
        tag: impl Into<String>,
        payload: DataPayload,
        status: DataStatus,
    ) -> Result<()> {
        let tag = tag.into();
        self.insert(DataEntry { tag, kind: payload.kind, home: DataHome::Local(payload), status })
    }

    /// Registers a reference to archiver-resident data (extracted but not
    /// copied). Archiver data is always final form.
    pub fn insert_archiver_ref(
        &mut self,
        tag: impl Into<String>,
        kind: DataKind,
        span: ByteSpan,
    ) -> Result<()> {
        let tag = tag.into();
        self.insert(DataEntry {
            tag,
            kind,
            home: DataHome::Archiver(span),
            status: DataStatus::Final,
        })
    }

    fn insert(&mut self, entry: DataEntry) -> Result<()> {
        if self.entries.contains_key(&entry.tag) {
            return Err(MinosError::WrongState(format!("data tag {:?} already exists", entry.tag)));
        }
        self.entries.insert(entry.tag.clone(), entry);
        Ok(())
    }

    /// Looks up an entry by tag.
    pub fn get(&self, tag: &str) -> Option<&DataEntry> {
        self.entries.get(tag)
    }

    /// Marks a draft entry final (e.g. "when the editing of an image is
    /// completed its archival form … is produced", §4).
    pub fn finalize(&mut self, tag: &str) -> Result<()> {
        let entry = self
            .entries
            .get_mut(tag)
            .ok_or_else(|| MinosError::UnknownComponent(format!("data tag {tag:?}")))?;
        entry.status = DataStatus::Final;
        Ok(())
    }

    /// Replaces a local entry's payload (an edit), resetting it to draft.
    pub fn update_local(&mut self, tag: &str, payload: DataPayload) -> Result<()> {
        let entry = self
            .entries
            .get_mut(tag)
            .ok_or_else(|| MinosError::UnknownComponent(format!("data tag {tag:?}")))?;
        if matches!(entry.home, DataHome::Archiver(_)) {
            return Err(MinosError::WrongState(format!(
                "data tag {tag:?} is archiver-resident and immutable"
            )));
        }
        entry.kind = payload.kind;
        entry.home = DataHome::Local(payload);
        entry.status = DataStatus::Draft;
        Ok(())
    }

    /// All entries in tag order.
    pub fn entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Errors unless every entry is in final form — the archiver's
    /// precondition.
    pub fn ensure_all_final(&self) -> Result<()> {
        for e in self.entries.values() {
            if e.status != DataStatus::Final {
                return Err(MinosError::WrongState(format!(
                    "data tag {:?} is still in draft form",
                    e.tag
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> DataDirectory {
        let mut d = DataDirectory::new();
        d.insert_local("notes", DataPayload::text("hello world"), DataStatus::Final).unwrap();
        d.insert_local(
            "draft-img",
            DataPayload::image(&minos_image::Bitmap::new(8, 8)),
            DataStatus::Draft,
        )
        .unwrap();
        d.insert_archiver_ref("xray", DataKind::Image, ByteSpan::at(9_000, 1_234)).unwrap();
        d
    }

    #[test]
    fn insert_and_lookup() {
        let d = dir();
        assert_eq!(d.len(), 3);
        assert_eq!(d.get("notes").unwrap().kind, DataKind::Text);
        assert_eq!(d.get("xray").unwrap().len(), 1_234);
        assert!(d.get("nope").is_none());
    }

    #[test]
    fn duplicate_tags_rejected() {
        let mut d = dir();
        assert!(d.insert_local("notes", DataPayload::text("x"), DataStatus::Draft).is_err());
        assert!(d.insert_archiver_ref("xray", DataKind::Image, ByteSpan::at(0, 1)).is_err());
    }

    #[test]
    fn finalize_flow() {
        let mut d = dir();
        assert!(d.ensure_all_final().is_err(), "draft-img blocks archiving");
        d.finalize("draft-img").unwrap();
        d.ensure_all_final().unwrap();
        assert!(d.finalize("missing").is_err());
    }

    #[test]
    fn update_resets_to_draft() {
        let mut d = dir();
        d.update_local("notes", DataPayload::text("edited")).unwrap();
        assert_eq!(d.get("notes").unwrap().status, DataStatus::Draft);
        match &d.get("notes").unwrap().home {
            DataHome::Local(p) => assert_eq!(p.as_text().unwrap(), "edited"),
            _ => panic!("expected local"),
        }
    }

    #[test]
    fn archiver_entries_are_immutable() {
        let mut d = dir();
        assert!(d.update_local("xray", DataPayload::text("nope")).is_err());
        assert!(d.update_local("ghost", DataPayload::text("nope")).is_err());
    }

    #[test]
    fn entries_iterate_in_tag_order() {
        let d = dir();
        let tags: Vec<&str> = d.entries().map(|e| e.tag.as_str()).collect();
        assert_eq!(tags, vec!["draft-img", "notes", "xray"]);
    }

    #[test]
    fn empty_directory() {
        let d = DataDirectory::new();
        assert!(d.is_empty());
        d.ensure_all_final().unwrap(); // vacuously final
    }
}
