//! The inverted index over object content.
//!
//! Content addressability in MINOS is word-granular and media-blind: text
//! words, recognized voice utterances and image-label text all land in one
//! index, so "retrieving objects based on content" (§2) works the same way
//! whatever medium carried the information. Voice coverage is only as good
//! as the recognizer's output — which is exactly what experiment E4
//! measures.

use minos_object::MultimediaObject;
use minos_text::search::normalize_word;
use minos_types::ObjectId;
use std::collections::{BTreeSet, HashMap};

/// Word → ids of objects containing it.
#[derive(Clone, Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, BTreeSet<ObjectId>>,
    attributes: HashMap<(String, String), BTreeSet<ObjectId>>,
    indexed_objects: BTreeSet<ObjectId>,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn post(&mut self, word: &str, id: ObjectId) {
        let w = normalize_word(word);
        if !w.is_empty() {
            self.postings.entry(w).or_default().insert(id);
        }
    }

    /// Indexes everything searchable in `obj`: every text-segment word,
    /// every recognized utterance of every voice segment, and every
    /// graphics label (text labels and voice-label transcripts).
    pub fn index_object(&mut self, obj: &MultimediaObject) {
        let id = obj.id;
        self.indexed_objects.insert(id);
        for doc in &obj.text_segments {
            for span in &doc.tree().words {
                self.post(&doc.slice(*span), id);
            }
        }
        for seg in &obj.voice_segments {
            for utterance in &seg.utterances {
                self.post(&utterance.word, id);
            }
        }
        for image in &obj.images {
            if let Some(g) = image.as_graphics() {
                for object in &g.objects {
                    if let Some(label) = &object.label {
                        for word in label.content.searchable_text().split_whitespace() {
                            self.post(word, id);
                        }
                    }
                }
            }
        }
        for attr in &obj.attributes {
            for word in attr.value.split_whitespace() {
                self.post(word, id);
            }
            self.attributes
                .entry((attr.name.to_lowercase(), attr.value.to_lowercase()))
                .or_default()
                .insert(id);
        }
    }

    /// Exact attribute query: ids of objects carrying attribute
    /// `name = value` (case-insensitive), ascending.
    pub fn query_attribute(&self, name: &str, value: &str) -> Vec<ObjectId> {
        self.attributes
            .get(&(name.to_lowercase(), value.to_lowercase()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Conjunctive keyword query: ids of objects containing *all*
    /// keywords, ascending. An empty keyword list matches nothing (the
    /// query interface requires at least one term).
    pub fn query(&self, keywords: &[String]) -> Vec<ObjectId> {
        if keywords.is_empty() {
            return Vec::new();
        }
        let mut result: Option<BTreeSet<ObjectId>> = None;
        for keyword in keywords {
            let w = normalize_word(keyword);
            let posting = self.postings.get(&w).cloned().unwrap_or_default();
            result = Some(match result {
                None => posting,
                Some(acc) => acc.intersection(&posting).copied().collect(),
            });
            if result.as_ref().map(|s| s.is_empty()).unwrap_or(false) {
                break;
            }
        }
        result.unwrap_or_default().into_iter().collect()
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Number of objects indexed.
    pub fn object_count(&self) -> usize {
        self.indexed_objects.len()
    }

    /// Whether `id` was indexed.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.indexed_objects.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_image::{GraphicsImage, GraphicsObject, Image, Label, LabelContent, Shape};
    use minos_object::{DrivingMode, VoiceSegment};
    use minos_types::Point;
    use minos_voice::recognize::{Recognizer, RecognizerConfig};
    use minos_voice::synth::SpeakerProfile;

    fn text_object(id: u64, text: &str) -> MultimediaObject {
        let mut obj = MultimediaObject::new(ObjectId::new(id), "doc", DrivingMode::Visual);
        obj.text_segments.push(minos_text::parse_markup(&format!("{text}\n")).unwrap());
        obj
    }

    #[test]
    fn text_words_are_indexed() {
        let mut idx = InvertedIndex::new();
        idx.index_object(&text_object(1, "the x-ray shows a shadow"));
        idx.index_object(&text_object(2, "the report is clean"));
        assert_eq!(idx.query(&["shadow".into()]), vec![ObjectId::new(1)]);
        assert_eq!(idx.query(&["the".into()]).len(), 2);
        assert!(idx.query(&["absent".into()]).is_empty());
        assert_eq!(idx.object_count(), 2);
        assert!(idx.contains(ObjectId::new(1)));
    }

    #[test]
    fn conjunctive_queries_intersect() {
        let mut idx = InvertedIndex::new();
        idx.index_object(&text_object(1, "optical disk storage"));
        idx.index_object(&text_object(2, "optical character recognition"));
        assert_eq!(idx.query(&["optical".into(), "disk".into()]), vec![ObjectId::new(1)]);
        assert_eq!(idx.query(&["optical".into()]).len(), 2);
        assert!(idx.query(&["optical".into(), "nothing".into()]).is_empty());
    }

    #[test]
    fn empty_query_matches_nothing() {
        let mut idx = InvertedIndex::new();
        idx.index_object(&text_object(1, "anything"));
        assert!(idx.query(&[]).is_empty());
    }

    #[test]
    fn query_normalizes_keywords() {
        let mut idx = InvertedIndex::new();
        idx.index_object(&text_object(1, "The Shadow appears."));
        assert_eq!(idx.query(&["SHADOW".into()]), vec![ObjectId::new(1)]);
        assert_eq!(idx.query(&["shadow.".into()]), vec![ObjectId::new(1)]);
    }

    #[test]
    fn recognized_utterances_are_indexed() {
        let mut obj = MultimediaObject::new(ObjectId::new(3), "memo", DrivingMode::Audio);
        let recognizer = Recognizer::new(
            ["budget"],
            RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 0 },
        );
        obj.voice_segments.push(
            VoiceSegment::dictate("the budget meeting is tuesday", &SpeakerProfile::CLEAR, 4)
                .with_recognition(&recognizer),
        );
        let mut idx = InvertedIndex::new();
        idx.index_object(&obj);
        assert_eq!(idx.query(&["budget".into()]), vec![ObjectId::new(3)]);
        // Unrecognized spoken words are invisible to content search.
        assert!(idx.query(&["tuesday".into()]).is_empty());
    }

    #[test]
    fn image_labels_are_indexed() {
        let mut g = GraphicsImage::new(100, 100);
        g.push(GraphicsObject::new(Shape::Point(Point::new(5, 5))).with_label(Label {
            content: LabelContent::Text("General Hospital".into()),
            anchor: Point::new(5, 5),
            visible: true,
        }));
        g.push(GraphicsObject::new(Shape::Point(Point::new(9, 9))).with_label(Label {
            content: LabelContent::Voice { tag: "v".into(), transcript: "city hall".into() },
            anchor: Point::new(9, 9),
            visible: true,
        }));
        let mut obj = MultimediaObject::new(ObjectId::new(4), "map", DrivingMode::Visual);
        obj.images.push(Image::Graphics(g));
        let mut idx = InvertedIndex::new();
        idx.index_object(&obj);
        assert_eq!(idx.query(&["hospital".into()]), vec![ObjectId::new(4)]);
        assert_eq!(idx.query(&["hall".into()]), vec![ObjectId::new(4)]);
    }

    #[test]
    fn attributes_are_indexed() {
        let mut obj = text_object(5, "body");
        obj.attributes.push(minos_object::Attribute {
            name: "author".into(),
            value: "christodoulakis".into(),
        });
        let mut idx = InvertedIndex::new();
        idx.index_object(&obj);
        assert_eq!(idx.query(&["christodoulakis".into()]), vec![ObjectId::new(5)]);
    }

    #[test]
    fn attribute_queries_match_exactly_and_case_insensitively() {
        let mut a = text_object(6, "body");
        a.attributes
            .push(minos_object::Attribute { name: "author".into(), value: "Doctor Jones".into() });
        let mut b = text_object(7, "body");
        b.attributes
            .push(minos_object::Attribute { name: "author".into(), value: "doctor smith".into() });
        let mut idx = InvertedIndex::new();
        idx.index_object(&a);
        idx.index_object(&b);
        assert_eq!(idx.query_attribute("Author", "doctor jones"), vec![ObjectId::new(6)]);
        assert_eq!(idx.query_attribute("author", "doctor smith"), vec![ObjectId::new(7)]);
        assert!(idx.query_attribute("author", "doctor").is_empty(), "exact match only");
        assert!(idx.query_attribute("date", "doctor jones").is_empty());
    }

    #[test]
    fn vocabulary_grows_with_content() {
        let mut idx = InvertedIndex::new();
        assert_eq!(idx.vocabulary_size(), 0);
        idx.index_object(&text_object(1, "alpha beta gamma"));
        assert_eq!(idx.vocabulary_size(), 3);
        idx.index_object(&text_object(2, "alpha delta"));
        assert_eq!(idx.vocabulary_size(), 4);
    }
}
