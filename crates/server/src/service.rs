//! The queued, multi-connection service loop (§5).
//!
//! The blocking path handed the server one request at a time; with framed
//! transport (see [`minos_net::frame`]) the server instead *queues* request
//! frames from many connections and serves them in connection-fair
//! round-robin order. Adjacent span fetches queued by one connection — the
//! anticipatory-prefetch shape — are still coalesced into a single device
//! read, exactly as the batch path coalesces them, so pipelining never
//! costs extra actuator seeks.
//!
//! Queues are *bounded*: admission control rejects work beyond a
//! per-connection and a global cap instead of letting an overloaded server
//! grow its backlog without limit. The shed policy is priority-ordered —
//! a speculative [`Priority::Prefetch`](minos_net::Priority) frame over
//! the cap is dropped with a [`ServerResponse::Busy`] reply, while an
//! audio or demand frame arriving at a full queue first evicts a queued
//! prefetch to make room and is only rejected when no prefetch remains
//! sheddable. Speculation is the first thing sacrificed under overload;
//! the work a user is waiting on is the last.
//!
//! This module holds the queue and its accounting; the serving itself
//! (device access, rendering) lives on
//! [`ObjectServer`](crate::server::ObjectServer), which owns the devices.

use minos_net::{Frame, ServerResponse};
use minos_types::SimDuration;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Admission-control knobs for the service queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Most request frames one connection may have queued.
    pub per_conn_cap: usize,
    /// Most request frames queued across all connections.
    pub global_cap: usize,
    /// Per-queued-frame slice used to estimate the `retry_after` hint a
    /// [`ServerResponse::Busy`] reply carries.
    pub retry_slice: SimDuration,
}

impl ServiceConfig {
    /// Default per-connection queue cap.
    pub const DEFAULT_PER_CONN_CAP: usize = 32;
    /// Default global queue cap.
    pub const DEFAULT_GLOBAL_CAP: usize = 256;
    /// Floor applied to the `retry_after` hint a `Busy` reply carries. A
    /// `retry_slice` of zero (or an idle queue at the instant of a
    /// per-connection rejection) would otherwise advertise
    /// `retry_after: 0`, inviting the client to resubmit immediately and
    /// spin against an admission gate that has not moved.
    pub const MIN_RETRY_AFTER: SimDuration = SimDuration::from_micros(50);

    /// A configuration that never rejects (the pre-admission-control
    /// behaviour, kept for the E14 "without shedding" baseline).
    pub fn unbounded() -> Self {
        ServiceConfig { per_conn_cap: usize::MAX, global_cap: usize::MAX, ..Self::default() }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            per_conn_cap: Self::DEFAULT_PER_CONN_CAP,
            global_cap: Self::DEFAULT_GLOBAL_CAP,
            retry_slice: SimDuration::from_micros(500),
        }
    }
}

/// Accounting for the queued service loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Request frames accepted into the queue.
    pub enqueued: u64,
    /// Response frames produced.
    pub served: u64,
    /// Total device time charged across all served requests.
    pub busy: SimDuration,
    /// Coalesced multi-span device reads performed.
    pub coalesced_runs: u64,
    /// Prefetch-class frames dropped by admission control (both arrivals
    /// over the cap and queued prefetches evicted for demand/audio work).
    pub shed: u64,
    /// Demand- or audio-class frames rejected because the queue was full
    /// and nothing sheddable remained.
    pub busy_rejections: u64,
    /// Most request frames ever queued at once across all connections.
    pub queue_high_water: u64,
    /// Payload-buffer pool leases served from a recycled buffer.
    pub pool_hits: u64,
    /// Payload-buffer pool leases that had to allocate fresh.
    pub pool_misses: u64,
    /// Fresh payload-buffer allocations on the serving hot path (equals
    /// `pool_misses`; kept as its own counter so reports can aggregate the
    /// transport and service sides uniformly).
    pub payload_allocs: u64,
    /// Per-connection service accounting.
    pub per_connection: BTreeMap<u64, ConnectionServiceStats>,
}

impl ServiceStats {
    /// Folds another server's accounting into this one — the fleet-wide
    /// aggregate a `Fleet` reports across its members. Counters and device
    /// time add; high-water marks take the max (each mark describes one
    /// queue's peak, and queues in different servers never share depth);
    /// per-connection entries merge by connection id.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.enqueued += other.enqueued;
        self.served += other.served;
        self.busy += other.busy;
        self.coalesced_runs += other.coalesced_runs;
        self.shed += other.shed;
        self.busy_rejections += other.busy_rejections;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.payload_allocs += other.payload_allocs;
        for (&conn, theirs) in &other.per_connection {
            let ours = self.per_connection.entry(conn).or_default();
            ours.served += theirs.served;
            ours.busy += theirs.busy;
            ours.high_water = ours.high_water.max(theirs.high_water);
        }
    }
}

/// Service accounting for one connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionServiceStats {
    /// Response frames served to this connection.
    pub served: u64,
    /// Device time spent on this connection's requests.
    pub busy: SimDuration,
    /// Most request frames this connection ever had queued at once.
    pub high_water: u64,
}

/// The connection-fair frame queue behind `ObjectServer::enqueue`/`poll`.
#[derive(Debug, Default)]
pub(crate) struct ServiceQueue {
    /// Per-connection FIFO of request frames awaiting service.
    queues: BTreeMap<u64, VecDeque<Frame>>,
    /// Round-robin rotation of connections with queued work.
    rotation: VecDeque<u64>,
    /// Served responses not yet collected, each with its device charge.
    ready: VecDeque<(Frame, SimDuration)>,
    /// Request frames queued but not yet served.
    pending: usize,
    /// Connections with server-side activity (a request admitted or a
    /// response landed) since the last wake drain — the wake list the
    /// event-driven scheduler consumes instead of polling every
    /// connection.
    woken: BTreeSet<u64>,
    config: ServiceConfig,
    stats: ServiceStats,
}

impl ServiceQueue {
    /// The admission configuration in force.
    pub(crate) fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Replaces the admission configuration; queued work is untouched (a
    /// lowered cap applies to arrivals, it does not shed the backlog).
    pub(crate) fn set_config(&mut self, config: ServiceConfig) {
        self.config = config;
    }

    /// Accepts one request frame into its connection's queue, or sheds it
    /// under the admission policy. Every frame gets exactly one response:
    /// rejected frames are answered with [`ServerResponse::Busy`] (zero
    /// device charge) through the ordinary ready queue.
    pub(crate) fn admit(&mut self, frame: Frame) {
        let conn = frame.conn_id;
        // Arrival is a wake: the event-driven scheduler must visit this
        // connection on its next pump even if nothing has landed yet.
        self.woken.insert(conn);
        let conn_full =
            self.queues.get(&conn).map(VecDeque::len).unwrap_or(0) >= self.config.per_conn_cap;
        let global_full = self.pending >= self.config.global_cap;
        if conn_full || global_full {
            // Snapshot the hint at the moment of rejection: the shed path
            // below answers *after* evicting a queued prefetch, and a hint
            // computed then would describe a queue one frame shorter than
            // the one that turned the victim away.
            let hint = self.retry_hint();
            if frame.priority.is_sheddable() {
                self.stats.shed += 1;
                self.reject(frame, hint);
                return;
            }
            // Preserve the demand/audio frame by evicting a queued
            // prefetch — from this connection if its own cap is the one
            // violated (a foreign eviction would not relieve it).
            let victim_scope = if conn_full { Some(conn) } else { None };
            match self.evict_prefetch(victim_scope) {
                Some(victim) => {
                    self.stats.shed += 1;
                    self.reject(victim, hint);
                }
                None => {
                    self.stats.busy_rejections += 1;
                    self.reject(frame, hint);
                    return;
                }
            }
        }
        self.stats.enqueued += 1;
        self.pending += 1;
        self.stats.queue_high_water = self.stats.queue_high_water.max(self.pending as u64);
        let queue = self.queues.entry(conn).or_default();
        if queue.is_empty() && !self.rotation.contains(&conn) {
            self.rotation.push_back(conn);
        }
        queue.push_back(frame);
        let per_conn = self.stats.per_connection.entry(conn).or_default();
        per_conn.high_water = per_conn.high_water.max(queue.len() as u64);
    }

    /// Answers a shed or rejected frame with a `Busy` reply carrying the
    /// retry hint sampled when the admission decision was made, clamped to
    /// [`ServiceConfig::MIN_RETRY_AFTER`] so no configuration can emit a
    /// `retry_after: 0` spin invitation.
    fn reject(&mut self, frame: Frame, hint: SimDuration) {
        let retry_after = hint.max(ServiceConfig::MIN_RETRY_AFTER);
        let reply = frame.reply(ServerResponse::Busy { retry_after });
        self.woken.insert(reply.conn_id);
        self.ready.push_back((reply, SimDuration::ZERO));
    }

    /// Removes the rearmost sheddable (prefetch-class) frame — from
    /// `scope`'s queue when given, otherwise from the longest queue
    /// holding one.
    fn evict_prefetch(&mut self, scope: Option<u64>) -> Option<Frame> {
        let victim_conn = match scope {
            Some(conn) => conn,
            None => self
                .queues
                .iter()
                .filter(|(_, q)| q.iter().any(|f| f.priority.is_sheddable()))
                .max_by_key(|(_, q)| q.len())
                .map(|(&conn, _)| conn)?,
        };
        let queue = self.queues.get_mut(&victim_conn)?;
        let at = queue.iter().rposition(|f| f.priority.is_sheddable())?;
        let victim = queue.remove(at)?;
        self.pending = self.pending.saturating_sub(1);
        if queue.is_empty() {
            self.queues.remove(&victim_conn);
            if let Some(slot) = self.rotation.iter().position(|&c| c == victim_conn) {
                self.rotation.remove(slot);
            }
        }
        Some(victim)
    }

    /// How long a rejected client should wait before resubmitting: one
    /// service slice per frame already queued ahead of it (zero when
    /// idle).
    pub(crate) fn retry_hint(&self) -> SimDuration {
        self.config.retry_slice * self.pending as u64
    }

    /// Request frames awaiting service.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Accounting so far.
    pub(crate) fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Zeroes the accounting (counters and high-water marks); queued work
    /// is untouched.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = ServiceStats::default();
    }

    /// Drops all queued and staged work — what a restart loses — keeping
    /// the accounting and the admission configuration. The wake list is
    /// cleared too: its entries name connections whose frames were just
    /// dropped, and a stale wake would send the event-driven scheduler to
    /// poll a connection with nothing staged. Returns the connections that
    /// lost queued or staged frames so the caller can re-mark exactly
    /// those as woken — they must be revisited to notice the loss.
    pub(crate) fn clear_queues(&mut self) -> Vec<u64> {
        let mut orphans: BTreeSet<u64> = self.queues.keys().copied().collect();
        orphans.extend(self.ready.iter().map(|(frame, _)| frame.conn_id));
        self.queues.clear();
        self.rotation.clear();
        self.ready.clear();
        self.woken.clear();
        self.pending = 0;
        orphans.into_iter().collect()
    }

    /// Marks `conn` for the next wake drain without touching its queue.
    pub(crate) fn wake(&mut self, conn: u64) {
        self.woken.insert(conn);
    }

    /// The next connection in round-robin order (removed from the
    /// rotation; `take_run` re-queues it if work remains).
    pub(crate) fn next_conn(&mut self) -> Option<u64> {
        self.rotation.pop_front()
    }

    /// Removes `conn` from the rotation so it can be served out of turn
    /// (policy hook for deadline-aware schedulers). Returns whether it had
    /// queued work.
    pub(crate) fn claim_conn(&mut self, conn: u64) -> bool {
        let Some(at) = self.rotation.iter().position(|&c| c == conn) else {
            return false;
        };
        self.rotation.remove(at);
        true
    }

    /// Pops `conn`'s leading adjacent-span run (or, failing that, its
    /// single head frame), re-queueing the connection if frames remain.
    /// The rotation never outgrows the set of capped connection queues.
    pub(crate) fn take_run(&mut self, conn: u64) -> Vec<Frame> {
        let Some(queue) = self.queues.get_mut(&conn) else {
            return Vec::new();
        };
        let mut len = 0usize;
        let mut prev_end: Option<u64> = None;
        for frame in queue.iter() {
            let Some(span) = frame.as_request().and_then(|r| r.as_span()) else {
                break;
            };
            if prev_end.is_some_and(|end| end != span.start) {
                break;
            }
            prev_end = Some(span.end);
            len += 1;
        }
        let take = len.max(1).min(queue.len());
        let run: Vec<Frame> = queue.drain(..take).collect();
        self.pending = self.pending.saturating_sub(run.len());
        if queue.is_empty() {
            self.queues.remove(&conn);
        } else {
            self.rotation.push_back(conn);
        }
        run
    }

    /// Records one served response frame with its device-time charge. The
    /// ready queue's growth is bounded by admitted pending work (capped by
    /// the admission policy), one response per request.
    pub(crate) fn finish(&mut self, frame: Frame, charge: SimDuration) {
        self.stats.served += 1;
        self.stats.busy += charge;
        let conn = self.stats.per_connection.entry(frame.conn_id).or_default();
        conn.served += 1;
        conn.busy += charge;
        self.woken.insert(frame.conn_id);
        self.ready.push_back((frame, charge));
    }

    /// Counts one coalesced device read.
    pub(crate) fn note_coalesced(&mut self) {
        self.stats.coalesced_runs += 1;
    }

    /// Records one payload-buffer pool lease: a hit re-served a recycled
    /// buffer, a miss allocated fresh.
    pub(crate) fn note_pool(&mut self, hit: bool) {
        if hit {
            self.stats.pool_hits += 1;
        } else {
            self.stats.pool_misses += 1;
            self.stats.payload_allocs += 1;
        }
    }

    /// Drains the connections that have had a response land (served or
    /// `Busy`-rejected) since the last drain, in connection-id order.
    /// Event-driven callers pump exactly these instead of polling all N.
    pub(crate) fn take_woken(&mut self) -> Vec<u64> {
        let woken: Vec<u64> = self.woken.iter().copied().collect();
        self.woken.clear();
        woken
    }

    /// The oldest uncollected response, if any.
    pub(crate) fn pop_ready(&mut self) -> Option<(Frame, SimDuration)> {
        self.ready.pop_front()
    }

    /// The oldest uncollected response belonging to `conn`, if any.
    pub(crate) fn pop_ready_for(&mut self, conn: u64) -> Option<(Frame, SimDuration)> {
        let at = self.ready.iter().position(|(f, _)| f.conn_id == conn)?;
        self.ready.remove(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_net::{FramePayload, Priority, ServerRequest};
    use minos_types::ByteSpan;

    fn queue(config: ServiceConfig) -> ServiceQueue {
        let mut q = ServiceQueue::default();
        q.set_config(config);
        q
    }

    fn span_frame(conn: u64, rid: u64, priority: Priority) -> Frame {
        Frame::request_with_priority(
            conn,
            rid,
            priority,
            ServerRequest::FetchSpan { span: ByteSpan::at(rid * 100, 100) },
        )
    }

    fn busy_replies(queue: &mut ServiceQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((frame, charge)) = queue.pop_ready() {
            assert_eq!(charge, SimDuration::ZERO, "busy replies charge no device time");
            match frame.payload {
                FramePayload::Response(ServerResponse::Busy { .. }) => {
                    out.push((frame.conn_id, frame.request_id));
                }
                other => panic!("expected a busy reply, got {other:?}"),
            }
        }
        out
    }

    fn busy_hints(queue: &mut ServiceQueue) -> Vec<SimDuration> {
        let mut out = Vec::new();
        while let Some((frame, _)) = queue.pop_ready() {
            match frame.payload {
                FramePayload::Response(ServerResponse::Busy { retry_after }) => {
                    out.push(retry_after);
                }
                other => panic!("expected a busy reply, got {other:?}"),
            }
        }
        out
    }

    #[test]
    fn over_cap_prefetch_is_shed_with_a_busy_reply() {
        let mut q =
            queue(ServiceConfig { per_conn_cap: 2, global_cap: 100, ..ServiceConfig::default() });
        q.admit(span_frame(1, 1, Priority::Prefetch));
        q.admit(span_frame(1, 2, Priority::Prefetch));
        q.admit(span_frame(1, 3, Priority::Prefetch));
        assert_eq!(q.pending(), 2, "the cap held");
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().busy_rejections, 0);
        assert_eq!(busy_replies(&mut q), vec![(1, 3)]);
    }

    #[test]
    fn demand_over_cap_evicts_a_queued_prefetch() {
        let mut q =
            queue(ServiceConfig { per_conn_cap: 2, global_cap: 100, ..ServiceConfig::default() });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Prefetch));
        q.admit(span_frame(1, 3, Priority::Audio));
        assert_eq!(q.pending(), 2);
        assert_eq!(q.stats().shed, 1, "the queued prefetch was evicted");
        assert_eq!(q.stats().busy_rejections, 0);
        // The evicted prefetch (rid 2) got the busy reply; the audio frame
        // took its place.
        assert_eq!(busy_replies(&mut q), vec![(1, 2)]);
        let run = q.take_run(1);
        let kept: Vec<u64> = run.iter().map(|f| f.request_id).collect();
        assert_eq!(kept, vec![1], "head demand frame intact");
    }

    #[test]
    fn demand_is_rejected_only_when_nothing_is_sheddable() {
        let mut q =
            queue(ServiceConfig { per_conn_cap: 2, global_cap: 100, ..ServiceConfig::default() });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Audio));
        q.admit(span_frame(1, 3, Priority::Demand));
        assert_eq!(q.pending(), 2);
        assert_eq!(q.stats().shed, 0);
        assert_eq!(q.stats().busy_rejections, 1);
        assert_eq!(busy_replies(&mut q), vec![(1, 3)]);
    }

    #[test]
    fn global_cap_sheds_across_connections() {
        let mut q =
            queue(ServiceConfig { per_conn_cap: 100, global_cap: 3, ..ServiceConfig::default() });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Prefetch));
        q.admit(span_frame(1, 3, Priority::Prefetch));
        // Connection 2's audio frame evicts connection 1's rearmost
        // prefetch rather than being turned away.
        q.admit(span_frame(2, 1, Priority::Audio));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.stats().shed, 1);
        assert_eq!(busy_replies(&mut q), vec![(1, 3)]);
        assert!(q.take_run(2).iter().any(|f| f.priority == Priority::Audio));
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_is_zero_when_idle() {
        let mut q = ServiceQueue::default();
        assert_eq!(q.retry_hint(), SimDuration::ZERO);
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Demand));
        assert_eq!(q.retry_hint(), q.config().retry_slice * 2);
    }

    #[test]
    fn high_water_marks_track_peak_depth() {
        let mut q = ServiceQueue::default();
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Demand));
        q.admit(span_frame(2, 1, Priority::Demand));
        let _ = q.take_run(1);
        q.admit(span_frame(2, 2, Priority::Demand));
        let stats = q.stats();
        assert_eq!(stats.queue_high_water, 3);
        assert_eq!(stats.per_connection[&1].high_water, 2);
        assert_eq!(stats.per_connection[&2].high_water, 2);
    }

    #[test]
    fn reset_stats_zeroes_overload_counters_and_keeps_work() {
        let mut q =
            queue(ServiceConfig { per_conn_cap: 1, global_cap: 100, ..ServiceConfig::default() });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Prefetch));
        q.admit(span_frame(1, 3, Priority::Demand));
        assert!(q.stats().shed > 0);
        assert!(q.stats().busy_rejections > 0);
        assert!(q.stats().queue_high_water > 0);
        q.reset_stats();
        assert_eq!(q.stats(), &ServiceStats::default());
        assert_eq!(q.pending(), 1, "queued work survives a stats reset");
    }

    #[test]
    fn clear_queues_drops_work_but_keeps_accounting() {
        let mut q = ServiceQueue::default();
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(2, 1, Priority::Demand));
        let enqueued = q.stats().enqueued;
        q.clear_queues();
        assert_eq!(q.pending(), 0);
        assert!(q.next_conn().is_none());
        assert!(q.pop_ready().is_none());
        assert_eq!(q.stats().enqueued, enqueued);
        assert!(q.take_run(1).is_empty());
    }

    #[test]
    fn clear_queues_reports_orphans_and_drops_stale_wakes() {
        let mut q = ServiceQueue::default();
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(2, 1, Priority::Demand));
        // Connection 3 has a staged (served, uncollected) response only.
        q.finish(
            Frame::response(3, 1, ServerResponse::Busy { retry_after: SimDuration::ZERO }),
            SimDuration::ZERO,
        );
        let orphans = q.clear_queues();
        assert_eq!(orphans, vec![1, 2, 3], "queued and staged connections both orphaned");
        assert!(
            q.take_woken().is_empty(),
            "stale wakes naming dropped frames do not survive a clear"
        );
    }

    #[test]
    fn busy_retry_after_is_floored_even_with_a_zero_slice() {
        let mut q = queue(ServiceConfig {
            per_conn_cap: 0,
            global_cap: 100,
            retry_slice: SimDuration::ZERO,
        });
        q.admit(span_frame(1, 1, Priority::Demand));
        assert_eq!(q.stats().busy_rejections, 1);
        let hints = busy_hints(&mut q);
        assert_eq!(hints, vec![ServiceConfig::MIN_RETRY_AFTER]);
        assert!(hints[0] > SimDuration::ZERO, "no retry_after: 0 spin invitation");
    }

    #[test]
    fn rejection_hints_are_monotone_with_backlog() {
        let slice = SimDuration::from_micros(500);
        let mut q = queue(ServiceConfig { per_conn_cap: 1, global_cap: 100, retry_slice: slice });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Demand)); // rejected at backlog 1
        q.admit(span_frame(2, 1, Priority::Demand));
        q.admit(span_frame(2, 2, Priority::Demand)); // rejected at backlog 2
        let hints = busy_hints(&mut q);
        assert_eq!(hints, vec![slice, slice * 2]);
        assert!(hints.windows(2).all(|w| w[0] <= w[1]), "hint grows with backlog");
    }

    #[test]
    fn evicted_victim_hint_reflects_pre_eviction_backlog() {
        let slice = SimDuration::from_micros(500);
        let mut q = queue(ServiceConfig { per_conn_cap: 2, global_cap: 100, retry_slice: slice });
        q.admit(span_frame(1, 1, Priority::Demand));
        q.admit(span_frame(1, 2, Priority::Prefetch));
        q.admit(span_frame(1, 3, Priority::Audio));
        // Two frames were pending at the instant the audio frame forced the
        // eviction; the victim's hint must describe that queue, not the
        // one-shorter queue left after it was removed.
        assert_eq!(busy_hints(&mut q), vec![slice * 2]);
    }

    #[test]
    fn service_stats_merge_aggregates_counters_and_maxes_high_water() {
        let mut a = ServiceStats {
            enqueued: 4,
            served: 3,
            busy: SimDuration::from_micros(40),
            shed: 1,
            queue_high_water: 5,
            ..ServiceStats::default()
        };
        a.per_connection.insert(
            1,
            ConnectionServiceStats { served: 3, busy: SimDuration::from_micros(40), high_water: 2 },
        );
        let mut b = ServiceStats {
            enqueued: 2,
            served: 2,
            busy: SimDuration::from_micros(10),
            busy_rejections: 1,
            queue_high_water: 3,
            ..ServiceStats::default()
        };
        b.per_connection.insert(
            1,
            ConnectionServiceStats { served: 2, busy: SimDuration::from_micros(10), high_water: 4 },
        );
        b.per_connection.insert(2, ConnectionServiceStats::default());
        a.merge(&b);
        assert_eq!(a.enqueued, 6);
        assert_eq!(a.served, 5);
        assert_eq!(a.busy, SimDuration::from_micros(50));
        assert_eq!(a.shed, 1);
        assert_eq!(a.busy_rejections, 1);
        assert_eq!(a.queue_high_water, 5, "high water is a max, not a sum");
        assert_eq!(a.per_connection[&1].served, 5);
        assert_eq!(a.per_connection[&1].high_water, 4);
        assert!(a.per_connection.contains_key(&2));
    }
}
