//! The queued, multi-connection service loop (§5).
//!
//! The blocking path handed the server one request at a time; with framed
//! transport (see [`minos_net::frame`]) the server instead *queues* request
//! frames from many connections and serves them in connection-fair
//! round-robin order. Adjacent span fetches queued by one connection — the
//! anticipatory-prefetch shape — are still coalesced into a single device
//! read, exactly as the batch path coalesces them, so pipelining never
//! costs extra actuator seeks.
//!
//! This module holds the queue and its accounting; the serving itself
//! (device access, rendering) lives on
//! [`ObjectServer`](crate::server::ObjectServer), which owns the devices.

use minos_net::Frame;
use minos_types::SimDuration;
use std::collections::{BTreeMap, VecDeque};

/// Accounting for the queued service loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Request frames accepted into the queue.
    pub enqueued: u64,
    /// Response frames produced.
    pub served: u64,
    /// Total device time charged across all served requests.
    pub busy: SimDuration,
    /// Coalesced multi-span device reads performed.
    pub coalesced_runs: u64,
    /// Per-connection service accounting.
    pub per_connection: BTreeMap<u64, ConnectionServiceStats>,
}

/// Service accounting for one connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionServiceStats {
    /// Response frames served to this connection.
    pub served: u64,
    /// Device time spent on this connection's requests.
    pub busy: SimDuration,
}

/// The connection-fair frame queue behind `ObjectServer::enqueue`/`poll`.
#[derive(Debug, Default)]
pub(crate) struct ServiceQueue {
    /// Per-connection FIFO of request frames awaiting service.
    queues: BTreeMap<u64, VecDeque<Frame>>,
    /// Round-robin rotation of connections with queued work.
    rotation: VecDeque<u64>,
    /// Served responses not yet collected, each with its device charge.
    ready: VecDeque<(Frame, SimDuration)>,
    /// Request frames queued but not yet served.
    pending: usize,
    stats: ServiceStats,
}

impl ServiceQueue {
    /// Accepts one request frame into its connection's queue.
    pub(crate) fn push(&mut self, frame: Frame) {
        self.stats.enqueued += 1;
        self.pending += 1;
        let conn = frame.conn_id;
        let queue = self.queues.entry(conn).or_default();
        if queue.is_empty() && !self.rotation.contains(&conn) {
            self.rotation.push_back(conn);
        }
        queue.push_back(frame);
    }

    /// Request frames awaiting service.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Accounting so far.
    pub(crate) fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The next connection in round-robin order (removed from the
    /// rotation; `take_run` re-queues it if work remains).
    pub(crate) fn next_conn(&mut self) -> Option<u64> {
        self.rotation.pop_front()
    }

    /// Removes `conn` from the rotation so it can be served out of turn
    /// (policy hook for deadline-aware schedulers). Returns whether it had
    /// queued work.
    pub(crate) fn claim_conn(&mut self, conn: u64) -> bool {
        let Some(at) = self.rotation.iter().position(|&c| c == conn) else {
            return false;
        };
        self.rotation.remove(at);
        true
    }

    /// Pops `conn`'s leading adjacent-span run (or, failing that, its
    /// single head frame), re-queueing the connection if frames remain.
    pub(crate) fn take_run(&mut self, conn: u64) -> Vec<Frame> {
        let Some(queue) = self.queues.get_mut(&conn) else {
            return Vec::new();
        };
        let mut len = 0usize;
        let mut prev_end: Option<u64> = None;
        for frame in queue.iter() {
            let Some(span) = frame.as_request().and_then(|r| r.as_span()) else {
                break;
            };
            if prev_end.is_some_and(|end| end != span.start) {
                break;
            }
            prev_end = Some(span.end);
            len += 1;
        }
        let take = len.max(1).min(queue.len());
        let run: Vec<Frame> = queue.drain(..take).collect();
        self.pending = self.pending.saturating_sub(run.len());
        if queue.is_empty() {
            self.queues.remove(&conn);
        } else {
            self.rotation.push_back(conn);
        }
        run
    }

    /// Records one served response frame with its device-time charge.
    pub(crate) fn finish(&mut self, frame: Frame, charge: SimDuration) {
        self.stats.served += 1;
        self.stats.busy += charge;
        let conn = self.stats.per_connection.entry(frame.conn_id).or_default();
        conn.served += 1;
        conn.busy += charge;
        self.ready.push_back((frame, charge));
    }

    /// Counts one coalesced device read.
    pub(crate) fn note_coalesced(&mut self) {
        self.stats.coalesced_runs += 1;
    }

    /// The oldest uncollected response, if any.
    pub(crate) fn pop_ready(&mut self) -> Option<(Frame, SimDuration)> {
        self.ready.pop_front()
    }

    /// The oldest uncollected response belonging to `conn`, if any.
    pub(crate) fn pop_ready_for(&mut self, conn: u64) -> Option<(Frame, SimDuration)> {
        let at = self.ready.iter().position(|(f, _)| f.conn_id == conn)?;
        self.ready.remove(at)
    }
}
