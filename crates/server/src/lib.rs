//! The multimedia object server subsystem (§5).
//!
//! "Users submit queries based on object content from their workstation.
//! The queries are evaluated by the server subsystem against the multimedia
//! data base. … Miniatures of qualifying objects may be returned to the
//! user using a sequential browsing interface in order to facilitate
//! browsing through a large number of objects that may qualify." (§5)
//!
//! * [`index`] — the inverted index over text words, recognized voice
//!   utterances and image-label text (one access method for all media —
//!   the paper's "same access methods as in text");
//! * [`server`] — the object server: archiver-backed storage, query
//!   evaluation, miniature service, and the view service that ships only a
//!   window's bytes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod index;
pub mod server;
pub mod service;

pub use index::InvertedIndex;
pub use server::{ObjectServer, PublishReceipt};
pub use service::{ConnectionServiceStats, ServiceConfig, ServiceStats};
