//! The object server.
//!
//! Serves the protocol of [`minos_net::protocol`] against an optical-disk
//! archiver with an optional magnetic-backed block cache. Every reply
//! reports the simulated device time it cost; the caller adds link time.
//! The server keeps the typed form of each published object so it can
//! render view windows and miniatures server-side — shipping a window or a
//! miniature instead of the whole image is the point of experiments E5/E6.

use crate::index::InvertedIndex;
use crate::service::{ServiceConfig, ServiceQueue, ServiceStats};
use minos_image::{Bitmap, Miniature};
use minos_net::{BufferPool, Frame, ServerRequest, ServerResponse};
use minos_object::{ArchivedObject, DataPayload, MultimediaObject};
use minos_storage::{Archiver, OpticalDisk};
use minos_types::{ByteSpan, MinosError, ObjectId, Result, SimDuration};
use std::collections::HashMap;

/// What `publish` returns: where the archived bytes went and what storing
/// them cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The stored region on the optical disk.
    pub span: ByteSpan,
    /// Device time charged for the store.
    pub store_time: SimDuration,
}

/// Rendered rasters of an object's images, cached server-side so repeated
/// view requests do not re-rasterize graphics.
struct RenderedObject {
    object: MultimediaObject,
    rasters: Vec<Bitmap>,
    miniature: Miniature,
}

/// The multimedia object server.
pub struct ObjectServer {
    archiver: Archiver<OpticalDisk>,
    index: InvertedIndex,
    resident: HashMap<ObjectId, RenderedObject>,
    miniature_factor: u32,
    service: ServiceQueue,
    /// Recycled payload buffers for span reads: steady-state serving
    /// re-fills returned buffers instead of allocating one per page.
    pool: BufferPool,
    epoch: u64,
}

impl ObjectServer {
    /// A server over a fresh optical disk. (Block caching is a storage-
    /// layer concern; experiment E7 wraps the optical device in a
    /// [`minos_storage::BlockCache`] directly.)
    pub fn new() -> Self {
        Self::with_disk(OpticalDisk::new())
    }

    /// A server over an explicitly configured disk — the fault experiments
    /// hand in an aging [`OpticalDisk`] whose reads transiently fail, and
    /// every such failure must come back as an inline
    /// [`ServerResponse::Error`], never a panic or a lost request.
    pub fn with_disk(disk: OpticalDisk) -> Self {
        ObjectServer {
            archiver: Archiver::new(disk),
            index: InvertedIndex::new(),
            resident: HashMap::new(),
            miniature_factor: 8,
            service: ServiceQueue::default(),
            pool: BufferPool::new(),
            epoch: 0,
        }
    }

    /// Leases a payload buffer from the server's pool, recording the
    /// hit/miss in the service accounting.
    fn lease_payload(&mut self) -> Vec<u8> {
        let hit = self.pool.free_buffers() > 0;
        self.service.note_pool(hit);
        self.pool.lease_vec()
    }

    /// Hands a consumed payload buffer back to the server's pool. Harness
    /// code that drains served span frames returns the buffers here so the
    /// steady-state serving loop stops allocating per page.
    pub fn recycle_payload(&mut self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }

    /// Stocks the payload pool with `buffers` empty buffers of `capacity`
    /// bytes before any traffic, counted separately in
    /// [`minos_net::PoolStats::prewarmed`] — cold-start leases then hit
    /// the free list instead of registering as allocations, so small-N
    /// alloc metrics measure the steady state rather than warmup.
    pub fn prewarm_payloads(&mut self, buffers: usize, capacity: usize) {
        self.pool.prewarm(buffers, capacity);
    }

    /// Replaces the service queue's admission configuration (queued work
    /// is kept; only the caps and retry hint change).
    pub fn set_service_config(&mut self, config: ServiceConfig) {
        self.service.set_config(config);
    }

    /// The admission configuration in force.
    pub fn service_config(&self) -> ServiceConfig {
        self.service.config()
    }

    /// The server's current epoch. Bumped by every [`ObjectServer::restart`];
    /// a client that last saw an older epoch knows its in-flight window
    /// was lost and must be replayed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Simulates a server restart: everything in volatile memory — queued
    /// request frames and staged responses — is lost, the epoch is bumped,
    /// and the durable state (archived objects, the index, rendered
    /// residents) survives. Service accounting is the harness's view, not
    /// the server's, so it survives too.
    ///
    /// The wake list is rebuilt rather than carried over: stale entries
    /// would name connections whose frames evaporated with the queues,
    /// while the connections that actually lost work are re-marked woken
    /// so an event-driven scheduler revisits exactly those and notices
    /// (via the epoch handshake) that a replay is due.
    pub fn restart(&mut self) {
        self.epoch += 1;
        let orphans = self.service.clear_queues();
        for conn in orphans {
            self.service.wake(conn);
        }
    }

    /// Zeroes the service-loop accounting, including the overload counters
    /// (`shed`, `busy_rejections`, high-water marks).
    pub fn reset_service_stats(&mut self) {
        self.service.reset_stats();
        self.pool.reset_stats();
    }

    /// The archiver (for experiment setup: request spans, device stats).
    pub fn archiver(&self) -> &Archiver<OpticalDisk> {
        &self.archiver
    }

    /// Mutable archiver access.
    pub fn archiver_mut(&mut self) -> &mut Archiver<OpticalDisk> {
        &mut self.archiver
    }

    /// The content index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Publishes an object: stores its archived bytes at the current
    /// frontier, indexes its content, renders its images, and builds its
    /// miniature.
    pub fn publish(
        &mut self,
        object: MultimediaObject,
        archived: &ArchivedObject,
    ) -> Result<PublishReceipt> {
        if !object.is_archived() {
            return Err(MinosError::WrongState(format!(
                "{} must be archived before publishing",
                object.id
            )));
        }
        let base = self.archiver.next_offset();
        let bytes = archived.encode_for_archive(base);
        let (record, store_time) = self.archiver.store(object.id, &bytes)?;
        self.index.index_object(&object);
        let rasters: Vec<Bitmap> = object.images.iter().map(|i| i.render()).collect();
        let miniature_source = rasters.first().cloned().unwrap_or_else(|| {
            // Text/voice-only objects get a schematic first-page miniature:
            // one stripe per text paragraph, or a blank card for pure voice.
            let mut bm = Bitmap::new(160, 120);
            if let Some(doc) = object.text_segments.first() {
                for (i, _) in doc.tree().paragraphs.iter().enumerate().take(14) {
                    let y = 8 + i as i32 * 8;
                    for x in 8..152 {
                        bm.set(x, y, true);
                    }
                }
            }
            bm
        });
        let miniature = Miniature::build(&miniature_source, self.miniature_factor);
        self.resident.insert(object.id, RenderedObject { object, rasters, miniature });
        Ok(PublishReceipt { span: record.span, store_time })
    }

    /// The archived region of `id` (latest version), for queueing
    /// workloads.
    pub fn record_span(&self, id: ObjectId) -> Result<ByteSpan> {
        Ok(self.archiver.latest(id)?.span)
    }

    /// Handles one protocol request, returning the response and the device
    /// time it cost the server.
    pub fn handle(&mut self, request: &ServerRequest) -> (ServerResponse, SimDuration) {
        match self.try_handle(request) {
            Ok(ok) => ok,
            Err(e) => (ServerResponse::Error(e.to_string()), SimDuration::ZERO),
        }
    }

    fn try_handle(&mut self, request: &ServerRequest) -> Result<(ServerResponse, SimDuration)> {
        match request {
            ServerRequest::FetchObject { id } => {
                let (bytes, took) = self.archiver.fetch_latest(*id)?;
                Ok((ServerResponse::Object(bytes), took))
            }
            ServerRequest::FetchSpan { span } => {
                let mut bytes = self.lease_payload();
                let took = self.archiver.read_at_into(*span, &mut bytes)?;
                Ok((ServerResponse::Span(bytes), took))
            }
            ServerRequest::FetchView { id, tag, rect } => {
                let resident = self
                    .resident
                    .get(id)
                    .ok_or_else(|| MinosError::UnknownObject(id.to_string()))?;
                let image_index: usize = tag.parse().map_err(|_| {
                    MinosError::UnknownComponent(format!("image tag {tag:?} (expected index)"))
                })?;
                let raster = resident.rasters.get(image_index).ok_or_else(|| {
                    MinosError::UnknownComponent(format!("{id} image {image_index}"))
                })?;
                let clamped = rect.clamp_within(raster.bounds());
                let window = raster.extract(clamped)?;
                // The device is charged for the *window's* bytes read from
                // the image region — the E5 claim made concrete.
                let record = self.archiver.latest(*id)?;
                let window_bytes = window.byte_size().min(record.span.len());
                let span = ByteSpan::at(record.span.start, window_bytes);
                let (_, took) = self.archiver.read_at(span)?;
                Ok((ServerResponse::View(DataPayload::image(&window).bytes), took))
            }
            ServerRequest::FetchMiniature { id } => {
                let resident = self
                    .resident
                    .get(id)
                    .ok_or_else(|| MinosError::UnknownObject(id.to_string()))?;
                let mini = resident.miniature.raster().clone();
                let record = self.archiver.latest(*id)?;
                let bytes = mini.byte_size().min(record.span.len());
                let span = ByteSpan::at(record.span.start, bytes);
                let (_, took) = self.archiver.read_at(span)?;
                Ok((ServerResponse::Miniature(DataPayload::image(&mini).bytes), took))
            }
            ServerRequest::Query { keywords } => {
                // Index is memory-resident; queries cost no device time.
                Ok((ServerResponse::Hits(self.index.query(keywords)), SimDuration::ZERO))
            }
            ServerRequest::QueryAttribute { name, value } => Ok((
                ServerResponse::Hits(self.index.query_attribute(name, value)),
                SimDuration::ZERO,
            )),
            ServerRequest::Batch { requests } => self.handle_batch(requests),
            // The epoch handshake: answered from memory, no device time.
            ServerRequest::Hello { .. } => {
                Ok((ServerResponse::Welcome { epoch: self.epoch }, SimDuration::ZERO))
            }
            // A load probe reports the current retry hint without queueing
            // anything; an idle server answers with a zero wait.
            ServerRequest::Probe => Ok((
                ServerResponse::Busy { retry_after: self.service.retry_hint() },
                SimDuration::ZERO,
            )),
            // The heartbeat echo: answered from memory like the handshake,
            // carrying the current epoch so an idle client's health monitor
            // notices a restart without submitting any work.
            ServerRequest::Ping { nonce } => {
                Ok((ServerResponse::Pong { nonce: *nonce, epoch: self.epoch }, SimDuration::ZERO))
            }
        }
    }

    /// Answers a prefetch batch in one round trip.
    ///
    /// Individual failures become inline [`ServerResponse::Error`] entries
    /// so one bad prediction cannot sink the rest of the batch. Runs of
    /// *adjacent* span fetches — the common case, since anticipated pages
    /// are contiguous on the write-once disk — are coalesced into a single
    /// device read: the actuator pays one seek and one rotational delay for
    /// the merged span instead of one per page, and the bytes are sliced
    /// back into exact per-request responses.
    fn handle_batch(
        &mut self,
        requests: &[ServerRequest],
    ) -> Result<(ServerResponse, SimDuration)> {
        if requests.iter().any(|r| matches!(r, ServerRequest::Batch { .. })) {
            return Err(MinosError::Protocol("nested request batch".into()));
        }
        let mut responses = Vec::with_capacity(requests.len());
        let mut total = SimDuration::ZERO;
        let mut rest = requests;
        while let Some(request) = rest.first() {
            let run = Self::adjacent_span_run(rest);
            if let (Some(first), Some(last)) = (run.first(), run.last()) {
                if run.len() > 1 {
                    let whole = ByteSpan::new(first.start, last.end);
                    let mut merged = self.lease_payload();
                    match self.archiver.read_at_into(whole, &mut merged) {
                        Ok(took) => {
                            total += took;
                            for span in &run {
                                let from = (span.start - whole.start) as usize;
                                let to = from + span.len() as usize;
                                let Some(slice) = merged.get(from..to) else {
                                    return Err(MinosError::Internal(format!(
                                        "coalesced read lost {span}: {from}..{to} outside \
                                         {} bytes",
                                        merged.len()
                                    )));
                                };
                                let mut payload = self.lease_payload();
                                payload.extend_from_slice(slice);
                                responses.push(ServerResponse::Span(payload));
                            }
                        }
                        Err(e) => {
                            let msg = e.to_string();
                            responses
                                .extend(run.iter().map(|_| ServerResponse::Error(msg.clone())));
                        }
                    }
                    self.pool.recycle(merged);
                    rest = rest.get(run.len()..).unwrap_or_default();
                    continue;
                }
            }
            let (resp, took) = self.handle(request);
            total += took;
            responses.push(resp);
            rest = rest.get(1..).unwrap_or_default();
        }
        Ok((ServerResponse::Batch(responses), total))
    }

    /// The leading run of span fetches where each span starts exactly where
    /// the previous one ends (empty if the first request is not a span
    /// fetch).
    fn adjacent_span_run(requests: &[ServerRequest]) -> Vec<ByteSpan> {
        let mut run: Vec<ByteSpan> = Vec::new();
        for request in requests {
            match request {
                ServerRequest::FetchSpan { span }
                    if run.last().is_none_or(|prev| prev.end == span.start) =>
                {
                    run.push(*span);
                }
                _ => break,
            }
        }
        run
    }

    /// Accepts one framed request into the queued service loop. Only
    /// request frames may be enqueued; a response frame is a protocol
    /// violation and is rejected without queueing.
    pub fn enqueue(&mut self, frame: Frame) -> Result<()> {
        if frame.as_request().is_none() {
            return Err(MinosError::Protocol(format!(
                "connection {} enqueued a response frame as a request",
                frame.conn_id
            )));
        }
        self.service.admit(frame);
        Ok(())
    }

    /// Accepts one request frame from raw wire bytes. The frame is decoded
    /// — and its checksum trailer verified — before it may enter the
    /// service loop, so a frame mangled in transit is rejected as
    /// [`MinosError::Corrupt`] instead of being served with altered
    /// contents.
    pub fn enqueue_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.enqueue(Frame::decode(bytes)?)
    }

    /// Serves queued work and returns the next completed response frame,
    /// or `None` when the queue is idle. Connections are served in
    /// round-robin order, so one deep queue cannot starve the others;
    /// responses therefore complete out of request-arrival order.
    pub fn poll(&mut self) -> Option<Frame> {
        self.poll_timed().map(|(frame, _)| frame)
    }

    /// Like [`ObjectServer::poll`], but also reports the device time the
    /// response cost (a coalesced run's read time is split across its
    /// frames).
    pub fn poll_timed(&mut self) -> Option<(Frame, SimDuration)> {
        if let Some(out) = self.service.pop_ready() {
            return Some(out);
        }
        let conn = self.service.next_conn()?;
        self.serve_conn(conn);
        self.service.pop_ready()
    }

    /// Serves the head of one specific connection's queue, bypassing the
    /// round-robin rotation — the mechanism a deadline-aware scheduler
    /// (audio before text) uses to impose its own fairness policy.
    pub fn poll_conn(&mut self, conn_id: u64) -> Option<(Frame, SimDuration)> {
        if let Some(out) = self.service.pop_ready_for(conn_id) {
            return Some(out);
        }
        if !self.service.claim_conn(conn_id) {
            return None;
        }
        self.serve_conn(conn_id);
        self.service.pop_ready_for(conn_id)
    }

    /// Request frames queued and not yet served.
    pub fn pending_frames(&self) -> usize {
        self.service.pending()
    }

    /// Drains the connections with a response landed (served or rejected)
    /// since the last drain — the completion wake list. Event-driven
    /// callers collect their deliveries with per-connection polls of
    /// exactly these connections instead of polling all N.
    pub fn take_woken(&mut self) -> Vec<u64> {
        self.service.take_woken()
    }

    /// Accounting for the queued service loop.
    pub fn service_stats(&self) -> &ServiceStats {
        self.service.stats()
    }

    /// Serves one run from `conn`'s queue: a leading run of adjacent span
    /// fetches becomes a single coalesced device read sliced back into
    /// per-frame responses; anything else is served one frame at a time.
    fn serve_conn(&mut self, conn: u64) {
        let run = self.service.take_run(conn);
        if run.is_empty() {
            return;
        }
        let spans: Vec<ByteSpan> =
            run.iter().filter_map(|f| f.as_request().and_then(|r| r.as_span())).collect();
        if let (Some(head), Some(tail)) = (spans.first(), spans.last()) {
            if run.len() > 1 && spans.len() == run.len() {
                let whole = ByteSpan::new(head.start, tail.end);
                let mut merged = self.lease_payload();
                match self.archiver.read_at_into(whole, &mut merged) {
                    Ok(took) => {
                        self.service.note_coalesced();
                        let share = took / run.len() as u64;
                        let remainder = took - share * (run.len() as u64 - 1);
                        for (i, (frame, span)) in run.iter().zip(&spans).enumerate() {
                            let from = (span.start - whole.start) as usize;
                            let response = match merged.get(from..from + span.len() as usize) {
                                Some(slice) => {
                                    let mut payload = self.lease_payload();
                                    payload.extend_from_slice(slice);
                                    ServerResponse::Span(payload)
                                }
                                None => ServerResponse::Error(format!(
                                    "coalesced read lost {span} inside {whole}"
                                )),
                            };
                            let charge = if i == 0 { remainder } else { share };
                            self.service.finish(frame.reply(response), charge);
                        }
                    }
                    Err(e) => {
                        let message = e.to_string();
                        for frame in &run {
                            self.service.finish(
                                frame.reply(ServerResponse::Error(message.clone())),
                                SimDuration::ZERO,
                            );
                        }
                    }
                }
                self.pool.recycle(merged);
                return;
            }
        }
        for frame in run {
            let (response, took) = match frame.as_request() {
                Some(request) => self.handle(request),
                None => (
                    ServerResponse::Error("queued frame carried no request".into()),
                    SimDuration::ZERO,
                ),
            };
            self.service.finish(frame.reply(response), took);
        }
    }

    /// The typed object, if resident (used by the presentation manager
    /// after it has fetched the object).
    pub fn resident_object(&self, id: ObjectId) -> Option<&MultimediaObject> {
        self.resident.get(&id).map(|r| &r.object)
    }

    /// Number of published objects.
    pub fn object_count(&self) -> usize {
        self.resident.len()
    }
}

impl Default for ObjectServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_net::FramePayload;
    use minos_object::{DrivingMode, FormatterSession};
    use minos_types::Rect;

    #[test]
    fn corrupt_wire_bytes_are_rejected_before_service() {
        let mut server = ObjectServer::new();
        make_published(&mut server, 1, "some indexed words here");
        let frame = Frame::request(1, 1, ServerRequest::Query { keywords: vec!["indexed".into()] });
        let bytes = frame.encode();
        // A single flipped bit anywhere must fail the checksum and keep the
        // frame out of the service loop entirely.
        let mut mangled = bytes.clone();
        if let Some(byte) = mangled.get_mut(2) {
            *byte ^= 0x10;
        }
        assert!(
            matches!(server.enqueue_bytes(&mangled), Err(MinosError::Corrupt(_))),
            "mangled bytes must be rejected as corrupt"
        );
        assert!(server.poll().is_none(), "nothing was queued by the rejected frame");
        // The intact bytes decode and serve normally.
        server.enqueue_bytes(&bytes).unwrap();
        let served = server.poll().expect("the intact frame was served");
        assert!(matches!(
            served.payload,
            FramePayload::Response(ServerResponse::Hits(ref hits)) if hits == &[ObjectId::new(1)]
        ));
    }

    #[test]
    fn degraded_disk_reads_surface_as_inline_errors() {
        // Every read on this disk fails; appends (publication) still work.
        let mut server = ObjectServer::with_disk(OpticalDisk::new().with_read_faults(3, 1.0));
        let id = make_published(&mut server, 7, "content on failing media");
        let (resp, took) = server.handle(&ServerRequest::FetchObject { id });
        assert!(matches!(resp, ServerResponse::Error(_)), "got {resp:?}");
        assert_eq!(took, SimDuration::ZERO, "a failed read charges no device time");
        // The service loop path degrades the same way: the request is
        // served, the failure rides inline, the queue does not jam.
        server.enqueue(Frame::request(1, 1, ServerRequest::FetchObject { id })).unwrap();
        let served = server.poll().expect("the queue kept moving");
        assert!(matches!(served.payload, FramePayload::Response(ServerResponse::Error(_))));
    }

    fn make_published(server: &mut ObjectServer, id: u64, body: &str) -> ObjectId {
        let oid = ObjectId::new(id);
        let mut session = FormatterSession::new(oid);
        session.set_synthesis(&format!("@object obj{id}\n.ch Content\n{body}\n")).unwrap();
        let file = session.build().unwrap();
        let archived = ArchivedObject::from_file(&file);
        let mut object = MultimediaObject::new(oid, format!("obj{id}"), DrivingMode::Visual);
        object.text_segments.push(minos_text::parse_markup(&format!("{body}\n")).unwrap());
        object.archive().unwrap();
        server.publish(object, &archived).unwrap();
        oid
    }

    fn published_with_image(server: &mut ObjectServer, id: u64, side: u32) -> ObjectId {
        let oid = ObjectId::new(id);
        let mut bm = Bitmap::new(side, side);
        for i in 0..side as i32 {
            bm.set(i, i, true);
        }
        let mut object = MultimediaObject::new(oid, "imgobj", DrivingMode::Visual);
        object.images.push(minos_image::Image::Bitmap(bm));
        object.archive().unwrap();
        let mut session = FormatterSession::new(oid);
        session.set_synthesis("@object imgobj\nplaceholder text\n").unwrap();
        let file = session.build().unwrap();
        server.publish(object, &ArchivedObject::from_file(&file)).unwrap();
        oid
    }

    #[test]
    fn publish_then_fetch_round_trips() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 1, "the optical archive");
        let (resp, took) = server.handle(&ServerRequest::FetchObject { id });
        match resp {
            ServerResponse::Object(bytes) => {
                let record = server.archiver().latest(id).unwrap();
                let back = ArchivedObject::decode_from_archive(&bytes, record.span.start).unwrap();
                assert_eq!(back.descriptor.object_id, id);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(took > SimDuration::ZERO);
        assert_eq!(server.object_count(), 1);
    }

    #[test]
    fn unarchived_objects_cannot_publish() {
        let mut server = ObjectServer::new();
        let object = MultimediaObject::new(ObjectId::new(1), "draft", DrivingMode::Visual);
        let mut session = FormatterSession::new(ObjectId::new(1));
        session.set_synthesis("@object draft\ntext\n").unwrap();
        let archived = ArchivedObject::from_file(&session.build().unwrap());
        assert!(server.publish(object, &archived).is_err());
    }

    #[test]
    fn queries_find_published_content() {
        let mut server = ObjectServer::new();
        make_published(&mut server, 1, "subway map of the city");
        make_published(&mut server, 2, "x-ray of the patient");
        let (resp, _) = server.handle(&ServerRequest::Query { keywords: vec!["x-ray".into()] });
        assert_eq!(resp, ServerResponse::Hits(vec![ObjectId::new(2)]));
        let (resp, _) = server.handle(&ServerRequest::Query { keywords: vec!["the".into()] });
        assert_eq!(resp, ServerResponse::Hits(vec![ObjectId::new(1), ObjectId::new(2)]));
    }

    #[test]
    fn view_ships_window_not_image() {
        let mut server = ObjectServer::new();
        let id = published_with_image(&mut server, 3, 1_000);
        let (resp, _) = server.handle(&ServerRequest::FetchView {
            id,
            tag: "0".into(),
            rect: Rect::new(100, 100, 200, 150),
        });
        let window_bytes = match resp {
            ServerResponse::View(bytes) => {
                let payload = DataPayload { kind: minos_object::DataKind::Image, bytes };
                let window = payload.as_image().unwrap();
                assert_eq!(window.size(), minos_types::Size::new(200, 150));
                // Diagonal pixels of the source appear view-relative.
                assert!(window.get(50, 50));
                payload.len()
            }
            other => panic!("unexpected {other:?}"),
        };
        let (resp_full, _) = server.handle(&ServerRequest::FetchView {
            id,
            tag: "0".into(),
            rect: Rect::new(0, 0, 1_000, 1_000),
        });
        let full_bytes = match resp_full {
            ServerResponse::View(bytes) => bytes.len() as u64,
            other => panic!("unexpected {other:?}"),
        };
        assert!(window_bytes * 20 < full_bytes, "window {window_bytes} vs full {full_bytes}");
    }

    #[test]
    fn view_requests_clamp_and_validate() {
        let mut server = ObjectServer::new();
        let id = published_with_image(&mut server, 4, 100);
        // Off-edge rect clamps.
        let (resp, _) = server.handle(&ServerRequest::FetchView {
            id,
            tag: "0".into(),
            rect: Rect::new(90, 90, 50, 50),
        });
        assert!(matches!(resp, ServerResponse::View(_)));
        // Bad image tag errors.
        let (resp, _) = server.handle(&ServerRequest::FetchView {
            id,
            tag: "map".into(),
            rect: Rect::new(0, 0, 10, 10),
        });
        assert!(matches!(resp, ServerResponse::Error(_)));
        let (resp, _) = server.handle(&ServerRequest::FetchView {
            id,
            tag: "7".into(),
            rect: Rect::new(0, 0, 10, 10),
        });
        assert!(matches!(resp, ServerResponse::Error(_)));
    }

    #[test]
    fn miniatures_are_much_smaller_than_objects() {
        let mut server = ObjectServer::new();
        let id = published_with_image(&mut server, 5, 800);
        let (mini_resp, _) = server.handle(&ServerRequest::FetchMiniature { id });
        let mini_size = match mini_resp {
            ServerResponse::Miniature(b) => b.len() as u64,
            other => panic!("unexpected {other:?}"),
        };
        let (obj_resp, _) = server.handle(&ServerRequest::FetchObject { id });
        let obj_size = match obj_resp {
            ServerResponse::Object(b) => b.len() as u64,
            other => panic!("unexpected {other:?}"),
        };
        // The object's archived bytes here are small (text placeholder),
        // but the miniature must beat the rendered image by ~factor².
        let full_image_bytes = Bitmap::new(800, 800).byte_size();
        assert!(mini_size * 30 < full_image_bytes, "{mini_size} vs {full_image_bytes}");
        let _ = obj_size;
    }

    #[test]
    fn text_only_objects_get_schematic_miniatures() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 6, "one paragraph.\n.pp\nanother paragraph.");
        let (resp, _) = server.handle(&ServerRequest::FetchMiniature { id });
        match resp {
            ServerResponse::Miniature(bytes) => {
                let payload = DataPayload { kind: minos_object::DataKind::Image, bytes };
                assert!(!payload.as_image().unwrap().is_blank());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_ids_yield_protocol_errors() {
        let mut server = ObjectServer::new();
        let ghost = ObjectId::new(404);
        for request in [
            ServerRequest::FetchObject { id: ghost },
            ServerRequest::FetchMiniature { id: ghost },
            ServerRequest::FetchView { id: ghost, tag: "0".into(), rect: Rect::new(0, 0, 1, 1) },
        ] {
            let (resp, took) = server.handle(&request);
            assert!(matches!(resp, ServerResponse::Error(_)), "{request:?}");
            assert_eq!(took, SimDuration::ZERO);
        }
    }

    #[test]
    fn batch_answers_in_order_with_inline_errors() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 8, "batched content");
        let span = server.record_span(id).unwrap();
        let (resp, took) = server.handle(&ServerRequest::Batch {
            requests: vec![
                ServerRequest::FetchObject { id },
                ServerRequest::FetchObject { id: ObjectId::new(404) },
                ServerRequest::FetchSpan { span: ByteSpan::new(span.start, span.start + 8) },
            ],
        });
        let ServerResponse::Batch(responses) = resp else {
            panic!("expected batch response");
        };
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], ServerResponse::Object(_)));
        assert!(matches!(responses[1], ServerResponse::Error(_)));
        assert!(matches!(&responses[2], ServerResponse::Span(b) if b.len() == 8));
        assert!(took > SimDuration::ZERO);
    }

    #[test]
    fn batch_coalesces_adjacent_spans_into_one_read() {
        // Two identical servers; one takes the pages batched, the other one
        // by one. The batch pays the seek + rotational overhead once.
        let mut batched = ObjectServer::new();
        let mut serial = ObjectServer::new();
        let body = "page data ".repeat(400);
        let id = make_published(&mut batched, 9, &body);
        make_published(&mut serial, 9, &body);
        let whole = batched.record_span(id).unwrap();
        let pages: Vec<ByteSpan> =
            (0..4).map(|i| ByteSpan::at(whole.start + i * 1_000, 1_000)).collect();

        let (resp, batch_time) = batched.handle(&ServerRequest::Batch {
            requests: pages.iter().map(|&span| ServerRequest::FetchSpan { span }).collect(),
        });
        let ServerResponse::Batch(responses) = resp else {
            panic!("expected batch response");
        };

        let mut serial_time = SimDuration::ZERO;
        for (i, &span) in pages.iter().enumerate() {
            let (resp, took) = serial.handle(&ServerRequest::FetchSpan { span });
            serial_time += took;
            // Coalescing must not change the bytes: each sliced response
            // matches the one-at-a-time read exactly.
            assert_eq!(responses[i], resp, "page {i}");
        }
        // Serial pays 4 × (seek + rotation); the batch pays it once.
        assert!(
            batch_time + SimDuration::from_millis(100) < serial_time,
            "batch {batch_time} vs serial {serial_time}"
        );
    }

    #[test]
    fn nested_batches_rejected_by_server() {
        let mut server = ObjectServer::new();
        let (resp, took) = server.handle(&ServerRequest::Batch {
            requests: vec![ServerRequest::Batch { requests: vec![] }],
        });
        assert!(matches!(resp, ServerResponse::Error(_)));
        assert_eq!(took, SimDuration::ZERO);
    }

    #[test]
    fn span_fetch_serves_descriptor_pointers() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 7, "pointer target text");
        let span = server.record_span(id).unwrap();
        let (resp, _) = server
            .handle(&ServerRequest::FetchSpan { span: ByteSpan::new(span.start, span.start + 4) });
        match resp {
            ServerResponse::Span(bytes) => assert_eq!(bytes.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_loop_interleaves_connections_round_robin() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 1, "framed service text");
        let span = server.record_span(id).unwrap();
        // Connection 1 queues three spans, connection 2 queues one; fair
        // service must answer connection 2 before connection 1's backlog
        // drains. Non-adjacent spans so nothing coalesces here.
        for (rid, start) in [(1, span.start), (2, span.start + 8), (3, span.start)] {
            server
                .enqueue(Frame::request(
                    1,
                    rid,
                    ServerRequest::FetchSpan { span: ByteSpan::at(start, 4) },
                ))
                .unwrap();
        }
        server
            .enqueue(Frame::request(
                2,
                1,
                ServerRequest::FetchSpan { span: ByteSpan::at(span.start, 4) },
            ))
            .unwrap();
        assert_eq!(server.pending_frames(), 4);

        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| server.poll()).map(|f| (f.conn_id, f.request_id)).collect();
        assert_eq!(order, vec![(1, 1), (2, 1), (1, 2), (1, 3)]);
        assert_eq!(server.pending_frames(), 0);
        let stats = server.service_stats();
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.served, 4);
        assert!(stats.busy > SimDuration::ZERO);
        assert_eq!(stats.per_connection[&1].served, 3);
        assert_eq!(stats.per_connection[&2].served, 1);
    }

    #[test]
    fn adjacent_span_frames_coalesce_into_one_device_read() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 1, "coalesced service run over the archive");
        let span = server.record_span(id).unwrap();
        let chunk = 8u64;

        // Serve the same four adjacent spans once as queued frames and once
        // as individual blocking requests; the queued run must coalesce.
        let mut solo = ObjectServer::new();
        let solo_id = make_published(&mut solo, 1, "coalesced service run over the archive");
        let solo_span = solo.record_span(solo_id).unwrap();
        let mut serial = SimDuration::ZERO;
        for i in 0..4 {
            let (_, took) = solo.handle(&ServerRequest::FetchSpan {
                span: ByteSpan::at(solo_span.start + i * chunk, chunk),
            });
            serial += took;
        }

        for i in 0..4u64 {
            server
                .enqueue(Frame::request(
                    5,
                    i,
                    ServerRequest::FetchSpan { span: ByteSpan::at(span.start + i * chunk, chunk) },
                ))
                .unwrap();
        }
        let mut coalesced = SimDuration::ZERO;
        let mut frames = Vec::new();
        while let Some((frame, charge)) = server.poll_timed() {
            coalesced += charge;
            frames.push(frame);
        }
        assert_eq!(frames.len(), 4);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.request_id, i as u64);
            match &frame.payload {
                FramePayload::Response(ServerResponse::Span(bytes)) => {
                    assert_eq!(bytes.len() as u64, chunk);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(server.service_stats().coalesced_runs, 1);
        assert_eq!(server.service_stats().busy, coalesced);
        // One seek + rotation instead of four.
        assert!(
            coalesced + SimDuration::from_millis(100) < serial,
            "coalesced {coalesced} vs serial {serial}"
        );
    }

    #[test]
    fn poll_conn_serves_out_of_rotation_order() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 1, "priority service text");
        let span = server.record_span(id).unwrap();
        for conn in [1u64, 2, 3] {
            server
                .enqueue(Frame::request(
                    conn,
                    1,
                    ServerRequest::FetchSpan { span: ByteSpan::at(span.start, 4) },
                ))
                .unwrap();
        }
        // A deadline-aware scheduler pulls connection 3 first.
        let (frame, _) = server.poll_conn(3).unwrap();
        assert_eq!(frame.conn_id, 3);
        assert!(server.poll_conn(3).is_none(), "connection 3 has nothing left");
        let rest: Vec<u64> = std::iter::from_fn(|| server.poll()).map(|f| f.conn_id).collect();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn hello_and_probe_are_answered_from_memory() {
        let mut server = ObjectServer::new();
        let (resp, took) = server.handle(&ServerRequest::Hello { epoch: 0 });
        assert_eq!(resp, ServerResponse::Welcome { epoch: 0 });
        assert_eq!(took, SimDuration::ZERO);
        let (resp, took) = server.handle(&ServerRequest::Probe);
        assert_eq!(resp, ServerResponse::Busy { retry_after: SimDuration::ZERO });
        assert_eq!(took, SimDuration::ZERO);
        let (resp, took) = server.handle(&ServerRequest::Ping { nonce: 42 });
        assert_eq!(resp, ServerResponse::Pong { nonce: 42, epoch: 0 });
        assert_eq!(took, SimDuration::ZERO);
        server.restart();
        let (resp, _) = server.handle(&ServerRequest::Ping { nonce: 43 });
        assert_eq!(resp, ServerResponse::Pong { nonce: 43, epoch: 1 }, "pong reports the restart");
        // With a backlog the probe's retry hint grows.
        let id = make_published(&mut server, 1, "probe backlog");
        server.enqueue(Frame::request(1, 1, ServerRequest::FetchObject { id })).unwrap();
        let (resp, _) = server.handle(&ServerRequest::Probe);
        assert!(matches!(
            resp,
            ServerResponse::Busy { retry_after } if retry_after > SimDuration::ZERO
        ));
    }

    #[test]
    fn restart_bumps_the_epoch_and_loses_volatile_state() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 2, "durable across restart");
        server.enqueue(Frame::request(1, 1, ServerRequest::FetchObject { id })).unwrap();
        assert_eq!(server.epoch(), 0);
        assert_eq!(server.pending_frames(), 1);
        server.restart();
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.pending_frames(), 0, "queued work is volatile");
        assert!(server.poll().is_none(), "staged responses are volatile");
        // The archive, index, and residents are durable.
        let (resp, _) = server.handle(&ServerRequest::FetchObject { id });
        assert!(matches!(resp, ServerResponse::Object(_)));
        let (resp, _) = server.handle(&ServerRequest::Query { keywords: vec!["durable".into()] });
        assert_eq!(resp, ServerResponse::Hits(vec![id]));
    }

    #[test]
    fn restart_wakes_exactly_the_connections_that_lost_frames() {
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 4, "wake list across restart");
        // Connection 9's frame is served and collected before the restart:
        // it is on the wake list (arrival + landing both mark it) but has
        // nothing queued or staged left to lose.
        server.enqueue(Frame::request(9, 1, ServerRequest::FetchObject { id })).unwrap();
        let (served, _) = server.poll_conn(9).expect("connection 9's frame was served");
        assert_eq!(served.conn_id, 9);
        // Connections 1 and 2 still have queued frames when the crash hits.
        server.enqueue(Frame::request(1, 1, ServerRequest::FetchObject { id })).unwrap();
        server.enqueue(Frame::request(2, 1, ServerRequest::FetchObject { id })).unwrap();
        server.restart();
        let woken = server.take_woken();
        assert_eq!(
            woken,
            vec![1, 2],
            "exactly the connections whose frames were dropped are woken"
        );
        assert!(
            server.take_woken().is_empty() && server.poll().is_none(),
            "the rebuilt wake list drains once and nothing is pollable"
        );
    }

    #[test]
    fn shed_prefetches_get_busy_replies_through_the_service_loop() {
        use minos_net::Priority;
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 3, "bounded queue content");
        let span = server.record_span(id).unwrap();
        server.set_service_config(crate::service::ServiceConfig {
            per_conn_cap: 1,
            global_cap: 1,
            ..Default::default()
        });
        let fetch = ServerRequest::FetchSpan { span: ByteSpan::new(span.start, span.start + 8) };
        server.enqueue(Frame::request(1, 1, fetch.clone())).unwrap();
        server
            .enqueue(Frame::request_with_priority(1, 2, Priority::Prefetch, fetch.clone()))
            .unwrap();
        // The shed prefetch's Busy reply is collectable before any device
        // work happens.
        let (reply, charge) = server.poll_timed().unwrap();
        assert_eq!(reply.request_id, 2);
        assert_eq!(charge, SimDuration::ZERO);
        assert!(matches!(
            reply.payload,
            FramePayload::Response(ServerResponse::Busy { retry_after }) if retry_after > SimDuration::ZERO
        ));
        // The demand frame is still served normally.
        let (served, _) = server.poll_timed().unwrap();
        assert_eq!(served.request_id, 1);
        assert!(matches!(served.payload, FramePayload::Response(ServerResponse::Span(_))));
        assert_eq!(server.service_stats().shed, 1);
        server.reset_service_stats();
        assert_eq!(server.service_stats().shed, 0);
        assert_eq!(server.service_stats().queue_high_water, 0);
    }

    #[test]
    fn span_payloads_recycle_through_the_server_pool() {
        // Regression for the per-page allocation bug: a serving loop whose
        // caller returns consumed payload buffers must stop allocating
        // after the first round — later leases are pool hits.
        let mut server = ObjectServer::new();
        let id = make_published(&mut server, 1, "pooled page data ".repeat(64).as_str());
        let span = server.record_span(id).unwrap();
        let mut misses_after_first_round = 0;
        for round in 0..3 {
            for rid in 0..4u64 {
                server
                    .enqueue(Frame::request(
                        1,
                        rid,
                        ServerRequest::FetchSpan { span: ByteSpan::at(span.start + rid * 64, 64) },
                    ))
                    .unwrap();
            }
            while let Some(frame) = server.poll() {
                match frame.payload {
                    FramePayload::Response(ServerResponse::Span(bytes)) => {
                        server.recycle_payload(bytes)
                    }
                    other => panic!("expected span bytes, got {other:?}"),
                }
            }
            if round == 0 {
                misses_after_first_round = server.service_stats().pool_misses;
                assert!(misses_after_first_round > 0);
            }
        }
        let stats = server.service_stats();
        assert_eq!(
            stats.pool_misses, misses_after_first_round,
            "later rounds must not allocate: {stats:?}"
        );
        assert!(stats.pool_hits > 0, "rounds two and three lease recycled buffers: {stats:?}");
        assert_eq!(stats.payload_allocs, stats.pool_misses);
        server.reset_service_stats();
        let cleared = server.service_stats();
        assert_eq!(cleared.pool_hits, 0);
        assert_eq!(cleared.pool_misses, 0);
        assert_eq!(cleared.payload_allocs, 0);
    }

    #[test]
    fn response_frames_cannot_be_enqueued() {
        let mut server = ObjectServer::new();
        let frame = Frame::response(1, 1, ServerResponse::Span(vec![1, 2, 3]));
        assert!(matches!(server.enqueue(frame), Err(MinosError::Protocol(_))));
        assert_eq!(server.pending_frames(), 0);
        assert!(server.poll().is_none());
    }
}
