//! A compact binary codec.
//!
//! Archived MINOS objects are "the object descriptor concatenated with the
//! composition file" (§4). The descriptor is therefore a *byte format*, not
//! an in-memory structure: the same bytes are written to the archiver,
//! mailed outside the organization, and parsed back on a workstation. This
//! module provides the little-endian writer/reader the descriptor format is
//! built on: fixed-width integers, LEB128 varints, length-prefixed strings
//! and byte blocks, all with explicit error reporting on truncated or
//! malformed input.

use crate::error::{MinosError, Result};

/// Bytes an unsigned LEB128 varint occupies on the wire, computed without
/// encoding. Wire-size accounting uses this so measuring a message never
/// materializes its bytes.
pub const fn varint_len(v: u64) -> u64 {
    if v == 0 {
        return 1;
    }
    // ceil(bits / 7): each LEB128 byte carries 7 payload bits.
    (64 - v.leading_zeros() as u64).div_ceil(7)
}

/// Writes values into a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Creates an encoder that writes into `buf`, reusing its capacity.
    /// The buffer is cleared first; pair with [`Encoder::finish`] to get it
    /// back. This is how pooled transmit buffers avoid a fresh allocation
    /// per message.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint. Descriptors are dominated by small
    /// counts and offsets, so varints keep them compact.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte block.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes raw bytes with no length prefix (caller knows the framing).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
}

/// Reads values back out of a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is exhausted.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless the input is fully consumed. Descriptor parsing calls
    /// this last so that trailing garbage is detected rather than silently
    /// ignored.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(MinosError::Codec(format!("{} trailing bytes after value", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.saturating_add(n)).ok_or_else(|| {
            MinosError::Codec(format!(
                "truncated input: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ))
        })?;
        self.pos += n;
        Ok(s)
    }

    /// Reads exactly `N` bytes as a fixed-size array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| MinosError::Internal(format!("take({N}) returned a wrong-sized slice")))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian i32.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take_array()?))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(MinosError::Codec("varint overflows u64".into()));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(MinosError::Codec("varint too long".into()));
            }
        }
    }

    /// Reads a varint and converts it to usize, guarding against values that
    /// exceed the remaining input (prevents huge preallocations on corrupt
    /// data).
    pub fn get_len(&mut self) -> Result<usize> {
        let v = self.get_varint()?;
        if v > self.remaining() as u64 {
            return Err(MinosError::Codec(format!(
                "length {v} exceeds remaining input {}",
                self.remaining()
            )));
        }
        usize::try_from(v).map_err(|_| MinosError::Codec(format!("length {v} overflows usize")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| MinosError::Codec(format!("invalid utf-8 in string: {e}")))
    }

    /// Reads a length-prefixed byte block.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        Ok(self.get_bytes_ref()?.to_vec())
    }

    /// Reads a length-prefixed byte block as a borrowed span of the input.
    ///
    /// This is the zero-copy twin of [`Decoder::get_bytes`]: nested
    /// decoders (frame envelope → payload → protocol message) borrow each
    /// layer's body instead of materializing an intermediate `Vec` per
    /// layer. Truncation and length-bound checks are identical to the
    /// owned path.
    pub fn get_bytes_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a bool; any nonzero byte other than 1 is rejected so corrupt
    /// descriptors fail loudly.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(MinosError::Codec(format!("invalid bool byte {other:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_width_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(0xab);
        e.put_u16(0x1234);
        e.put_u32(0xdead_beef);
        e.put_u64(0x0123_4567_89ab_cdef);
        e.put_i32(-42);
        e.put_bool(true);
        e.put_bool(false);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xab);
        assert_eq!(d.get_u16().unwrap(), 0x1234);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.get_i32().unwrap(), -42);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn varint_known_encodings() {
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (u64::MAX, &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]),
        ];
        for &(value, expected) in cases {
            let mut e = Encoder::new();
            e.put_varint(value);
            assert_eq!(e.finish(), expected, "encoding of {value}");
            let mut d = Decoder::new(expected);
            assert_eq!(d.get_varint().unwrap(), value);
        }
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut e = Encoder::new();
        e.put_str("MINOS: Μίνως");
        e.put_bytes(&[1, 2, 3]);
        e.put_str("");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str().unwrap(), "MINOS: Μίνως");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_str().unwrap(), "");
        d.expect_end().unwrap();
    }

    #[test]
    fn borrowed_bytes_match_owned_bytes() {
        let mut e = Encoder::new();
        e.put_bytes(&[9, 8, 7]);
        e.put_bytes(&[]);
        let bytes = e.finish();
        let mut owned = Decoder::new(&bytes);
        let mut borrowed = Decoder::new(&bytes);
        assert_eq!(owned.get_bytes().unwrap(), borrowed.get_bytes_ref().unwrap());
        assert_eq!(owned.get_bytes().unwrap(), borrowed.get_bytes_ref().unwrap());
        borrowed.expect_end().unwrap();
        // Truncated input fails the borrowed path with the same typed
        // error as the owned path.
        let mut cut = Decoder::new(&bytes[..2]);
        assert!(matches!(cut.get_bytes_ref(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn reused_encoder_clears_and_keeps_capacity() {
        let mut first = Encoder::new();
        first.put_bytes(&[1; 64]);
        let buf = first.finish();
        let cap = buf.capacity();
        let mut again = Encoder::reuse(buf);
        again.put_u8(5);
        let out = again.finish();
        assert_eq!(out, vec![5]);
        assert_eq!(out.capacity(), cap, "reuse keeps the allocation");
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut e = Encoder::new();
        e.put_u32(7);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..2]);
        assert!(matches!(d.get_u32(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn corrupt_length_is_an_error() {
        // Varint length claims 1000 bytes but only 2 follow.
        let mut e = Encoder::new();
        e.put_varint(1000);
        e.put_raw(&[0, 0]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_str(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.get_bool(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let bytes = [0xff; 11];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_varint(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn expect_end_detects_trailing_bytes() {
        let mut d = Decoder::new(&[1, 2]);
        let _ = d.get_u8().unwrap();
        assert!(matches!(d.expect_end(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_str(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn varint_len_matches_known_encodings() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_varint(v);
            assert_eq!(varint_len(v), e.finish().len() as u64, "varint_len({v})");
        }
    }

    proptest! {
        #[test]
        fn varint_len_matches_encoding(v in any::<u64>()) {
            let mut e = Encoder::new();
            e.put_varint(v);
            prop_assert_eq!(varint_len(v), e.finish().len() as u64);
        }

        #[test]
        fn varint_round_trips(v in any::<u64>()) {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.finish();
            prop_assert!(bytes.len() <= 10);
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_varint().unwrap(), v);
            d.expect_end().unwrap();
        }

        #[test]
        fn string_round_trips(s in ".*") {
            let mut e = Encoder::new();
            e.put_str(&s);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_str().unwrap(), s);
        }

        #[test]
        fn mixed_sequence_round_trips(
            ints in proptest::collection::vec(any::<u64>(), 0..32),
            blob in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut e = Encoder::new();
            e.put_varint(ints.len() as u64);
            for &v in &ints { e.put_varint(v); }
            e.put_bytes(&blob);
            let bytes = e.finish();

            let mut d = Decoder::new(&bytes);
            let n = d.get_varint().unwrap() as usize;
            let got: Vec<u64> = (0..n).map(|_| d.get_varint().unwrap()).collect();
            prop_assert_eq!(got, ints);
            prop_assert_eq!(d.get_bytes().unwrap(), blob);
            d.expect_end().unwrap();
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut d = Decoder::new(&bytes);
            // Whatever the bytes are, decoding returns Ok or Err, never panics.
            let _ = d.get_varint();
            let _ = d.get_str();
            let _ = d.get_u32();
            let _ = d.get_bool();
        }
    }
}
