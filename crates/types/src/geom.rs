//! Integer screen geometry.
//!
//! MINOS targets a bitmapped workstation display; views on large images are
//! "a rectangle overlaid on an image" (§2) and relevances to images are
//! "closed polygons displayed at the top of the image". All geometry in the
//! reproduction is integer pixel geometry on that model.

/// A pixel position. `x` grows rightward, `y` grows downward, matching a
/// raster display.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate in pixels.
    pub x: i32,
    /// Vertical coordinate in pixels.
    pub y: i32,
}

impl Point {
    /// Origin (0, 0).
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Component-wise translation.
    pub const fn offset(self, dx: i32, dy: i32) -> Self {
        Self { x: self.x + dx, y: self.y + dy }
    }

    /// Squared Euclidean distance to another point (avoids floats; used for
    /// nearest-object label lookup).
    pub fn distance_sq(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }
}

/// A pixel extent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Size {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Size {
    /// Creates a size.
    pub const fn new(width: u32, height: u32) -> Self {
        Self { width, height }
    }

    /// Pixel area.
    pub const fn area(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether either dimension is zero.
    pub const fn is_empty(self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Scales both dimensions by a rational factor `num/den`, rounding down
    /// but never below 1 for a non-empty size. Used when views are "shrunk or
    /// expanded by small quantities at a time" (§2) and when producing
    /// miniatures.
    pub fn scale(self, num: u32, den: u32) -> Size {
        assert!(den > 0, "scale denominator must be positive");
        let scale_dim = |d: u32| -> u32 {
            if d == 0 {
                0
            } else {
                ((d as u64 * num as u64) / den as u64).max(1) as u32
            }
        };
        Size::new(scale_dim(self.width), scale_dim(self.height))
    }
}

/// An axis-aligned pixel rectangle, defined by its top-left corner and size.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Rect {
    /// Top-left corner.
    pub origin: Point,
    /// Extent.
    pub size: Size,
}

impl Rect {
    /// Creates a rectangle from corner coordinates and size.
    pub const fn new(x: i32, y: i32, width: u32, height: u32) -> Self {
        Self { origin: Point::new(x, y), size: Size::new(width, height) }
    }

    /// Creates a rectangle at the origin with the given size.
    pub const fn of_size(size: Size) -> Self {
        Self { origin: Point::ORIGIN, size }
    }

    /// Left edge.
    pub const fn left(self) -> i32 {
        self.origin.x
    }

    /// Top edge.
    pub const fn top(self) -> i32 {
        self.origin.y
    }

    /// One past the right edge.
    pub const fn right(self) -> i32 {
        self.origin.x + self.size.width as i32
    }

    /// One past the bottom edge.
    pub const fn bottom(self) -> i32 {
        self.origin.y + self.size.height as i32
    }

    /// Pixel area.
    pub const fn area(self) -> u64 {
        self.size.area()
    }

    /// Whether the rectangle covers no pixels.
    pub const fn is_empty(self) -> bool {
        self.size.is_empty()
    }

    /// Whether `p` lies inside the rectangle (half-open on right/bottom).
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.left() && p.x < self.right() && p.y >= self.top() && p.y < self.bottom()
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(self, other: Rect) -> bool {
        other.is_empty()
            || (other.left() >= self.left()
                && other.right() <= self.right()
                && other.top() >= self.top()
                && other.bottom() <= self.bottom())
    }

    /// Intersection of two rectangles; `None` when disjoint.
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        let left = self.left().max(other.left());
        let top = self.top().max(other.top());
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if left < right && top < bottom {
            Some(Rect::new(left, top, (right - left) as u32, (bottom - top) as u32))
        } else {
            None
        }
    }

    /// Whether two rectangles overlap in at least one pixel.
    pub fn intersects(self, other: Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Translates the rectangle.
    pub fn translate(self, dx: i32, dy: i32) -> Rect {
        Rect { origin: self.origin.offset(dx, dy), size: self.size }
    }

    /// Moves the rectangle so its top-left corner is at `p`.
    pub fn at(self, p: Point) -> Rect {
        Rect { origin: p, size: self.size }
    }

    /// Clamps the rectangle so that it lies within `bounds`, preserving its
    /// size when possible (shrinking only if it is larger than the bounds).
    /// This is how a view is kept on top of its image as the user moves it.
    pub fn clamp_within(self, bounds: Rect) -> Rect {
        let width = self.size.width.min(bounds.size.width);
        let height = self.size.height.min(bounds.size.height);
        let max_x = bounds.right() - width as i32;
        let max_y = bounds.bottom() - height as i32;
        let x = self.left().clamp(bounds.left(), max_x.max(bounds.left()));
        let y = self.top().clamp(bounds.top(), max_y.max(bounds.top()));
        Rect::new(x, y, width, height)
    }

    /// Centre point (rounded toward the top-left for even sizes).
    pub fn center(self) -> Point {
        Point::new(
            self.left() + (self.size.width / 2) as i32,
            self.top() + (self.size.height / 2) as i32,
        )
    }
}

/// Tests whether point `p` lies inside the closed polygon `vertices` using
/// the even-odd rule. Polygons mark relevances on images (§2: "Relevances to
/// images are indicated by closed polygons displayed at the top of the
/// image").
pub fn polygon_contains(vertices: &[Point], p: Point) -> bool {
    if vertices.len() < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = vertices.len() - 1;
    for i in 0..vertices.len() {
        let (vi, vj) = (vertices[i], vertices[j]);
        // Ray cast to the right; count crossings of edges that straddle p.y.
        if (vi.y > p.y) != (vj.y > p.y) {
            let dy = (vj.y - vi.y) as i64;
            let t_num = (p.y - vi.y) as i64;
            let x_cross = vi.x as i64 + t_num * (vj.x - vi.x) as i64 / dy;
            if (p.x as i64) < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Axis-aligned bounding box of a set of points; `None` when empty.
pub fn bounding_box(points: &[Point]) -> Option<Rect> {
    let first = points.first()?;
    let mut min_x = first.x;
    let mut min_y = first.y;
    let mut max_x = first.x;
    let mut max_y = first.y;
    for p in &points[1..] {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    Some(Rect::new(min_x, min_y, (max_x - min_x + 1) as u32, (max_y - min_y + 1) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_edges() {
        let r = Rect::new(10, 20, 30, 40);
        assert_eq!((r.left(), r.top(), r.right(), r.bottom()), (10, 20, 40, 60));
        assert_eq!(r.area(), 1200);
    }

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(9, 9)));
        assert!(!r.contains(Point::new(10, 9)));
        assert!(!r.contains(Point::new(9, 10)));
        assert!(!r.contains(Point::new(-1, 5)));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(b), Some(Rect::new(5, 5, 5, 5)));
        assert!(a.intersects(b));
    }

    #[test]
    fn intersect_disjoint_and_touching() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.intersect(Rect::new(20, 20, 5, 5)), None);
        // Rectangles sharing only an edge do not intersect (half-open).
        assert_eq!(a.intersect(Rect::new(10, 0, 5, 10)), None);
    }

    #[test]
    fn intersect_is_commutative() {
        let a = Rect::new(-3, -3, 8, 8);
        let b = Rect::new(0, 0, 10, 2);
        assert_eq!(a.intersect(b), b.intersect(a));
    }

    #[test]
    fn contains_rect_accepts_empty() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.contains_rect(Rect::new(100, 100, 0, 0)));
        assert!(a.contains_rect(Rect::new(2, 2, 5, 5)));
        assert!(!a.contains_rect(Rect::new(2, 2, 20, 5)));
    }

    #[test]
    fn clamp_within_keeps_size() {
        let bounds = Rect::new(0, 0, 100, 100);
        let v = Rect::new(95, -5, 20, 20);
        let c = v.clamp_within(bounds);
        assert_eq!(c, Rect::new(80, 0, 20, 20));
        assert!(bounds.contains_rect(c));
    }

    #[test]
    fn clamp_within_shrinks_oversized() {
        let bounds = Rect::new(0, 0, 50, 50);
        let v = Rect::new(-10, -10, 200, 30);
        let c = v.clamp_within(bounds);
        assert_eq!(c.size, Size::new(50, 30));
        assert!(bounds.contains_rect(c));
    }

    #[test]
    fn size_scale_rounds_down_but_not_to_zero() {
        assert_eq!(Size::new(100, 50).scale(1, 2), Size::new(50, 25));
        assert_eq!(Size::new(3, 3).scale(1, 10), Size::new(1, 1));
        assert_eq!(Size::new(0, 10).scale(1, 2), Size::new(0, 5));
    }

    #[test]
    fn polygon_contains_square() {
        let square = [Point::new(0, 0), Point::new(10, 0), Point::new(10, 10), Point::new(0, 10)];
        assert!(polygon_contains(&square, Point::new(5, 5)));
        assert!(!polygon_contains(&square, Point::new(15, 5)));
        assert!(!polygon_contains(&square, Point::new(-1, 5)));
    }

    #[test]
    fn polygon_contains_concave() {
        // An L-shape: the notch at top-right must be outside.
        let l_shape = [
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 4),
            Point::new(8, 4),
            Point::new(8, 8),
            Point::new(0, 8),
        ];
        assert!(polygon_contains(&l_shape, Point::new(2, 2)));
        assert!(polygon_contains(&l_shape, Point::new(6, 6)));
        assert!(!polygon_contains(&l_shape, Point::new(6, 2)));
    }

    #[test]
    fn polygon_degenerate_is_empty() {
        assert!(!polygon_contains(&[], Point::ORIGIN));
        assert!(!polygon_contains(&[Point::ORIGIN, Point::new(5, 5)], Point::new(2, 2)));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [Point::new(3, 7), Point::new(-2, 4), Point::new(9, 5)];
        assert_eq!(bounding_box(&pts), Some(Rect::new(-2, 4, 12, 4)));
        assert_eq!(bounding_box(&[]), None);
    }

    #[test]
    fn center_of_rect() {
        assert_eq!(Rect::new(0, 0, 10, 10).center(), Point::new(5, 5));
        assert_eq!(Rect::new(2, 2, 3, 3).center(), Point::new(3, 3));
    }

    #[test]
    fn distance_sq() {
        assert_eq!(Point::new(0, 0).distance_sq(Point::new(3, 4)), 25);
    }
}
