//! Shared vocabulary for the MINOS reproduction.
//!
//! Every other crate in the workspace builds on the small set of concepts
//! defined here: strongly-typed identifiers, integer screen geometry, a
//! discrete simulated clock (the reproduction's substitute for wall-clock
//! audio/disk/network hardware), byte/character/time spans, the common error
//! type, and the hand-rolled binary codec used by object descriptors.
//!
//! The crate is dependency-free so that substrates can be tested in
//! isolation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod geom;
pub mod id;
pub mod span;
pub mod time;

pub use codec::{varint_len, Decoder, Encoder};
pub use error::{MinosError, Result};
pub use geom::{bounding_box, polygon_contains, Point, Rect, Size};
pub use id::{DataFileId, ObjectId, PageNumber, PartIndex, SegmentId, VersionId};
pub use span::{ByteSpan, CharSpan, TimeSpan};
pub use time::{SimClock, SimDuration, SimInstant};
