//! Spans: half-open intervals over bytes, characters and simulated time.
//!
//! The object descriptor "points either to offsets within the composition
//! file or to offsets within the archiver" (§4) — those are [`ByteSpan`]s.
//! Logical messages attach to text segments identified by "two points
//! \[which\] identify the beginning and the end" (§2) — those are
//! [`CharSpan`]s. Voice segments and audio pages are [`TimeSpan`]s.

use crate::time::{SimDuration, SimInstant};
use std::fmt;

macro_rules! span_common {
    ($name:ident, $unit:ty, $len:ty) => {
        impl $name {
            /// Creates a span. Panics if `start > end`.
            pub fn new(start: $unit, end: $unit) -> Self {
                assert!(start <= end, concat!(stringify!($name), ": start must be <= end"));
                Self { start, end }
            }

            /// An empty span at `at`.
            pub fn empty_at(at: $unit) -> Self {
                Self { start: at, end: at }
            }

            /// Whether the span covers nothing.
            pub fn is_empty(&self) -> bool {
                self.start == self.end
            }

            /// Whether `pos` falls inside the half-open interval.
            pub fn contains(&self, pos: $unit) -> bool {
                pos >= self.start && pos < self.end
            }

            /// Whether the two spans share any position. Empty spans overlap
            /// nothing. Overlap matters because "voice logical messages may
            /// be attached to overlapping text segments" (§2) and the
            /// triggering engine must detect entry into each.
            pub fn overlaps(&self, other: &Self) -> bool {
                !self.is_empty()
                    && !other.is_empty()
                    && self.start < other.end
                    && other.start < self.end
            }

            /// Whether `other` lies entirely within `self`.
            pub fn contains_span(&self, other: &Self) -> bool {
                other.start >= self.start && other.end <= self.end
            }
        }
    };
}

/// Half-open interval of byte offsets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct ByteSpan {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

span_common!(ByteSpan, u64, u64);

impl ByteSpan {
    /// Creates a span from a start offset and a length.
    pub fn at(start: u64, len: u64) -> Self {
        Self { start, end: start + len }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// The span shifted `delta` bytes later. Archival "increments the
    /// offsets of the descriptor by the offset where the composition file is
    /// placed within the archiver" (§4) — this is that operation.
    pub fn rebased(self, delta: u64) -> ByteSpan {
        ByteSpan { start: self.start + delta, end: self.end + delta }
    }
}

impl fmt::Display for ByteSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes[{}..{})", self.start, self.end)
    }
}

/// Half-open interval of character (not byte) offsets within a text part.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct CharSpan {
    /// First character covered.
    pub start: u32,
    /// One past the last character covered.
    pub end: u32,
}

span_common!(CharSpan, u32, u32);

impl CharSpan {
    /// Creates a span from a start offset and a length.
    pub fn at(start: u32, len: u32) -> Self {
        Self { start, end: start + len }
    }

    /// Number of characters covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }
}

impl fmt::Display for CharSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chars[{}..{})", self.start, self.end)
    }
}

/// Half-open interval of simulated time inside a voice part, measured from
/// the start of that voice part.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct TimeSpan {
    /// Start instant (relative to the containing voice part).
    pub start: SimInstant,
    /// End instant (exclusive).
    pub end: SimInstant,
}

impl TimeSpan {
    /// Creates a span. Panics if `start > end`.
    pub fn new(start: SimInstant, end: SimInstant) -> Self {
        assert!(start <= end, "TimeSpan: start must be <= end");
        Self { start, end }
    }

    /// A span starting at `start` lasting `d`.
    pub fn starting_at(start: SimInstant, d: SimDuration) -> Self {
        Self { start, end: start + d }
    }

    /// An empty span at `at`.
    pub fn empty_at(at: SimInstant) -> Self {
        Self { start: at, end: at }
    }

    /// Length of the span.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Whether the span covers no time.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t` falls inside the half-open interval.
    pub fn contains(&self, t: SimInstant) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two spans share any instant. Empty spans overlap nothing.
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_span(&self, other: &TimeSpan) -> bool {
        other.start >= self.start && other.end <= self.end
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time[{}..{})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_span_basics() {
        let s = ByteSpan::at(10, 5);
        assert_eq!(s, ByteSpan::new(10, 15));
        assert_eq!(s.len(), 5);
        assert!(s.contains(10));
        assert!(s.contains(14));
        assert!(!s.contains(15));
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "bytes[10..15)");
    }

    #[test]
    fn byte_span_rebase() {
        let s = ByteSpan::at(10, 5).rebased(100);
        assert_eq!(s, ByteSpan::new(110, 115));
    }

    #[test]
    #[should_panic(expected = "start must be <= end")]
    fn byte_span_rejects_inverted() {
        let _ = ByteSpan::new(5, 3);
    }

    #[test]
    fn char_span_overlap_rules() {
        let a = CharSpan::new(0, 10);
        let b = CharSpan::new(5, 15);
        let c = CharSpan::new(10, 20);
        let e = CharSpan::empty_at(5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching, half-open: no overlap
        assert!(!a.overlaps(&e)); // empty spans overlap nothing
        assert!(a.contains_span(&CharSpan::new(2, 8)));
        assert!(!a.contains_span(&b));
    }

    #[test]
    fn time_span_duration() {
        let s = TimeSpan::starting_at(SimInstant::from_micros(100), SimDuration::from_micros(50));
        assert_eq!(s.duration(), SimDuration::from_micros(50));
        assert!(s.contains(SimInstant::from_micros(100)));
        assert!(!s.contains(SimInstant::from_micros(150)));
    }

    #[test]
    fn time_span_overlap() {
        let a = TimeSpan::new(SimInstant::from_micros(0), SimInstant::from_micros(10));
        let b = TimeSpan::new(SimInstant::from_micros(9), SimInstant::from_micros(20));
        let c = TimeSpan::new(SimInstant::from_micros(10), SimInstant::from_micros(20));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(TimeSpan::empty_at(SimInstant::from_micros(5)).is_empty());
    }

    #[test]
    fn span_empty_at_contains_nothing() {
        let e = ByteSpan::empty_at(7);
        assert!(!e.contains(7));
        assert!(e.is_empty());
    }
}
