//! Strongly typed identifiers.
//!
//! The paper assigns "a unique object identifier" to every multimedia object
//! (§2) and refers to parts, segments, data files and versions throughout.
//! Newtypes keep those id spaces from being confused with one another.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw identifier value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw identifier value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Unique identifier of a multimedia object (§2: "A unique object
    /// identifier is associated with each multimedia object").
    ObjectId,
    "obj#"
);

id_type!(
    /// Identifier of a segment (text segment, voice segment or image) within
    /// a multimedia object part.
    SegmentId,
    "seg#"
);

id_type!(
    /// Identifier of a data file inside a multimedia object file (§4: the
    /// editing-state object is "a set of files organized within a
    /// directory").
    DataFileId,
    "file#"
);

id_type!(
    /// Version of an archived object. The archiver provides "version
    /// control" (§5); archived objects are immutable, so a new version is a
    /// new appended object that shares data with its predecessor.
    VersionId,
    "v"
);

/// Index of a part within a multimedia object (0-based position inside the
/// object text part, voice part or image part collections).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PartIndex(pub u32);

impl PartIndex {
    /// Wraps a raw part index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw index as a `usize` for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part[{}]", self.0)
    }
}

/// A 1-based page number as shown to the user.
///
/// Visual pages and audio pages are both numbered from 1 in menu options
/// ("find a page with a given page number", §2). Internally the engines use
/// 0-based indices; this type is the user-facing form and the conversion
/// point between the two.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageNumber(pub u32);

impl PageNumber {
    /// First page.
    pub const FIRST: PageNumber = PageNumber(1);

    /// Creates a page number from a 1-based value. Returns `None` for 0,
    /// which is not a valid page number.
    pub fn new(one_based: u32) -> Option<Self> {
        (one_based >= 1).then_some(Self(one_based))
    }

    /// Creates a page number from a 0-based engine index.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32 + 1)
    }

    /// The 0-based engine index of this page.
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The page `n` pages forward, saturating.
    pub fn forward(self, n: u32) -> Self {
        Self(self.0.saturating_add(n))
    }

    /// The page `n` pages back, saturating at the first page.
    pub fn back(self, n: u32) -> Self {
        Self(self.0.saturating_sub(n).max(1))
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {}", self.0)
    }
}

/// Allocates monotonically increasing identifiers for one id space.
///
/// Formatter and archiver components use one allocator per id space so that
/// identifiers are never reused within a run, mirroring the paper's unique
/// object identifiers.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator that starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator that starts at `first`.
    pub fn starting_at(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next raw identifier.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Returns the next identifier wrapped in the requested id type.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(ObjectId::new(7).to_string(), "obj#7");
        assert_eq!(SegmentId::new(3).to_string(), "seg#3");
        assert_eq!(VersionId::new(2).to_string(), "v2");
        assert_eq!(format!("{:?}", DataFileId::new(9)), "file#9");
    }

    #[test]
    fn id_round_trips_raw_value() {
        let id = ObjectId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(ObjectId::new(42), id);
    }

    #[test]
    fn page_number_rejects_zero() {
        assert_eq!(PageNumber::new(0), None);
        assert_eq!(PageNumber::new(1), Some(PageNumber::FIRST));
    }

    #[test]
    fn page_number_index_round_trip() {
        for i in 0..100 {
            assert_eq!(PageNumber::from_index(i).index(), i);
        }
    }

    #[test]
    fn page_number_back_saturates_at_first_page() {
        let p = PageNumber::new(3).unwrap();
        assert_eq!(p.back(2), PageNumber::FIRST);
        assert_eq!(p.back(200), PageNumber::FIRST);
        assert_eq!(p.forward(2), PageNumber::new(5).unwrap());
    }

    #[test]
    fn allocator_is_monotonic_and_dense() {
        let mut alloc = IdAllocator::new();
        let a: ObjectId = alloc.next_id();
        let b: ObjectId = alloc.next_id();
        let c: ObjectId = alloc.next_id();
        assert_eq!((a.raw(), b.raw(), c.raw()), (0, 1, 2));
    }

    #[test]
    fn allocator_starting_at_respects_origin() {
        let mut alloc = IdAllocator::starting_at(100);
        assert_eq!(alloc.next_raw(), 100);
        assert_eq!(alloc.next_raw(), 101);
    }

    #[test]
    fn part_index_as_usize() {
        assert_eq!(PartIndex::new(4).as_usize(), 4);
        assert_eq!(PartIndex::new(4).to_string(), "part[4]");
    }
}
