//! The common error type.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, MinosError>;

/// Errors surfaced by MINOS components.
///
/// Variants are grouped by the subsystem that raises them. The presentation
/// manager converts most of these into disabled menu options rather than
/// surfacing them to the user — the paper's interface never shows an
/// unavailable operation ("The menu options which are displayed define the
/// set of available operations", §2) — but library callers see them as
/// errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinosError {
    /// A referenced object does not exist in the archiver or workstation
    /// store.
    UnknownObject(String),
    /// A referenced part/segment/data file does not exist within an object.
    UnknownComponent(String),
    /// The requested operation is not available for this object (e.g.
    /// logical browsing on an object whose logical units were never
    /// identified, §2).
    OperationUnavailable(String),
    /// The object is in the wrong state (browsing requires archived state;
    /// editing requires editing state, §2/§4).
    WrongState(String),
    /// A synthesis-file or markup parse error (line number + message).
    Parse {
        /// 1-based line where the problem was found.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// A malformed binary descriptor or codec failure.
    Codec(String),
    /// A frame whose integrity check failed: the bytes were altered in
    /// transit (bit flip, truncation past the checksum). Distinct from
    /// [`MinosError::Codec`] so transports can count and retry corruption
    /// without masking genuine encoding bugs.
    Corrupt(String),
    /// A storage-device failure (out of space on the optical disk, read past
    /// end of device, write to write-once sector).
    Storage(String),
    /// A network/protocol failure between workstation and server.
    Protocol(String),
    /// A geometric argument was invalid (view outside image, empty page
    /// size, ...).
    Geometry(String),
    /// An invariant that should be locally impossible was violated; carries
    /// diagnostics.
    Internal(String),
}

impl MinosError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: u32, message: impl Into<String>) -> Self {
        MinosError::Parse { line, message: message.into() }
    }
}

impl fmt::Display for MinosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinosError::UnknownObject(s) => write!(f, "unknown object: {s}"),
            MinosError::UnknownComponent(s) => write!(f, "unknown component: {s}"),
            MinosError::OperationUnavailable(s) => write!(f, "operation unavailable: {s}"),
            MinosError::WrongState(s) => write!(f, "wrong object state: {s}"),
            MinosError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            MinosError::Codec(s) => write!(f, "codec error: {s}"),
            MinosError::Corrupt(s) => write!(f, "corrupt frame: {s}"),
            MinosError::Storage(s) => write!(f, "storage error: {s}"),
            MinosError::Protocol(s) => write!(f, "protocol error: {s}"),
            MinosError::Geometry(s) => write!(f, "geometry error: {s}"),
            MinosError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for MinosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(MinosError::UnknownObject("obj#9".into()).to_string(), "unknown object: obj#9");
        assert_eq!(
            MinosError::parse(12, "unknown tag .xx").to_string(),
            "parse error at line 12: unknown tag .xx"
        );
    }

    #[test]
    fn corrupt_is_distinct_from_codec() {
        let corrupt = MinosError::Corrupt("crc mismatch".into());
        assert_eq!(corrupt.to_string(), "corrupt frame: crc mismatch");
        assert_ne!(corrupt, MinosError::Codec("crc mismatch".into()));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&MinosError::Storage("disk full".into()));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(MinosError::Codec("x".into()), MinosError::Codec("x".into()));
        assert_ne!(MinosError::Codec("x".into()), MinosError::Codec("y".into()));
    }
}
