//! The simulated clock.
//!
//! The original MINOS ran against real hardware: voice boards played samples
//! in real time, optical disks imposed seek and rotation delays, Ethernet
//! links imposed transfer times. The reproduction replaces all of those with
//! a single discrete simulated clock with microsecond resolution. Device
//! models *charge* durations to the clock; browsing engines *schedule*
//! against it. Because the clock is explicit, every experiment is
//! deterministic and runs as fast as the host CPU allows while still
//! reporting hardware-faithful latencies.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Creates a duration from a widened microsecond count, saturating at
    /// `u64::MAX` microseconds (~584,000 years of simulated time).
    ///
    /// Device and link models widen to `u128` for intermediate arithmetic
    /// (`bytes * 1_000_000` overflows `u64` past ~18 TB — the original
    /// `Link::transfer_cost` bug); this is the one sanctioned way back to
    /// a `SimDuration`, and the unit-safety lint (`U001`) flags any raw
    /// `as u64` narrowing that bypasses it.
    pub const fn from_micros_saturating(us: u128) -> Self {
        if us > u64::MAX as u128 {
            Self(u64::MAX)
        } else {
            Self(us as u64)
        }
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (rounded down).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked scaling by a rational factor, rounding to nearest.
    pub fn mul_ratio(self, num: u64, den: u64) -> SimDuration {
        assert!(den > 0, "ratio denominator must be positive");
        SimDuration((self.0.saturating_mul(num) + den / 2) / den)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A point on the simulated timeline, in microseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// Simulation start.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant at the given microsecond offset.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier instant.
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("instant ordering violated"))
    }

    /// Saturating duration since another instant (zero if `other` is later).
    pub fn saturating_since(self, other: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_micros())
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// The simulation clock.
///
/// A `SimClock` only ever moves forward. Components either `advance` it by a
/// charged duration (a disk transfer, a link delay, playing an audio page) or
/// `advance_to` a scheduled instant (discrete-event simulation in the server
/// queueing experiments).
#[derive(Debug, Default, Clone)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now = self.now + d;
        self.now
    }

    /// Advances the clock to `t`. Panics if `t` is in the past: simulated
    /// time never rewinds.
    pub fn advance_to(&mut self, t: SimInstant) {
        assert!(t >= self.now, "simulated clock cannot move backwards");
        self.now = t;
    }

    /// Advances to `t` only if `t` is later than now (convenient when
    /// merging independent event streams).
    pub fn advance_to_at_least(&mut self, t: SimInstant) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Advances through one overlapped fetch/presentation step and returns
    /// the *stall*: the fetch time the presentation could not hide.
    ///
    /// Anticipatory sessions (§5) fetch the next resources while the
    /// current ones present. Both proceed concurrently, so the clock moves
    /// by the longer of the two; whatever fetch time exceeds the
    /// presentation window is the time the user actually waits, and
    /// sessions sum these stalls as their continuity metric.
    pub fn advance_overlapped(
        &mut self,
        fetch: SimDuration,
        presentation: SimDuration,
    ) -> SimDuration {
        self.advance(fetch.max(presentation));
        fetch.saturating_sub(presentation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn from_micros_saturating_clamps_widened_counts() {
        assert_eq!(SimDuration::from_micros_saturating(0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_saturating(1_500), SimDuration::from_micros(1_500));
        assert_eq!(
            SimDuration::from_micros_saturating(u64::MAX as u128),
            SimDuration::from_micros(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_micros_saturating(u128::MAX),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn mul_ratio_rounds_to_nearest() {
        assert_eq!(SimDuration::from_micros(10).mul_ratio(1, 3), SimDuration::from_micros(3));
        assert_eq!(SimDuration::from_micros(10).mul_ratio(1, 4), SimDuration::from_micros(3)); // 2.5 -> 3
        assert_eq!(SimDuration::from_micros(100).mul_ratio(3, 2), SimDuration::from_micros(150));
    }

    #[test]
    fn instant_ordering_and_since() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_millis(5);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), SimDuration::from_millis(5));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_millis(1));
        let t = clock.now();
        clock.advance_to(t + SimDuration::from_millis(2));
        assert_eq!(clock.now().as_micros(), 3_000);
        clock.advance_to_at_least(SimInstant::from_micros(1_000)); // in the past: no-op
        assert_eq!(clock.now().as_micros(), 3_000);
    }

    #[test]
    fn overlapped_advance_reports_stall() {
        let mut clock = SimClock::new();
        // Fetch longer than presentation: clock moves by the fetch, the
        // excess is the stall.
        let stall =
            clock.advance_overlapped(SimDuration::from_millis(50), SimDuration::from_millis(30));
        assert_eq!(stall, SimDuration::from_millis(20));
        assert_eq!(clock.now().as_micros(), 50_000);
        // Fetch fully hidden behind presentation: no stall, clock moves by
        // the presentation.
        let stall =
            clock.advance_overlapped(SimDuration::from_millis(10), SimDuration::from_millis(40));
        assert_eq!(stall, SimDuration::ZERO);
        assert_eq!(clock.now().as_micros(), 90_000);
        // Equal durations: perfectly overlapped.
        let stall =
            clock.advance_overlapped(SimDuration::from_millis(5), SimDuration::from_millis(5));
        assert_eq!(stall, SimDuration::ZERO);
        assert_eq!(clock.now().as_micros(), 95_000);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_rewind() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_millis(2));
        clock.advance_to(SimInstant::from_micros(500));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.500s");
        assert_eq!(SimInstant::from_micros(42).to_string(), "t+42us");
    }
}
