//! Shared workload builders and Criterion configuration for the MINOS
//! benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md's index:
//! it first *prints the series* the experiment reports (the numbers
//! EXPERIMENTS.md records) and then registers Criterion timing groups for
//! the code paths involved. Timing settings are kept small so the full
//! `cargo bench` run finishes in minutes.

use criterion::Criterion;
use minos_corpus::objects::archived_form;
use minos_object::MultimediaObject;
use minos_server::ObjectServer;
use minos_types::ObjectId;
use std::time::Duration;

/// Criterion tuned for a quick full-suite run.
pub fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .configure_from_args()
}

/// Publishes `objects` on a fresh server, returning it with the archive
/// base of each object.
pub fn server_with(objects: Vec<MultimediaObject>) -> (ObjectServer, Vec<(ObjectId, u64)>) {
    let mut server = ObjectServer::new();
    let mut bases = Vec::new();
    for obj in objects {
        let archived = archived_form(&obj);
        let receipt = server.publish(obj.clone(), &archived).expect("publish");
        bases.push((obj.id, receipt.span.start));
    }
    (server, bases)
}

/// A standard mixed archive of `n` objects (reports, maps, documents).
pub fn mixed_archive(n: u64) -> Vec<MultimediaObject> {
    let mut out = Vec::new();
    let mut next_id = 1u64;
    for i in 0..n {
        match i % 3 {
            0 => {
                out.push(minos_corpus::medical_report(ObjectId::new(next_id), i));
                next_id += 1;
            }
            1 => {
                out.push(minos_corpus::office_document(ObjectId::new(next_id), i, 3));
                next_id += 1;
            }
            _ => {
                let (parent, overlays) = minos_corpus::subway_map_object(
                    ObjectId::new(next_id),
                    ObjectId::new(next_id + 1),
                    ObjectId::new(next_id + 2),
                    i,
                );
                next_id += 3;
                out.push(parent);
                out.extend(overlays);
            }
        }
    }
    out
}

/// Prints one labelled experiment-series row (captured in bench output and
/// transcribed into EXPERIMENTS.md).
pub fn row(experiment: &str, series: &str) {
    println!("[{experiment}] {series}");
}
