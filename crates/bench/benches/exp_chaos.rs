//! Experiment E17 — the self-healing fleet under a chaos schedule.
//!
//! The E16 demand-page workload runs against a 4-member, 2-way-replicated
//! fleet while a declarative, seeded failure schedule replays against it:
//! one member crashes mid-run and stays down, a second member turns gray
//! (every charge multiplied) for a long window, and a third member's
//! optical media decays at 0.1% latent bit rot per read. The self-healing
//! machinery — kernel-timer heartbeats feeding the health monitor,
//! proactive re-replication onto ring successors, scrub with read-repair
//! against publish-time CRCs, and hedged audio reads around the gray
//! member — has to absorb all of it.
//!
//! The pins (`--smoke`, hooked into `scripts/check.sh`): zero lost pages
//! (every page delivered byte-identical — the harness verifies bytes
//! inline), replication restored to k before run end, zero corrupt pages
//! after the final sweep, zero hint-violating Busy resubmissions, and
//! hedged audio p99 no worse than twice the healthy-fleet baseline.
//!
//! The three measured rows (healthy, chaos hedged, chaos unhedged) are
//! emitted machine-readable as `BENCH_chaos.json` at the repository root.

use criterion::{criterion_group, Criterion};
use minos_bench::{fast_criterion, row};
use minos_presentation::chaos::{
    simulate_chaos_workload, ChaosReport, ChaosSchedule, ChaosWorkloadConfig,
};
use minos_presentation::fleet::rendezvous_order;
use minos_server::ServiceConfig;
use minos_types::{ObjectId, SimDuration, SimInstant};

const MEMBERS: usize = 4;
const REPLICATION: usize = 2;
const SESSIONS: usize = 8;
const AUDIO_SESSIONS: usize = 4;
const PAGES: usize = 8;
const PAGE_LEN: u64 = 32768;
const SEED: u64 = 0xC8A0_5E17;

/// The latent decay rate on the rotting member: 0.1% per read.
const ROT_PPM: u32 = 1_000;

/// The three afflicted members, derived from the same rendezvous
/// placement the fleet uses so every failure actually lands on a member
/// with work: the gray member holds the second replica of the first
/// audio session's object (it serves that session's later pages, so
/// hedges have something to race), and the crash and rot fall on two
/// other members.
fn afflicted() -> (usize, usize, usize) {
    let slow = rendezvous_order(ObjectId::new(1), MEMBERS)[1];
    let crash = (0..MEMBERS).find(|&m| m != slow).expect("fleet has more than one member");
    let rot =
        (0..MEMBERS).find(|&m| m != slow && m != crash).expect("fleet has more than two members");
    (slow, crash, rot)
}

/// The E17 schedule: one member crashes mid-run and never returns (the
/// repair queue owes its copies to the survivors), a second turns gray at
/// 8x from shortly after the health baseline warms until far past run
/// end, and a third member's media rots quietly the whole time.
fn chaos_schedule() -> ChaosSchedule {
    let ms = |t: u64| SimInstant::EPOCH + SimDuration::from_millis(t);
    let (slow, crash, rot) = afflicted();
    ChaosSchedule::new(SEED)
        .crash_at(crash, ms(40))
        .slow_between(slow, ms(25), ms(100_000), 8)
        .bit_rot(rot, ROT_PPM)
}

fn run(schedule: ChaosSchedule, hedge: Option<SimDuration>) -> ChaosReport {
    simulate_chaos_workload(ChaosWorkloadConfig {
        members: MEMBERS,
        replication: REPLICATION,
        sessions: SESSIONS,
        audio_sessions: AUDIO_SESSIONS,
        pages_per_session: PAGES,
        page_len: PAGE_LEN,
        schedule,
        hedge_delay: hedge,
        heartbeat: SimDuration::from_millis(5),
        scrub_interval: Some(SimDuration::from_millis(25)),
        repair_spacing: SimDuration::from_millis(2),
        service: ServiceConfig::default(),
    })
    .expect("chaos workload runs")
}

/// The hedge delay: fire the speculative duplicate once the original has
/// been owed noticeably longer than a healthy wire round trip.
const HEDGE_DELAY: SimDuration = SimDuration::from_millis(20);

fn healthy() -> ChaosReport {
    run(ChaosSchedule::new(SEED), None)
}

fn chaos_hedged() -> ChaosReport {
    run(chaos_schedule(), Some(HEDGE_DELAY))
}

fn chaos_unhedged() -> ChaosReport {
    run(chaos_schedule(), None)
}

fn json_row(name: &str, r: &ChaosReport) -> String {
    format!(
        "    \"{name}\": {{\n      \"pages\": {},\n      \"lost_pages\": {},\n      \
         \"elapsed_us\": {},\n      \"audio_p99_us\": {},\n      \"hedges_fired\": {},\n      \
         \"hedge_wins\": {},\n      \"duplicates_suppressed\": {},\n      \
         \"down_transitions\": {},\n      \"slow_transitions\": {},\n      \
         \"replays\": {},\n      \"repairs_completed\": {},\n      \
         \"repair_bytes\": {},\n      \"scrub_pages\": {},\n      \"scrub_detected\": {},\n      \
         \"scrub_heals\": {},\n      \"read_repairs\": {},\n      \"bit_rot_flips\": {},\n      \
         \"final_corrupt_pages\": {},\n      \"premature_busy_retries\": {},\n      \
         \"replication_ok\": {}\n    }}",
        r.pages,
        r.lost_pages,
        r.elapsed.as_micros(),
        r.audio_p99.as_micros(),
        r.hedges_fired,
        r.hedge_wins,
        r.duplicates_suppressed,
        r.down_transitions,
        r.slow_transitions,
        r.replays,
        r.repairs_completed,
        r.repair_bytes,
        r.scrub_pages,
        r.scrub_detected,
        r.scrub_heals,
        r.read_repairs,
        r.bit_rot_flips,
        r.final_corrupt_pages,
        r.premature_busy_retries,
        r.replication_ok,
    )
}

/// Writes the three rows as `BENCH_chaos.json` at the repository root.
fn emit_json(healthy: &ChaosReport, hedged: &ChaosReport, unhedged: &ChaosReport) {
    let json = format!(
        "{{\n  \"experiment\": \"E17\",\n  \"workload\": \"{SESSIONS} sessions x {PAGES} x \
         {PAGE_LEN} B demand pages, {MEMBERS} members k={REPLICATION}, one mid-run crash, one \
         8x gray member, {ROT_PPM} ppm latent bit rot, heartbeat health monitor, proactive \
         re-replication, scrub + read-repair, hedged audio reads\",\n  \"rows\": {{\n{},\n{},\n{}\n  \
         }}\n}}\n",
        json_row("healthy", healthy),
        json_row("chaos_hedged", hedged),
        json_row("chaos_unhedged", unhedged),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    if let Err(e) = std::fs::write(path, json) {
        row("E17", &format!("could not write BENCH_chaos.json: {e}"));
    } else {
        row("E17", "rows written to BENCH_chaos.json");
    }
}

fn print_row(name: &str, r: &ChaosReport) {
    row(
        "E17",
        &format!(
            "{name:>14}: pages {}  audio_p99 {:.1} ms  slow {}  hedges {}/{}  repairs {}  \
             scrub det/heal {}/{}  read_repairs {}  flips {}  residual_corrupt {}",
            r.pages,
            r.audio_p99.as_micros() as f64 / 1_000.0,
            r.slow_transitions,
            r.hedge_wins,
            r.hedges_fired,
            r.repairs_completed,
            r.scrub_detected,
            r.scrub_heals,
            r.read_repairs,
            r.bit_rot_flips,
            r.final_corrupt_pages,
        ),
    );
}

fn print_series() {
    row(
        "E17",
        &format!(
            "workload = {SESSIONS} sessions x {PAGES} x {} KB pages; {MEMBERS} members \
             k={REPLICATION}; crash @40ms, 8x gray @25ms.., {ROT_PPM} ppm rot",
            PAGE_LEN / 1024
        ),
    );
    let base = healthy();
    let hedged = chaos_hedged();
    let unhedged = chaos_unhedged();
    print_row("healthy", &base);
    print_row("chaos hedged", &hedged);
    print_row("chaos unhedged", &unhedged);
    emit_json(&base, &hedged, &unhedged);
}

fn smoke() {
    let base = healthy();
    let hedged = chaos_hedged();
    let unhedged = chaos_unhedged();
    print_row("healthy", &base);
    print_row("chaos hedged", &hedged);
    print_row("chaos unhedged", &unhedged);
    let want = (SESSIONS * PAGES) as u64;
    for (name, r) in [("healthy", &base), ("hedged", &hedged), ("unhedged", &unhedged)] {
        // The byte-identity pin: the harness verifies every delivered page
        // against the published pattern and its stored CRC inline, so a
        // complete run IS a byte-identical run.
        assert_eq!(r.pages, want, "{name}: every page delivered: {r:?}");
        assert_eq!(r.lost_pages, 0, "{name}: zero lost pages: {r:?}");
        assert_eq!(
            r.final_corrupt_pages, 0,
            "{name}: the final sweep healed every rotten page: {r:?}"
        );
        assert_eq!(r.premature_busy_retries, 0, "{name}: no resubmission beat its hint: {r:?}");
        assert!(r.replication_ok, "{name}: replication restored to k on live members: {r:?}");
    }
    // The healing pins: the crash was detected and every copy the dead
    // member held was rebuilt onto a ring successor.
    assert!(hedged.down_transitions >= 1, "the crash was detected: {hedged:?}");
    assert!(hedged.repairs_completed >= 1, "lost copies were re-replicated: {hedged:?}");
    // The hedge path actually exercised: audio pages aimed at the gray
    // member raced a speculative duplicate.
    assert!(hedged.hedges_fired >= 1, "hedges fired against the gray member: {hedged:?}");
    assert_eq!(unhedged.hedges_fired, 0, "hedging off means no hedges: {unhedged:?}");
    // The hedge pin: with one member gray at 8x, hedged audio p99 stays
    // within 2x of the healthy fleet's.
    let ratio = hedged.audio_p99.as_micros() as f64 / base.audio_p99.as_micros().max(1) as f64;
    row(
        "E17",
        &format!(
            "smoke: audio_p99 healthy {:.1} ms  hedged {:.1} ms  unhedged {:.1} ms  ratio {ratio:.2}",
            base.audio_p99.as_micros() as f64 / 1_000.0,
            hedged.audio_p99.as_micros() as f64 / 1_000.0,
            unhedged.audio_p99.as_micros() as f64 / 1_000.0,
        ),
    );
    assert!(
        ratio <= 2.0,
        "hedged audio p99 {ratio:.2}x exceeded the 2x-of-healthy pin: {hedged:?} vs {base:?}"
    );
    emit_json(&base, &hedged, &unhedged);
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e17_chaos");
    group.bench_function("chaos_hedged", |b| b.iter(chaos_hedged));
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--series") {
        print_series();
        return;
    }
    benches();
}
