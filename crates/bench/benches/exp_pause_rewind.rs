//! Experiment E2 — pause detection quality and rewind accuracy.
//!
//! Quantifies §2's pause-browsing design across speaker profiles: how many
//! true gaps the detector finds, how reliably long pauses match paragraph
//! boundaries, and how far "N short pauses back" lands from "N words back".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus::speech::dictation;
use minos_voice::eval::{evaluate_pauses, mean_rewind_error};
use minos_voice::pause::PauseDetector;
use minos_voice::synth::{synthesize, SpeakerProfile};

fn print_series() {
    let text = dictation(5, 8, 5);
    row("E2", "speech: 8 paragraphs x 5 sentences; detector: default config");
    row("E2", "profile  precision  recall  long_prec  long_recall  rewind_err(n=1)  (n=2)  (n=4)");
    for (name, profile) in SpeakerProfile::named() {
        let (audio, transcript) = synthesize(&text, &profile, 11);
        let pauses = PauseDetector::new().detect(&audio);
        let r = evaluate_pauses(&transcript, &pauses);
        let e1 = mean_rewind_error(&transcript, &pauses, 1);
        let e2 = mean_rewind_error(&transcript, &pauses, 2);
        let e4 = mean_rewind_error(&transcript, &pauses, 4);
        row(
            "E2",
            &format!(
                "{name:<7}  {:>9.3}  {:>6.3}  {:>9.3}  {:>11.3}  {e1:>15.2}  {e2:>5.2}  {e4:>5.2}",
                r.precision, r.recall, r.long_precision, r.long_recall
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let text = dictation(5, 8, 5);
    let mut group = c.benchmark_group("e2_pause_detection");
    for (name, profile) in SpeakerProfile::named() {
        let (audio, _) = synthesize(&text, &profile, 11);
        group.bench_with_input(BenchmarkId::new("detect", name), &audio, |b, audio| {
            b.iter(|| PauseDetector::new().detect(audio))
        });
    }
    group.finish();

    let (audio, _) = synthesize(&text, &SpeakerProfile::CLEAR, 11);
    let pauses = PauseDetector::new().detect(&audio);
    let mut rewind_group = c.benchmark_group("e2_rewind");
    rewind_group.bench_function("rewind_2_short", |b| {
        let at = minos_types::SimInstant::from_micros(audio.duration().as_micros() / 2);
        b.iter(|| {
            minos_voice::pause::rewind_position(&pauses, minos_voice::PauseKind::Short, 2, at)
        })
    });
    rewind_group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
