//! Experiment E1 — symmetric browsing cost.
//!
//! The same command script drives a text twin and a voice twin of the same
//! content; the series reports that both accept the full vocabulary and
//! Criterion compares the per-command cost in each medium.

use criterion::{criterion_group, criterion_main, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus::speech::dictation;
use minos_object::{DrivingMode, MultimediaObject, VoiceSegment};
use minos_presentation::{BrowseCommand, BrowsingSession};
use minos_text::{LogicalLevel, PaginateConfig};
use minos_types::{ObjectId, SimDuration};
use minos_voice::recognize::{Recognizer, RecognizerConfig};
use minos_voice::synth::SpeakerProfile;
use std::collections::HashMap;

fn twins() -> HashMap<ObjectId, MultimediaObject> {
    let source = dictation(3, 6, 5);
    let markup: String = source.split('\n').map(|p| format!(".pp\n{p}\n")).collect();
    let mut visual = MultimediaObject::new(ObjectId::new(1), "text-twin", DrivingMode::Visual);
    visual.text_segments.push(minos_text::parse_markup(&markup).unwrap());
    visual.archive().unwrap();

    let vocab: Vec<String> =
        source.split_whitespace().map(|w| w.trim_end_matches('.').to_string()).collect();
    let recognizer = Recognizer::new(
        vocab.iter(),
        RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 1 },
    );
    let mut audio = MultimediaObject::new(ObjectId::new(2), "voice-twin", DrivingMode::Audio);
    audio.voice_segments.push(
        VoiceSegment::dictate(&source, &SpeakerProfile::CLEAR, 1)
            .with_marks(&[LogicalLevel::Paragraph, LogicalLevel::Sentence])
            .with_recognition(&recognizer),
    );
    audio.archive().unwrap();

    let mut store = HashMap::new();
    store.insert(visual.id, visual);
    store.insert(audio.id, audio);
    store
}

fn script() -> Vec<BrowseCommand> {
    vec![
        BrowseCommand::NextPage,
        BrowseCommand::NextUnit(LogicalLevel::Paragraph),
        BrowseCommand::FindPattern("multimedia".into()),
        BrowseCommand::PreviousUnit(LogicalLevel::Paragraph),
        BrowseCommand::AdvancePages(2),
        BrowseCommand::PreviousPage,
    ]
}

fn run_script(store: HashMap<ObjectId, MultimediaObject>, id: u64) -> usize {
    let (mut session, _) = BrowsingSession::open(
        store,
        ObjectId::new(id),
        PaginateConfig::default(),
        SimDuration::from_secs(10),
    )
    .unwrap();
    let mut events = 0;
    for cmd in script() {
        events += session.apply(cmd).map(|e| e.len()).unwrap_or(0);
    }
    events
}

fn print_series() {
    row("E1", "identical 6-command script on the text twin and the voice twin");
    let v_events = run_script(twins(), 1);
    let a_events = run_script(twins(), 2);
    row("E1", &format!("visual twin: all commands accepted, {v_events} events"));
    row("E1", &format!("audio twin:  all commands accepted, {a_events} events"));
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e1_symmetric_script");
    group.bench_function("visual_twin", |b| b.iter(|| run_script(twins(), 1)));
    group.bench_function("audio_twin", |b| b.iter(|| run_script(twins(), 2)));
    // Session opening cost per mode (pagination vs pause detection reuse).
    group.bench_function("open_visual", |b| {
        b.iter(|| {
            BrowsingSession::open(
                twins(),
                ObjectId::new(1),
                PaginateConfig::default(),
                SimDuration::from_secs(10),
            )
            .unwrap()
            .0
            .depth()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
