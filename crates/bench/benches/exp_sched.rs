//! Experiment E15 — discrete-event scheduling cost versus fleet size.
//!
//! A fleet of N connected sessions of which only 32 are active: every
//! 8th active session turns a page each 250 ms on an audio playback
//! deadline, the rest dwell 1 s between page turns, and the remaining
//! N − 32 sessions sit connected but idle. The run loop is the timer
//! wheel's: it jumps from armed deadline to armed deadline via
//! `Kernel::next_deadline`, so an idle session — which has no timer
//! armed — costs nothing after admission.
//!
//! The claim under test: total kernel events, timers armed, simulated
//! completion time, and the audio-class p99 are functions of the *active*
//! population alone — byte-identical from N = 64 to N = 10,000 — and the
//! wall-clock cost of the run grows sublinearly in N (the only per-idle
//! cost is fleet setup, not per-tick scanning).
//!
//! The series is emitted machine-readable as `BENCH_sched.json` at the
//! repository root. `--smoke` runs the acceptance pin — N = 10,000 fires
//! exactly the events N = 64 fires, with zero spurious wakes — and is
//! hooked into `scripts/check.sh`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_presentation::sched::{simulate_sched_workload, SchedReport};

const ACTIVE: usize = 32;
const PAGES: usize = 16;
const PAGE_LEN: u64 = 8192;

/// The E15 load axis: fleet sizes at a fixed active population.
const SESSIONS: [usize; 5] = [64, 256, 1024, 4096, 10_000];

/// The pinned operating points for the smoke acceptance run.
const SMOKE_BASE: usize = 64;
const SMOKE_FLEET: usize = 10_000;

fn run(sessions: usize) -> SchedReport {
    simulate_sched_workload(sessions, ACTIVE, PAGES, PAGE_LEN).expect("workload runs")
}

/// One measured point of the series: the report plus the wall-clock cost
/// of producing it.
struct Point {
    sessions: usize,
    report: SchedReport,
    wall: std::time::Duration,
}

fn measure_series() -> Vec<Point> {
    SESSIONS
        .iter()
        .map(|&sessions| {
            let start = std::time::Instant::now();
            let report = run(sessions);
            Point { sessions, report, wall: start.elapsed() }
        })
        .collect()
}

/// Writes the series as `BENCH_sched.json` at the repository root — the
/// machine-readable perf-trajectory record for this experiment.
fn emit_json(points: &[Point]) {
    let mut series = Vec::new();
    for p in points {
        series.push(format!(
            "    {{\n      \"sessions\": {},\n      \"active\": {},\n      \"pages\": {},\n      \
             \"events\": {},\n      \"timers_armed\": {},\n      \"spurious_wakes\": {},\n      \
             \"ready_high_water\": {},\n      \"audio_p99_us\": {},\n      \
             \"sim_elapsed_us\": {},\n      \"wall_us\": {}\n    }}",
            p.sessions,
            p.report.active,
            p.report.pages,
            p.report.events,
            p.report.timers_armed,
            p.report.spurious_wakes,
            p.report.ready_high_water,
            p.report.audio_p99.as_micros(),
            p.report.sim_elapsed.as_micros(),
            p.wall.as_micros(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E15\",\n  \"workload\": \"N-session fleet, {ACTIVE} active x {PAGES} x \
         {PAGE_LEN} B pages, audio stride 8 @ 250ms, text dwell 1s, 10 Mbit/s Ethernet, \
         timer-wheel run loop\",\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    if let Err(e) = std::fs::write(path, json) {
        row("E15", &format!("could not write BENCH_sched.json: {e}"));
    } else {
        row("E15", "series written to BENCH_sched.json");
    }
}

fn print_series() {
    row(
        "E15",
        &format!(
            "workload = N-session fleet, {ACTIVE} active x {PAGES} x 8 KB pages; wheel-driven;"
        ),
    );
    row("E15", "sessions    events  timers  spurious  ready_hw  p99_ms  sim_s    wall_ms");
    let points = measure_series();
    for p in &points {
        row(
            "E15",
            &format!(
                "{:>8}  {:>8}  {:>6}  {:>8}  {:>8}  {:>6.2}  {:>5.1}  {:>8.2}",
                p.sessions,
                p.report.events,
                p.report.timers_armed,
                p.report.spurious_wakes,
                p.report.ready_high_water,
                p.report.audio_p99.as_micros() as f64 / 1_000.0,
                p.report.sim_elapsed.as_micros() as f64 / 1_000_000.0,
                p.wall.as_micros() as f64 / 1_000.0,
            ),
        );
    }
    emit_json(&points);
}

fn smoke() {
    let base = run(SMOKE_BASE);
    let fleet = run(SMOKE_FLEET);
    row(
        "E15",
        &format!(
            "smoke: {SMOKE_BASE} vs {SMOKE_FLEET} sessions  events {} vs {}  spurious {} vs {}  \
             p99 {:.2} vs {:.2} ms",
            base.events,
            fleet.events,
            base.spurious_wakes,
            fleet.spurious_wakes,
            base.audio_p99.as_micros() as f64 / 1_000.0,
            fleet.audio_p99.as_micros() as f64 / 1_000.0,
        ),
    );
    // The acceptance pin: scheduling work is a function of the active
    // population alone. Growing the fleet 156x changes nothing the kernel
    // counts — not events, not timers, not the simulated finish line, not
    // the audio tail — and no wake ever finds an empty slot.
    let want = (ACTIVE * PAGES) as u64;
    assert_eq!(base.pages, want, "every active page completed: {base:?}");
    assert_eq!(fleet.pages, want, "the full fleet completes the same pages: {fleet:?}");
    assert_eq!(
        fleet.events, base.events,
        "events scale with active sessions, never with the fleet"
    );
    assert_eq!(fleet.timers_armed, base.timers_armed, "armed timers likewise");
    assert_eq!(fleet.sim_elapsed, base.sim_elapsed, "identical simulated completion");
    assert_eq!(fleet.audio_p99, base.audio_p99, "identical audio tail");
    assert_eq!(base.spurious_wakes, 0, "no wake fired for an idle slot: {base:?}");
    assert_eq!(fleet.spurious_wakes, 0, "idle dwellers never woke: {fleet:?}");
    // The full series is cheap (simulated time), so the machine-readable
    // artifact is always the complete five-point sweep.
    emit_json(&measure_series());
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e15_sched");
    for sessions in [SMOKE_BASE, SMOKE_FLEET] {
        group.bench_with_input(BenchmarkId::new("fleet", sessions), &sessions, |b, &n| {
            b.iter(|| run(n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
}
