//! Experiment E4 — recognition-based voice content addressability.
//!
//! "Voice recognition (even limitted) is used to reduce (or eliminate) the
//! need for manual indexing … recognized uterences are associated with a
//! particular point of the object voice part in order to facilitate
//! browsing within an object." (§2) The series sweeps the recognizer's
//! quality knobs and reports how much of the spoken content pattern
//! browsing can reach, and how precise retrieval stays as false alarms
//! grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus::speech::dictation;
use minos_text::search::normalize_word;
use minos_voice::recognize::{Recognizer, RecognizerConfig, UtteranceIndex};
use minos_voice::synth::{synthesize, SpeakerProfile};

fn print_series() {
    let text = dictation(4, 6, 6);
    let (_, transcript) = synthesize(&text, &SpeakerProfile::CLEAR, 5);
    let vocabulary: Vec<String> =
        transcript.words.iter().map(|w| normalize_word(&w.text)).collect();
    let total_words = transcript.words.len();

    row("E4", "dictation: 6 paragraphs x 6 sentences; full-content vocabulary");
    row("E4", "hit_rate  false_alarms  indexed_utts  reach_recall  position_precision");
    for (hit_rate, false_alarm_rate) in
        [(0.25, 0.0), (0.5, 0.0), (0.75, 0.0), (0.9, 0.02), (1.0, 0.0), (0.9, 0.2)]
    {
        let recognizer = Recognizer::new(
            vocabulary.iter(),
            RecognizerConfig { hit_rate, false_alarm_rate, seed: 3 },
        );
        let utterances = recognizer.recognize(&transcript);
        let indexed = utterances.len();
        // Position precision: fraction of indexed utterances whose word
        // really was spoken at that instant.
        let correct = utterances
            .iter()
            .filter(|u| {
                transcript
                    .words
                    .iter()
                    .any(|w| w.span.start == u.at && normalize_word(&w.text) == u.word)
            })
            .count();
        row(
            "E4",
            &format!(
                "{hit_rate:>8.2}  {false_alarm_rate:>12.2}  {indexed:>12}  {:>12.3}  {:>18.3}",
                indexed.min(total_words) as f64 / total_words as f64,
                if indexed == 0 { 1.0 } else { correct as f64 / indexed as f64 }
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let text = dictation(4, 6, 6);
    let (_, transcript) = synthesize(&text, &SpeakerProfile::CLEAR, 5);
    let vocabulary: Vec<String> =
        transcript.words.iter().map(|w| normalize_word(&w.text)).collect();

    let mut group = c.benchmark_group("e4_voice_indexing");
    for hit_rate in [0.5f64, 1.0] {
        let recognizer = Recognizer::new(
            vocabulary.iter(),
            RecognizerConfig { hit_rate, false_alarm_rate: 0.02, seed: 3 },
        );
        group.bench_with_input(
            BenchmarkId::new("recognize", format!("{hit_rate}")),
            &transcript,
            |b, tr| b.iter(|| recognizer.recognize(tr)),
        );
    }
    let recognizer = Recognizer::new(
        vocabulary.iter(),
        RecognizerConfig { hit_rate: 0.9, false_alarm_rate: 0.02, seed: 3 },
    );
    let index = UtteranceIndex::new(recognizer.recognize(&transcript));
    group.bench_function("next_occurrence", |b| {
        b.iter(|| index.next_occurrence("multimedia", minos_types::SimInstant::EPOCH))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
