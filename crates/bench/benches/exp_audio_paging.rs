//! Experiment E3 — audio pages.
//!
//! "Audio pages … are of approximately constant time length. The user can
//! advance several voice pages at a time." (§2) The series verifies the
//! constant-length property on real dictation and shows page jumps cost
//! the same regardless of distance (they are coordinate arithmetic, not
//! playback).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus::speech::dictation;
use minos_types::SimDuration;
use minos_voice::pause::PauseDetector;
use minos_voice::synth::{synthesize, SpeakerProfile};
use minos_voice::{AudioPages, PlaybackEngine};

fn engine() -> PlaybackEngine {
    let text = dictation(8, 10, 5);
    let (audio, _) = synthesize(&text, &SpeakerProfile::CLEAR, 2);
    let pauses = PauseDetector::new().detect(&audio);
    PlaybackEngine::new(AudioPages::new(audio.duration(), SimDuration::from_secs(20)), pauses)
}

fn print_series() {
    let e = engine();
    let pages = e.pages();
    row("E3", "dictation paged at 20s; page spans:");
    let mut all_but_last_constant = true;
    for i in 0..pages.page_count() {
        let span = pages.span_of(i).unwrap();
        if i + 1 < pages.page_count() && span.duration() != SimDuration::from_secs(20) {
            all_but_last_constant = false;
        }
        row(
            "E3",
            &format!("page {:>2}: {} .. {} ({})", i + 1, span.start, span.end, span.duration()),
        );
    }
    row("E3", &format!("constant_length_except_last = {all_but_last_constant}"));
    row(
        "E3",
        &format!(
            "jump cost is O(1): goto page 2 and goto page {} are the same arithmetic",
            pages.page_count()
        ),
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e3_audio_paging");
    for delta in [1i64, 4, 16] {
        group.bench_with_input(BenchmarkId::new("advance_pages", delta), &delta, |b, &d| {
            let mut e = engine();
            b.iter(|| {
                e.advance_pages(d);
                e.advance_pages(-d);
            })
        });
    }
    group.bench_function("tick_one_second", |b| {
        let mut e = engine();
        e.play();
        b.iter(|| {
            let crossings = e.tick(SimDuration::from_secs(1));
            if e.state() == minos_voice::PlaybackState::Finished {
                e.goto_page(0);
            }
            crossings
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
