//! Experiment E11 — anticipatory prefetch and continuous presentation.
//!
//! "The presentation manager tries to anticipate the user's requests and
//! prefetch the appropriate pieces of information." (§5) A 1 MB record is
//! presented as sixteen 64 KB pages over the 10 Mbit/s Ethernet and the
//! optical-disk model, with a 320 ms dwell per page. The series reports,
//! per prefetch depth, the opening latency, the total stall time (fetch
//! time the dwell could not hide — the continuity metric), round trips,
//! and the buffer accounting; Criterion times the depth-2 pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_net::{Link, ServerRequest};
use minos_presentation::prefetch::{page_spans, PrefetchBuffer, PrefetchStats};
use minos_presentation::Workstation;
use minos_server::ObjectServer;
use minos_types::{ByteSpan, ObjectId, SimDuration};

const RECORD_LEN: usize = 1 << 20;
const PAGES: usize = 16;
const DWELL: SimDuration = SimDuration::from_millis(320);

fn pipeline(depth: usize) -> (PrefetchBuffer<ObjectServer>, ByteSpan) {
    let mut server = ObjectServer::new();
    let data = vec![0xA5u8; RECORD_LEN];
    let (record, _) = server.archiver_mut().store(ObjectId::new(1), &data).unwrap();
    (PrefetchBuffer::new(Workstation::new(server, Link::ethernet()), depth), record.span)
}

fn play(depth: usize) -> (PrefetchStats, u64) {
    let (mut pipe, span) = pipeline(depth);
    let plan: Vec<ServerRequest> =
        page_spans(span, PAGES).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
    pipe.prime(&plan).unwrap();
    for (i, need) in plan.iter().enumerate() {
        pipe.step(need, &plan[i + 1..], DWELL).unwrap();
    }
    (pipe.stats(), pipe.workstation().round_trips())
}

fn print_series() {
    row("E11", "record = 1 MB in 16 x 64 KB pages; dwell = 320 ms/page;");
    row("E11", "link = 10 Mbit/s Ethernet; optical server; batch spans coalesce");
    row("E11", "depth  opening  total_stall  stall/page  trips  hits  misses  wasted");
    for depth in [0usize, 1, 2, 4] {
        let (stats, trips) = play(depth);
        row(
            "E11",
            &format!(
                "{depth:>5}  {:>7}  {:>11}  {:>10}  {trips:>5}  {:>4}  {:>6}  {:>6}",
                stats.opening,
                stats.stall,
                stats.stall / PAGES as u64,
                stats.hits,
                stats.misses,
                stats.wasted()
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e11_prefetch");
    for depth in [0usize, 2] {
        group.bench_with_input(BenchmarkId::new("pipeline_16_pages", depth), &depth, |b, &d| {
            b.iter(|| play(d))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
