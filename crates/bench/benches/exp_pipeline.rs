//! Experiment E12 — pipelined transport vs the blocking request path.
//!
//! N concurrent sessions each pull 8 pages of 8 KB from the optical
//! server over one shared 10 Mbit/s Ethernet link. The blocking transport
//! serializes every page into a full round trip; the framed transport
//! keeps a window of request frames in flight per session, lets the
//! server interleave connections, and coalesces adjacent spans into one
//! merged response. The series reports aggregate pages/sec for both
//! transports and the speedup ratio per session count; the acceptance
//! claim (pipelined ≥ 2× blocking at N = 16) is also pinned as a unit
//! test in `minos-presentation`.
//!
//! `--smoke` runs a small bounded workload and asserts the pipelined
//! transport is no slower — the CI hook in `scripts/check.sh`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_presentation::sched::{simulate_page_workload, TransportMode, WorkloadReport};

const PAGES_PER_SESSION: usize = 8;
const PAGE_LEN: u64 = 8192;
const WINDOW: usize = 8;

fn run(sessions: usize, mode: TransportMode) -> WorkloadReport {
    simulate_page_workload(sessions, PAGES_PER_SESSION, PAGE_LEN, mode).expect("workload runs")
}

fn print_series() {
    row("E12", "workload = 8 x 8 KB pages/session; link = 10 Mbit/s Ethernet;");
    row("E12", &format!("optical server; pipelined window = {WINDOW} frames/session"));
    row("E12", "sessions  blocking_pg/s  pipelined_pg/s  speedup  alloc/pg");
    for sessions in [1usize, 4, 16] {
        let blocking = run(sessions, TransportMode::Blocking);
        let pipelined = run(sessions, TransportMode::Pipelined { window: WINDOW });
        row(
            "E12",
            &format!(
                "{sessions:>8}  {:>13.2}  {:>14.2}  {:>6.2}x  {:>8.3}",
                blocking.pages_per_sec(),
                pipelined.pages_per_sec(),
                pipelined.pages_per_sec() / blocking.pages_per_sec(),
                pipelined.allocations_per_page(),
            ),
        );
    }
    // The zero-copy steady-state point: long sessions amortize the cold
    // pool's working set to (well) under one allocation per page.
    let steady =
        simulate_page_workload(8, 64, PAGE_LEN, TransportMode::Pipelined { window: WINDOW })
            .expect("workload runs");
    row(
        "E12",
        &format!(
            "steady state: 8 sessions x 64 pages  {:.3} allocs/page ({} allocs / {} pages)",
            steady.allocations_per_page(),
            steady.payload_allocs,
            steady.pages
        ),
    );
}

fn smoke() {
    let blocking = run(2, TransportMode::Blocking);
    let pipelined = run(2, TransportMode::Pipelined { window: 4 });
    row(
        "E12",
        &format!(
            "smoke: 2 sessions  blocking {:.2} pg/s  pipelined {:.2} pg/s",
            blocking.pages_per_sec(),
            pipelined.pages_per_sec()
        ),
    );
    assert!(
        pipelined.elapsed <= blocking.elapsed,
        "pipelined transport must not be slower: {} vs {}",
        pipelined.elapsed,
        blocking.elapsed
    );
    assert_eq!(pipelined.pages, blocking.pages, "both transports served every page");
    // The pooled-buffer acceptance pin: at the steady-state operating
    // point (window 8, 64 pages/session) the transport recycles consumed
    // pages, so fresh payload allocations stay at or under one per page.
    let steady =
        simulate_page_workload(8, 64, PAGE_LEN, TransportMode::Pipelined { window: WINDOW })
            .expect("workload runs");
    row(
        "E12",
        &format!(
            "smoke: steady-state alloc/page {:.3} ({} allocs / {} pages)",
            steady.allocations_per_page(),
            steady.payload_allocs,
            steady.pages
        ),
    );
    assert!(
        steady.allocations_per_page() <= 1.0,
        "pooled buffers hold allocations at or under one per page: {:.3}",
        steady.allocations_per_page()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e12_pipeline");
    for sessions in [1usize, 16] {
        group.bench_with_input(BenchmarkId::new("blocking", sessions), &sessions, |b, &n| {
            b.iter(|| run(n, TransportMode::Blocking))
        });
        group.bench_with_input(BenchmarkId::new("pipelined", sessions), &sessions, |b, &n| {
            b.iter(|| run(n, TransportMode::Pipelined { window: WINDOW }))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
}
