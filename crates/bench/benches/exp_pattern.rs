//! Experiment E10 — text pattern-match browsing throughput.
//!
//! "A user types a text pattern … and the system returns the next page
//! with the occurrence of this pattern." (§2) Compares the BMH access
//! method against the naive scan baseline and the word index, over growing
//! documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minos_bench::{fast_criterion, row};
use minos_corpus::documents::office_markup;
use minos_text::search::{naive_find_next, normalize_word};
use minos_text::{parse_markup, PatternSearcher, WordIndex};
use std::time::Instant;

fn haystack(chapters: usize) -> Vec<char> {
    parse_markup(&office_markup(3, chapters, 3, 4)).unwrap().text().chars().collect()
}

fn print_series() {
    row("E10", "pattern = 'transparency'; documents of growing size");
    row("E10", "chars    bmh_all_hits_us  naive_all_hits_us  speedup  hits");
    for chapters in [2usize, 8, 32] {
        let hay = haystack(chapters);
        let searcher = PatternSearcher::new("transparency");
        let t0 = Instant::now();
        let hits = searcher.find_all(&hay);
        let bmh_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let mut from = 0;
        let mut naive_hits = 0;
        while let Some(hit) = naive_find_next(&hay, "transparency", from) {
            naive_hits += 1;
            from = hit + 1;
        }
        let naive_us = t0.elapsed().as_micros();
        assert_eq!(hits.len(), naive_hits);
        row(
            "E10",
            &format!(
                "{:>7}  {bmh_us:>15}  {naive_us:>17}  {:>6.1}x  {:>4}",
                hay.len(),
                naive_us as f64 / bmh_us.max(1) as f64,
                hits.len()
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e10_pattern_matching");
    for chapters in [8usize, 32] {
        let hay = haystack(chapters);
        group.throughput(Throughput::Elements(hay.len() as u64));
        group.bench_with_input(BenchmarkId::new("bmh_find_all", hay.len()), &hay, |b, hay| {
            let searcher = PatternSearcher::new("transparency");
            b.iter(|| searcher.find_all(hay))
        });
        group.bench_with_input(BenchmarkId::new("naive_first", hay.len()), &hay, |b, hay| {
            b.iter(|| naive_find_next(hay, "transparency", 0))
        });
    }
    // Word-index lookups (the voice-symmetric access method).
    let doc = parse_markup(&office_markup(3, 16, 3, 4)).unwrap();
    let index = WordIndex::build(&doc);
    group.bench_function("word_index_build", |b| b.iter(|| WordIndex::build(&doc)));
    group.bench_function("word_index_next", |b| {
        b.iter(|| index.next_occurrence(&normalize_word("transparency"), 10_000))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
