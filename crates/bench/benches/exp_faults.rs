//! Experiment E13 — goodput of the framed transport under injected frame
//! faults.
//!
//! One reader pulls 48 pages of 8 KB from the optical server over a
//! 10 Mbit/s Ethernet link whose frames are corrupted at a configurable
//! per-frame rate (a flipped bit anywhere in the frame, caught by the
//! CRC32 trailer). The recovery machinery — per-request deadlines,
//! retransmission with capped exponential backoff, duplicate suppression —
//! must deliver every page byte-identical; the series reports how much
//! goodput survives at each fault rate for the blocking discipline
//! (window 1, a full timeout per loss) and the pipelined transport
//! (window 8, deadlines expire behind earlier waits, so a loss costs
//! roughly one retry round trip).
//!
//! Pages are requested in a strided order so the clean baseline cannot
//! coalesce adjacent spans the faulty runs must serve frame-by-frame —
//! the comparison isolates recovery cost.
//!
//! The series is also emitted machine-readable as `BENCH_transport.json`
//! at the repository root. `--smoke` runs the acceptance pin — at 1 %
//! frame corruption the pipelined transport retries to completion with
//! ≥ 80 % of its fault-free throughput — and is hooked into
//! `scripts/check.sh`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_net::FaultPlan;
use minos_presentation::sched::{simulate_faulty_page_workload, FaultyWorkloadReport};

const PAGES: usize = 48;
const PAGE_LEN: u64 = 8192;
const PIPELINED_WINDOW: usize = 8;
const SEED: u64 = 1986;

/// The E13 fault axis: per-frame corruption probabilities.
const RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

fn plan(rate: f64) -> FaultPlan {
    if rate <= 0.0 {
        FaultPlan::none()
    } else {
        FaultPlan::corrupting(SEED, rate)
    }
}

fn run(window: usize, rate: f64) -> FaultyWorkloadReport {
    simulate_faulty_page_workload(PAGES, PAGE_LEN, window, plan(rate)).expect("workload runs")
}

/// One measured point of the series: both transports at one fault rate.
struct Point {
    rate: f64,
    blocking: FaultyWorkloadReport,
    pipelined: FaultyWorkloadReport,
}

fn measure_series() -> Vec<Point> {
    RATES
        .iter()
        .map(|&rate| Point { rate, blocking: run(1, rate), pipelined: run(PIPELINED_WINDOW, rate) })
        .collect()
}

/// Writes the series as `BENCH_transport.json` at the repository root —
/// the machine-readable perf-trajectory record for this experiment.
fn emit_json(points: &[Point]) {
    let clean_pipelined = points.first().map(|p| p.pipelined.pages_per_sec()).unwrap_or(0.0);
    let mut series = Vec::new();
    for p in points {
        let ratio =
            if clean_pipelined > 0.0 { p.pipelined.pages_per_sec() / clean_pipelined } else { 0.0 };
        series.push(format!(
            "    {{\n      \"fault_rate\": {},\n      \"blocking_pages_per_sec\": {:.4},\n      \
             \"pipelined_pages_per_sec\": {:.4},\n      \"pipelined_goodput_ratio\": {ratio:.4},\n      \
             \"pipelined_retries\": {},\n      \"pipelined_corrupt_frames\": {},\n      \
             \"pages_failed\": {}\n    }}",
            p.rate,
            p.blocking.pages_per_sec(),
            p.pipelined.pages_per_sec(),
            p.pipelined.transport.retries,
            p.pipelined.transport.corrupt_frames,
            p.blocking.failed + p.pipelined.failed,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E13\",\n  \"workload\": \"{PAGES} x {PAGE_LEN} B pages, strided, \
         10 Mbit/s Ethernet, optical server\",\n  \"pipelined_window\": {PIPELINED_WINDOW},\n  \
         \"seed\": {SEED},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    if let Err(e) = std::fs::write(path, json) {
        row("E13", &format!("could not write BENCH_transport.json: {e}"));
    } else {
        row("E13", "series written to BENCH_transport.json");
    }
}

fn print_series() {
    row("E13", &format!("workload = {PAGES} x 8 KB pages, strided; link = 10 Mbit/s Ethernet;"));
    row(
        "E13",
        &format!(
            "per-frame corruption, CRC32-detected; blocking window 1 vs pipelined window \
             {PIPELINED_WINDOW}"
        ),
    );
    row("E13", "fault_rate  blocking_pg/s  pipelined_pg/s  goodput_ratio  retries  failed");
    let points = measure_series();
    let clean = points.first().map(|p| p.pipelined.pages_per_sec()).unwrap_or(0.0);
    for p in &points {
        let ratio = if clean > 0.0 { p.pipelined.pages_per_sec() / clean } else { 0.0 };
        row(
            "E13",
            &format!(
                "{:>10}  {:>13.2}  {:>14.2}  {:>13.2}  {:>7}  {:>6}",
                format!("{:.3}%", p.rate * 100.0),
                p.blocking.pages_per_sec(),
                p.pipelined.pages_per_sec(),
                ratio,
                p.pipelined.transport.retries,
                p.blocking.failed + p.pipelined.failed,
            ),
        );
    }
    emit_json(&points);
}

fn smoke() {
    let clean = run(PIPELINED_WINDOW, 0.0);
    let faulty = run(PIPELINED_WINDOW, 0.01);
    let ratio = faulty.pages_per_sec() / clean.pages_per_sec();
    row(
        "E13",
        &format!(
            "smoke: clean {:.2} pg/s  1% corruption {:.2} pg/s  goodput ratio {ratio:.2}  \
             (retries {}, corrupt frames {})",
            clean.pages_per_sec(),
            faulty.pages_per_sec(),
            faulty.transport.retries,
            faulty.transport.corrupt_frames,
        ),
    );
    // The acceptance pin: every page byte-identical (the workload verifies
    // content internally and counts anything else as failed), no page lost
    // to exhausted retries, and at least 80 % of fault-free throughput.
    assert_eq!(faulty.pages, PAGES as u64, "every page recovered: {:?}", faulty.transport);
    assert_eq!(faulty.failed, 0, "no request exhausted its retries");
    assert!(ratio >= 0.8, "goodput ratio {ratio:.3} under 1% corruption fell below 0.8");
    // The full series is cheap (simulated time), so the machine-readable
    // artifact is always the complete four-rate sweep.
    emit_json(&measure_series());
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e13_faults");
    for &(label, window) in &[("blocking", 1usize), ("pipelined", PIPELINED_WINDOW)] {
        group.bench_with_input(BenchmarkId::new(label, "1pct"), &window, |b, &w| {
            b.iter(|| run(w, 0.01))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
}
