//! Ablation studies for the reproduction's own design choices.
//!
//! * **A1 — adaptive vs fixed pause classification.** The paper insists the
//!   short/long boundary "is decided from the current context by sampling";
//!   this ablation replaces the context clustering with a fixed 250 ms rule
//!   and measures what that costs across speaker profiles.
//! * **A2 — miniature downsampling factor.** The representation image must
//!   be "much smaller … and thus easily transferable" while staying
//!   legible; the sweep shows bytes vs stroke retention per factor.
//! * **A3 — composition-file deduplication.** Storing repeated data tags
//!   once is what makes Figures 3–4's shared x-ray cheap; the ablation
//!   stores every reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus::images::xray_bitmap;
use minos_corpus::speech::dictation;
use minos_image::Miniature;
use minos_object::CompositionFile;
use minos_types::SimDuration;
use minos_voice::eval::evaluate_pauses;
use minos_voice::pause::{DetectedPause, PauseDetector, PauseKind};
use minos_voice::synth::{synthesize, SpeakerProfile};

/// Reclassifies detected pauses with a fixed duration boundary.
fn fixed_threshold(pauses: &[DetectedPause], boundary: SimDuration) -> Vec<DetectedPause> {
    pauses
        .iter()
        .map(|p| DetectedPause {
            span: p.span,
            kind: if p.span.duration() >= boundary { PauseKind::Long } else { PauseKind::Short },
        })
        .collect()
}

fn a1_pause_classification() {
    let text = dictation(7, 8, 5);
    row("A1", "long-pause classification: adaptive context clustering vs fixed 250ms");
    row("A1", "profile  adaptive_prec  adaptive_recall  fixed_prec  fixed_recall");
    for (name, profile) in SpeakerProfile::named() {
        let (audio, transcript) = synthesize(&text, &profile, 17);
        let adaptive = PauseDetector::new().detect(&audio);
        let fixed = fixed_threshold(&adaptive, SimDuration::from_millis(250));
        let a = evaluate_pauses(&transcript, &adaptive);
        let f = evaluate_pauses(&transcript, &fixed);
        row(
            "A1",
            &format!(
                "{name:<7}  {:>13.3}  {:>15.3}  {:>10.3}  {:>12.3}",
                a.long_precision, a.long_recall, f.long_precision, f.long_recall
            ),
        );
    }
    row("A1", "note: the fixed rule mislabels sentence gaps (~400ms) as long on careful speakers;");
    row(
        "A1",
        "      the adaptive boundary follows each speaker's own gap distribution, as §2 requires",
    );
}

fn a2_miniature_factor() {
    let (xray, _) = xray_bitmap(5, 800, 600);
    let full_ink = xray.count_ink() as f64;
    row("A2", "miniature factor sweep over an 800x600 x-ray");
    row("A2", "factor  bytes  byte_shrink  coverage_gain");
    for factor in [2u32, 4, 8, 16, 32] {
        let mini = Miniature::build(&xray, factor);
        // Coverage gain: ink density relative to the full image after
        // area normalization — OR-downsampling keeps thin strokes visible,
        // so the value grows with the factor (>1 means strokes thickened
        // rather than lost).
        let retention =
            mini.raster().count_ink() as f64 * (factor as f64 * factor as f64) / full_ink;
        row(
            "A2",
            &format!(
                "{factor:>6}  {:>5}  {:>10.1}x  {:>12.2}",
                mini.byte_size(),
                xray.byte_size() as f64 / mini.byte_size() as f64,
                retention
            ),
        );
    }
}

fn a3_composition_dedup() {
    let payload = vec![0xCDu8; 32 * 1024];
    row("A3", "composition file: 6 references to one 32KB x-ray");
    let mut dedup = CompositionFile::new();
    for _ in 0..6 {
        dedup.append("xray", &payload);
    }
    let mut naive = CompositionFile::new();
    for _ in 0..6 {
        naive.append_anonymous(&payload);
    }
    row(
        "A3",
        &format!(
            "deduplicated {} bytes vs naive {} bytes ({}x saved)",
            dedup.len(),
            naive.len(),
            naive.len() / dedup.len()
        ),
    );
}

fn bench(c: &mut Criterion) {
    a1_pause_classification();
    a2_miniature_factor();
    a3_composition_dedup();

    let (xray, _) = xray_bitmap(5, 800, 600);
    let mut group = c.benchmark_group("ablation_miniature_build");
    for factor in [4u32, 16] {
        group.bench_with_input(BenchmarkId::new("build", factor), &factor, |b, &f| {
            b.iter(|| Miniature::build(&xray, f))
        });
    }
    group.finish();

    let text = dictation(7, 8, 5);
    let (audio, _) = synthesize(&text, &SpeakerProfile::CLEAR, 17);
    let pauses = PauseDetector::new().detect(&audio);
    let mut group = c.benchmark_group("ablation_pause_classify");
    group.bench_function("fixed_threshold_reclassify", |b| {
        b.iter(|| fixed_threshold(&pauses, SimDuration::from_millis(250)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
