//! Experiment E6 — miniature-first sequential browsing.
//!
//! "Miniatures of qualifying objects may be returned to the user using a
//! sequential browsing interface in order to facilitate browsing through a
//! large number of objects that may qualify." (§5) The series compares the
//! transfer volume and time of streaming miniatures for a result list
//! against shipping the full objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, mixed_archive, row, server_with};
use minos_net::Link;
use minos_presentation::Workstation;
use minos_types::ObjectId;

fn print_series() {
    row("E6", "archive of mixed reports/documents/maps; link = 10 Mbit/s Ethernet");
    row("E6", "hits  mini_bytes  mini_time  full_bytes  full_time  byte_ratio");
    for n in [4u64, 8, 16] {
        let (server, bases) = server_with(mixed_archive(n));
        let mut ws = Workstation::new(server, Link::ethernet());
        let ids: Vec<ObjectId> = bases.iter().map(|(id, _)| *id).collect();
        ws.miniature_stream(&ids).unwrap();
        let (mb, mt) = (ws.bytes_transferred(), ws.elapsed());
        ws.reset_accounting();
        for (id, base) in &bases {
            ws.fetch_object(*id, *base).unwrap();
        }
        let (fb, ft) = (ws.bytes_transferred(), ws.elapsed());
        row(
            "E6",
            &format!(
                "{:>4}  {mb:>10}  {mt:>9}  {fb:>10}  {ft:>9}  {:>9.1}x",
                ids.len(),
                fb as f64 / mb as f64
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e6_miniature_browsing");
    {
        let n = 8u64;
        let (server, bases) = server_with(mixed_archive(n));
        let ids: Vec<ObjectId> = bases.iter().map(|(id, _)| *id).collect();
        let mut ws = Workstation::new(server, Link::ethernet());
        group.bench_with_input(BenchmarkId::new("miniature_stream", n), &ids, |b, ids| {
            b.iter(|| ws.miniature_stream(ids).unwrap())
        });
        let (server, bases2) = server_with(mixed_archive(n));
        let mut ws_full = Workstation::new(server, Link::ethernet());
        group.bench_with_input(BenchmarkId::new("full_objects", n), &bases2, |b, bases| {
            b.iter(|| {
                for (id, base) in bases {
                    ws_full.fetch_object(*id, *base).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
