//! Experiment E8 — archival and mailing formation.
//!
//! Measures §4's formation pipeline: object sizes with archiver pointers
//! (shared data stored once) vs fully resolved mailed-outside forms, and
//! the cost of the offset-rebasing fixpoint and pointer resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use minos_bench::{fast_criterion, row};
use minos_object::{
    ArchivedObject, ArchiverRead, CompositionFile, DataKind, DataLocation, DescriptorEntry,
    DrivingMode, ObjectDescriptor,
};
use minos_storage::{Archiver, OpticalDisk, SharedArchiver};
use minos_types::{ByteSpan, ObjectId};

/// Builds an object sharing `shared_kb` KB of archiver-resident data
/// (referenced `refs` times) plus `local_kb` KB of local data.
fn object_with_sharing(shared_span: ByteSpan, refs: usize, local_kb: usize) -> ArchivedObject {
    let mut composition = CompositionFile::new();
    let local = vec![0x55u8; local_kb * 1024];
    let local_span = composition.append("body", &local);
    let mut entries = vec![DescriptorEntry {
        tag: "body".into(),
        kind: DataKind::Text,
        location: DataLocation::Composition(local_span),
    }];
    for i in 0..refs {
        entries.push(DescriptorEntry {
            tag: format!("xray-ref-{i}"),
            kind: DataKind::Image,
            location: DataLocation::Archiver(shared_span),
        });
    }
    ArchivedObject {
        descriptor: ObjectDescriptor {
            object_id: ObjectId::new(1),
            name: "mailer".into(),
            driving_mode: DrivingMode::Visual,
            attributes: vec![],
            entries,
        },
        composition,
    }
}

fn print_series() {
    // Plant 64 KB of shared data in an archiver.
    let mut archiver = Archiver::new(OpticalDisk::with_capacity(64 << 20));
    let (record, _) = archiver.store(ObjectId::new(99), &vec![0xAAu8; 64 * 1024]).unwrap();
    let shared = SharedArchiver::new(archiver);

    row("E8", "object: 16KB local body + N references to 64KB shared archiver data");
    row("E8", "refs  archived_bytes  mailed_inside  mailed_outside  sharing_saves");
    for refs in [1usize, 2, 4, 8] {
        let obj = object_with_sharing(record.span, refs, 16);
        let archived_len = obj.encode_for_archive(1 << 20).len();
        let inside_len = obj.mail_inside().len();
        let outside = obj.mail_outside(&shared).unwrap();
        let outside_len = outside.mail_inside().len();
        row(
            "E8",
            &format!(
                "{refs:>4}  {archived_bytes:>14}  {inside_len:>13}  {outside_len:>14}  {saves:>12}",
                archived_bytes = archived_len,
                saves = outside_len - inside_len,
            ),
        );
        // Shared data is appended once no matter how many references
        // (the few extra bytes are re-encoded descriptor varints).
        let grew = outside_len - inside_len;
        assert!((64 * 1024..64 * 1024 + 64).contains(&grew), "refs {refs}: grew {grew}");
    }
    row(
        "E8",
        "note: mailed-outside grows by exactly one copy of the shared data, independent of refs",
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut archiver = Archiver::new(OpticalDisk::with_capacity(64 << 20));
    let (record, _) = archiver.store(ObjectId::new(99), &vec![0xAAu8; 64 * 1024]).unwrap();
    let shared = SharedArchiver::new(archiver);
    let obj = object_with_sharing(record.span, 4, 16);

    let mut group = c.benchmark_group("e8_archival_mailing");
    group.bench_function("encode_for_archive", |b| b.iter(|| obj.encode_for_archive(123_456_789)));
    group.bench_function("decode_from_archive", |b| {
        let bytes = obj.encode_for_archive(123_456_789);
        b.iter(|| ArchivedObject::decode_from_archive(&bytes, 123_456_789).unwrap())
    });
    group.bench_function("mail_inside", |b| b.iter(|| obj.mail_inside()));
    group.bench_function("mail_outside_resolve", |b| b.iter(|| obj.mail_outside(&shared).unwrap()));
    group.bench_function("archiver_read_span", |b| {
        b.iter(|| shared.read_span(record.span).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
