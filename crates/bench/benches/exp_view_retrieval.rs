//! Experiment E5 — view retrieval vs whole-image retrieval.
//!
//! "When a view is defined on the representation image the system has to
//! transfer only the data of the view in main memory and not the whole
//! image." (§2) The series reports bytes moved and simulated latency for a
//! fixed 200×150 window against whole images of growing size; Criterion
//! times the workstation-side fetch path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row, server_with};
use minos_image::{Bitmap, Image};
use minos_net::Link;
use minos_object::{DrivingMode, MultimediaObject};
use minos_presentation::Workstation;
use minos_types::{ObjectId, Rect};

fn image_object(id: u64, side: u32) -> MultimediaObject {
    let mut obj = MultimediaObject::new(ObjectId::new(id), "big-image", DrivingMode::Visual);
    let mut bm = Bitmap::new(side, side);
    for i in 0..side as i32 {
        bm.set(i, i, true);
    }
    obj.images.push(Image::Bitmap(bm));
    obj.archive().unwrap();
    obj
}

fn print_series() {
    row("E5", "window = 200x150 px; link = 10 Mbit/s Ethernet; optical server");
    row("E5", "image_side  view_bytes  view_latency  full_bytes  full_latency  ratio");
    for side in [400u32, 800, 1_600] {
        let (server, _) = server_with(vec![image_object(1, side)]);
        let mut ws = Workstation::new(server, Link::ethernet());
        ws.fetch_view(ObjectId::new(1), 0, Rect::new(50, 50, 200, 150)).unwrap();
        let (vb, vt) = (ws.bytes_transferred(), ws.elapsed());
        ws.reset_accounting();
        ws.fetch_view(ObjectId::new(1), 0, Rect::new(0, 0, side, side)).unwrap();
        let (fb, ft) = (ws.bytes_transferred(), ws.elapsed());
        row(
            "E5",
            &format!(
                "{side:>10}  {vb:>10}  {vt:>12}  {fb:>10}  {ft:>12}  {:>5.1}x",
                fb as f64 / vb as f64
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e5_view_retrieval");
    for side in [800u32, 1_600] {
        let (server, _) = server_with(vec![image_object(1, side)]);
        let mut ws = Workstation::new(server, Link::ethernet());
        group.bench_with_input(BenchmarkId::new("window_200x150", side), &side, |b, _| {
            b.iter(|| ws.fetch_view(ObjectId::new(1), 0, Rect::new(50, 50, 200, 150)).unwrap())
        });
        let (server, _) = server_with(vec![image_object(1, side)]);
        let mut ws_full = Workstation::new(server, Link::ethernet());
        group.bench_with_input(BenchmarkId::new("whole_image", side), &side, |b, &s| {
            b.iter(|| ws_full.fetch_view(ObjectId::new(1), 0, Rect::new(0, 0, s, s)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
