//! Figure-regeneration benches: one group per figure pair of the paper.
//!
//! Each group times the code path that produces the figure's presentation,
//! after printing a one-line confirmation that the scenario reproduces
//! (the full behavioural assertions live in `tests/figures.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use minos_bench::{fast_criterion, row};
use minos_corpus as corpus;
use minos_presentation::process::ProcessRunner;
use minos_presentation::{BrowseCommand, BrowsingSession, TransparencyViewer};
use minos_screen::{render_page, Screen};
use minos_text::{LogicalLevel, PaginateConfig};
use minos_types::{ObjectId, SimDuration};
use std::collections::HashMap;

type Store = HashMap<ObjectId, minos_object::MultimediaObject>;

fn open(store: Store, id: u64, config: PaginateConfig) -> BrowsingSession<Store> {
    BrowsingSession::open(store, ObjectId::new(id), config, SimDuration::from_secs(5)).unwrap().0
}

fn bench(c: &mut Criterion) {
    // F1-F2: compose a full screen (page + menu) for the office document.
    let object = corpus::office_document(ObjectId::new(1), 7, 6);
    let images: Vec<minos_image::Bitmap> = object.images.iter().map(|i| i.render()).collect();
    let screen = Screen::new();
    let config =
        PaginateConfig { page_size: screen.display_region().size, margin: 24, block_gap: 10 };
    let mut store = Store::new();
    store.insert(object.id, object);
    let session = open(store.clone(), 1, config);
    row(
        "F1-F2",
        &format!(
            "office document: {} visual pages, {} menu options",
            session.visual_view().unwrap().page_count,
            session.menu().len()
        ),
    );
    {
        let mut g = c.benchmark_group("fig1_2_visual_pages");
        g.bench_function("compose_screen", |b| {
            b.iter(|| {
                let mut screen = Screen::new();
                let view = session.visual_view().unwrap();
                let page = render_page(&view.page, config, |i| images.get(i).cloned());
                screen.show(&page, screen.display_region());
                screen.show(&session.menu().render(screen.menu_region()), screen.menu_region());
                screen.framebuffer().count_ink()
            })
        });
        g.finish();
    }

    // F3-F4: page through the pinned-message region.
    let report = corpus::medical_report(ObjectId::new(2), 42);
    let small =
        PaginateConfig { page_size: minos_types::Size::new(560, 420), margin: 16, block_gap: 8 };
    let mut store2 = Store::new();
    store2.insert(report.id, report);
    {
        let mut s = open(store2.clone(), 2, small);
        s.apply(BrowseCommand::NextUnit(LogicalLevel::Chapter)).unwrap();
        row(
            "F3-F4",
            &format!(
                "pinned x-ray over {} pages of related text",
                s.visual_view().unwrap().page_count
            ),
        );
    }
    {
        let mut g = c.benchmark_group("fig3_4_pinned_message");
        g.bench_function("enter_and_page_through", |b| {
            b.iter(|| {
                let mut s = open(store2.clone(), 2, small);
                s.apply(BrowseCommand::NextUnit(LogicalLevel::Chapter)).unwrap();
                let n = s.visual_view().unwrap().page_count;
                for _ in 0..n {
                    s.apply(BrowseCommand::NextPage).unwrap();
                }
                s.visual_view().unwrap().pinned_message
            })
        });
        g.finish();
    }

    // F5-F6: transparency pages.
    let report2 = corpus::medical_report(ObjectId::new(3), 42);
    row(
        "F5-F6",
        &format!(
            "transparency set of {} sheets over the x-ray",
            report2.transparency_sets[0].sheets.len()
        ),
    );
    {
        let mut g = c.benchmark_group("fig5_6_transparencies");
        g.bench_function("turn_all_sheets", |b| {
            b.iter(|| {
                let mut v = TransparencyViewer::new(&report2, 0).unwrap();
                let mut ink = 0;
                for _ in 0..v.len() {
                    ink = v.next_page().unwrap().count_ink();
                }
                ink
            })
        });
        g.finish();
    }

    // F7-F8: select and return from a relevant object.
    let (parent, overlays) =
        corpus::subway_map_object(ObjectId::new(4), ObjectId::new(5), ObjectId::new(6), 11);
    let mut store3 = Store::new();
    store3.insert(parent.id, parent);
    for o in overlays {
        store3.insert(o.id, o);
    }
    row("F7-F8", "subway map with 2 relevant overlay objects");
    {
        let mut g = c.benchmark_group("fig7_8_relevant_objects");
        g.bench_function("select_and_return", |b| {
            b.iter(|| {
                let mut s = open(store3.clone(), 4, PaginateConfig::default());
                s.apply(BrowseCommand::SelectRelevant(0)).unwrap();
                s.apply(BrowseCommand::ReturnFromRelevant).unwrap();
                s.depth()
            })
        });
        g.finish();
    }

    // F9-F10: play the whole walk.
    let walk = corpus::city_walk_object(ObjectId::new(7), 3);
    row("F9-F10", &format!("city walk of {} narrated stops", walk.process_sims[0].steps.len()));
    {
        let mut g = c.benchmark_group("fig9_10_process_simulation");
        g.bench_function("play_whole_walk", |b| {
            b.iter(|| {
                let mut r = ProcessRunner::new(&walk, 0).unwrap();
                let mut events = 0;
                while r.state() != minos_presentation::ProcessState::Finished {
                    events += r.tick(SimDuration::from_secs(5)).len();
                }
                events
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
