//! Experiment E14 — goodput and audio tail latency under offered overload,
//! with and without admission control.
//!
//! N concurrent browsing sessions (session 0 audio-class) each pull 8
//! pages of 8 KB from the optical server over one shared 10 Mbit/s
//! Ethernet link, and every demand page tows three speculative
//! prefetches — a 4x offered load once the session count outruns the
//! device. The admitted run uses the default [`ServiceConfig`] caps
//! (per-connection and global bounds, prefetch-first shedding, `Busy`
//! rejections with a retry hint); the unbounded run queues everything.
//!
//! The claim under test: admission control sheds *speculation only* —
//! every demand page still completes, the queue high-water mark stays
//! under the configured cap, and the audio-class p99 stays bounded while
//! the unbounded baseline's tail grows with everything queued ahead of it.
//!
//! The series is emitted machine-readable as `BENCH_overload.json` at the
//! repository root. `--smoke` runs the acceptance pin — at 48 sessions the
//! admitted run sheds prefetch without a single demand rejection and beats
//! the unbounded audio p99 — and is hooked into `scripts/check.sh`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_presentation::sched::{simulate_overload_workload, OverloadReport};
use minos_server::ServiceConfig;

const PAGES: usize = 8;
const PAGE_LEN: u64 = 8192;

/// The E14 load axis: concurrent session counts.
const SESSIONS: [usize; 5] = [1, 4, 16, 48, 64];

/// The pinned operating point for the smoke acceptance run.
const SMOKE_SESSIONS: usize = 48;

fn run(sessions: usize, config: ServiceConfig) -> OverloadReport {
    simulate_overload_workload(sessions, PAGES, PAGE_LEN, config).expect("workload runs")
}

/// One measured point of the series: both disciplines at one session count.
struct Point {
    sessions: usize,
    admitted: OverloadReport,
    unbounded: OverloadReport,
}

fn measure_series() -> Vec<Point> {
    SESSIONS
        .iter()
        .map(|&sessions| Point {
            sessions,
            admitted: run(sessions, ServiceConfig::default()),
            unbounded: run(sessions, ServiceConfig::unbounded()),
        })
        .collect()
}

/// Writes the series as `BENCH_overload.json` at the repository root —
/// the machine-readable perf-trajectory record for this experiment.
fn emit_json(points: &[Point]) {
    let mut series = Vec::new();
    for p in points {
        series.push(format!(
            "    {{\n      \"sessions\": {},\n      \"admitted_goodput_pages_per_sec\": {:.4},\n      \
             \"unbounded_goodput_pages_per_sec\": {:.4},\n      \
             \"admitted_audio_p99_us\": {},\n      \"unbounded_audio_p99_us\": {},\n      \
             \"admitted_shed\": {},\n      \"admitted_busy_rejections\": {},\n      \
             \"admitted_queue_high_water\": {},\n      \"unbounded_queue_high_water\": {},\n      \
             \"admitted_allocs_per_page\": {:.4},\n      \"unbounded_allocs_per_page\": {:.4}\n    }}",
            p.sessions,
            p.admitted.goodput_pages_per_sec(),
            p.unbounded.goodput_pages_per_sec(),
            p.admitted.audio_p99.as_micros(),
            p.unbounded.audio_p99.as_micros(),
            p.admitted.shed,
            p.admitted.busy_rejections,
            p.admitted.queue_high_water,
            p.unbounded.queue_high_water,
            p.admitted.allocations_per_page(),
            p.unbounded.allocations_per_page(),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E14\",\n  \"workload\": \"N sessions x {PAGES} x {PAGE_LEN} B pages, \
         3 prefetches per demand page, session 0 audio-class, 10 Mbit/s Ethernet, optical server\",\n  \
         \"per_conn_cap\": {},\n  \"global_cap\": {},\n  \"series\": [\n{}\n  ]\n}}\n",
        ServiceConfig::DEFAULT_PER_CONN_CAP,
        ServiceConfig::DEFAULT_GLOBAL_CAP,
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    if let Err(e) = std::fs::write(path, json) {
        row("E14", &format!("could not write BENCH_overload.json: {e}"));
    } else {
        row("E14", "series written to BENCH_overload.json");
    }
}

fn print_series() {
    row(
        "E14",
        &format!("workload = N sessions x {PAGES} x 8 KB pages + 3x prefetch; shared Ethernet;"),
    );
    row(
        "E14",
        &format!(
            "admitted caps = {}/conn, {} global, prefetch-first shedding; vs unbounded queues",
            ServiceConfig::DEFAULT_PER_CONN_CAP,
            ServiceConfig::DEFAULT_GLOBAL_CAP
        ),
    );
    row(
        "E14",
        "sessions  adm_pg/s  unb_pg/s  adm_p99_ms  unb_p99_ms  shed  busy  adm_hw  unb_hw  alloc/pg",
    );
    let points = measure_series();
    for p in &points {
        row(
            "E14",
            &format!(
                "{:>8}  {:>8.1}  {:>8.1}  {:>10.2}  {:>10.2}  {:>4}  {:>4}  {:>6}  {:>6}  {:>8.3}",
                p.sessions,
                p.admitted.goodput_pages_per_sec(),
                p.unbounded.goodput_pages_per_sec(),
                p.admitted.audio_p99.as_micros() as f64 / 1_000.0,
                p.unbounded.audio_p99.as_micros() as f64 / 1_000.0,
                p.admitted.shed,
                p.admitted.busy_rejections,
                p.admitted.queue_high_water,
                p.unbounded.queue_high_water,
                p.admitted.allocations_per_page(),
            ),
        );
    }
    emit_json(&points);
}

fn smoke() {
    let admitted = run(SMOKE_SESSIONS, ServiceConfig::default());
    let unbounded = run(SMOKE_SESSIONS, ServiceConfig::unbounded());
    row(
        "E14",
        &format!(
            "smoke: {SMOKE_SESSIONS} sessions  admitted {:.1} pg/s p99 {:.2} ms (shed {})  \
             unbounded {:.1} pg/s p99 {:.2} ms (high water {})",
            admitted.goodput_pages_per_sec(),
            admitted.audio_p99.as_micros() as f64 / 1_000.0,
            admitted.shed,
            unbounded.goodput_pages_per_sec(),
            unbounded.audio_p99.as_micros() as f64 / 1_000.0,
            unbounded.queue_high_water,
        ),
    );
    // The acceptance pin: under the 4x offered load the shed policy turns
    // away speculation only — full demand goodput, zero demand/audio
    // rejections, the queue bounded by its cap — and the audio-class tail
    // beats the unbounded baseline's collapse.
    let want = (SMOKE_SESSIONS * PAGES) as u64;
    assert_eq!(admitted.pages, want, "every demand page completed: {admitted:?}");
    assert_eq!(unbounded.pages, want, "unbounded baseline also completes: {unbounded:?}");
    assert!(admitted.shed > 0, "overload actually shed prefetch: {admitted:?}");
    assert_eq!(admitted.busy_rejections, 0, "demand and audio never turned away: {admitted:?}");
    assert!(
        admitted.queue_high_water <= ServiceConfig::DEFAULT_GLOBAL_CAP as u64,
        "queue bounded by the global cap: {admitted:?}"
    );
    assert!(
        admitted.audio_p99 < unbounded.audio_p99,
        "audio p99 {:?} (admitted) must beat {:?} (unbounded)",
        admitted.audio_p99,
        unbounded.audio_p99
    );
    // The pooled-buffer pin: demand pages and the surviving speculative
    // fan-out all ride recycled buffers, so fresh payload allocations stay
    // at or under one per demand page even at 4x offered load.
    row(
        "E14",
        &format!(
            "smoke: admitted alloc/page {:.3} ({} allocs / {} pages)",
            admitted.allocations_per_page(),
            admitted.payload_allocs,
            admitted.pages
        ),
    );
    assert!(
        admitted.allocations_per_page() <= 1.0,
        "pooled buffers hold allocations at or under one per demand page: {:.3}",
        admitted.allocations_per_page()
    );
    // The full series is cheap (simulated time), so the machine-readable
    // artifact is always the complete five-point sweep.
    emit_json(&measure_series());
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e14_overload");
    for (label, config) in
        [("admitted", ServiceConfig::default()), ("unbounded", ServiceConfig::unbounded())]
    {
        group.bench_with_input(BenchmarkId::new(label, SMOKE_SESSIONS), &config, |b, cfg| {
            b.iter(|| run(SMOKE_SESSIONS, *cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
}
