//! Experiment E16 — aggregate goodput of a sharded object-server fleet,
//! and page survival across a mid-run member restart.
//!
//! M concurrent sessions each demand-page an object through one shared
//! 10 Mbit/s Ethernet link against a fleet of N object servers. Objects
//! are placed by rendezvous hashing (swept unreplicated and 2-way
//! replicated), and each object's pages spread across its replica set in
//! contiguous blocks — so every member's device works in parallel behind
//! the one wire without costing the optical head its seek locality.
//!
//! The claims under test: aggregate goodput scales near-linearly in N
//! while the devices are the bottleneck (the N=1 -> N=4 ratio at M=64 is
//! pinned at >= 3x) and flattens once the shared link saturates (N=8);
//! and a 2-way-replicated fleet survives one member restarting mid-run —
//! every demand page delivered byte-identical, the orphaned in-flight
//! pages replayed onto sibling replicas, and no `Busy` resubmission
//! leaving before its hint.
//!
//! The series is emitted machine-readable as `BENCH_fleet.json` at the
//! repository root. `--smoke` runs the acceptance pins and is hooked into
//! `scripts/check.sh`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_presentation::fleet::{
    simulate_fleet_workload, FleetReport, FleetRestart, FleetWorkloadConfig,
};
use minos_server::ServiceConfig;

const PAGES: usize = 8;
const PAGE_LEN: u64 = 32768;

/// The E16 fleet-size axis.
const MEMBERS: [usize; 4] = [1, 2, 4, 8];

/// The E16 concurrency axis.
const SESSIONS: [usize; 3] = [16, 64, 256];

/// The pinned operating point for the smoke acceptance run.
const SMOKE_SESSIONS: usize = 64;

/// Leading sessions per run that page at audio priority and are
/// latency-tracked for the audio p99 column.
const AUDIO_SESSIONS: usize = 8;

fn run(
    members: usize,
    replication: usize,
    sessions: usize,
    restart: Option<FleetRestart>,
) -> FleetReport {
    simulate_fleet_workload(FleetWorkloadConfig {
        members,
        replication,
        sessions,
        audio_sessions: AUDIO_SESSIONS,
        pages_per_session: PAGES,
        page_len: PAGE_LEN,
        restart,
        service: ServiceConfig::default(),
    })
    .expect("workload runs")
}

/// One measured point of the series.
struct Point {
    members: usize,
    replication: usize,
    sessions: usize,
    report: FleetReport,
}

/// The scaling sweep runs unreplicated (each member holds only its
/// rendezvous share, so its optical head stays in a compact span); the
/// multi-member fleets are then re-measured 2-way replicated at each
/// concurrency to price the redundancy — every member holds more objects,
/// so every access seeks farther.
fn measure_series() -> Vec<Point> {
    let mut points = Vec::with_capacity(2 * MEMBERS.len() * SESSIONS.len());
    for &members in &MEMBERS {
        for replication in [1, 2] {
            if replication > members {
                continue;
            }
            for &sessions in &SESSIONS {
                points.push(Point {
                    members,
                    replication,
                    sessions,
                    report: run(members, replication, sessions, None),
                });
            }
        }
    }
    points
}

/// The mid-run restart row: one member of a 4-member, 2-way-replicated
/// fleet crashes after a quarter of the pages have landed.
fn measure_restart() -> FleetReport {
    let after = (SMOKE_SESSIONS * PAGES) as u64 / 4;
    run(4, 2, SMOKE_SESSIONS, Some(FleetRestart { member: 1, after_pages: after }))
}

/// Writes the series as `BENCH_fleet.json` at the repository root — the
/// machine-readable perf-trajectory record for this experiment.
fn emit_json(points: &[Point], restart: &FleetReport) {
    let mut series = Vec::new();
    for p in points {
        series.push(format!(
            "    {{\n      \"members\": {},\n      \"replication\": {},\n      \
             \"sessions\": {},\n      \"goodput_pages_per_sec\": {:.4},\n      \
             \"elapsed_us\": {},\n      \"audio_p99_us\": {},\n      \
             \"busy_deferred\": {},\n      \
             \"served_per_member\": [{}]\n    }}",
            p.members,
            p.replication,
            p.sessions,
            p.report.goodput_pages_per_sec(),
            p.report.elapsed.as_micros(),
            p.report.audio_p99.as_micros(),
            p.report.busy_deferred,
            p.report.served_per_member.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", "),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E16\",\n  \"workload\": \"M sessions x {PAGES} x {PAGE_LEN} B \
         demand pages, rendezvous placement, k in (1, 2) copies per object, one shared \
         10 Mbit/s Ethernet, optical devices\",\n  \"series\": [\n{}\n  ],\n  \
         \"restart\": {{\n    \"members\": 4,\n    \"replication\": 2,\n    \"sessions\": \
         {SMOKE_SESSIONS},\n    \"restarted_member\": 1,\n    \"pages\": {},\n    \
         \"failovers\": {},\n    \"epoch_resyncs\": {},\n    \"replays\": {},\n    \
         \"busy_deferred\": {},\n    \"premature_busy_retries\": {}\n  }}\n}}\n",
        series.join(",\n"),
        restart.pages,
        restart.failovers,
        restart.epoch_resyncs,
        restart.replays,
        restart.busy_deferred,
        restart.premature_busy_retries,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    if let Err(e) = std::fs::write(path, json) {
        row("E16", &format!("could not write BENCH_fleet.json: {e}"));
    } else {
        row("E16", "series written to BENCH_fleet.json");
    }
}

fn print_series() {
    row(
        "E16",
        &format!(
            "workload = M sessions x {PAGES} x {} KB demand pages; rendezvous placement; \
             shared Ethernet; k copies per object",
            PAGE_LEN / 1024
        ),
    );
    row(
        "E16",
        "members  k  sessions  pages/s  elapsed_ms  audio_p99_ms  busy_deferred  \
         served_per_member",
    );
    let points = measure_series();
    for p in &points {
        row(
            "E16",
            &format!(
                "{:>7}  {}  {:>8}  {:>7.1}  {:>10.1}  {:>12.1}  {:>13}  {:?}",
                p.members,
                p.replication,
                p.sessions,
                p.report.goodput_pages_per_sec(),
                p.report.elapsed.as_micros() as f64 / 1_000.0,
                p.report.audio_p99.as_micros() as f64 / 1_000.0,
                p.report.busy_deferred,
                p.report.served_per_member,
            ),
        );
    }
    let restart = measure_restart();
    row(
        "E16",
        &format!(
            "restart row: 4 members k=2, member 1 down mid-run -> pages {} failovers {} \
             resyncs {} replays {}",
            restart.pages, restart.failovers, restart.epoch_resyncs, restart.replays
        ),
    );
    emit_json(&points, &restart);
}

fn smoke() {
    let solo = run(1, 1, SMOKE_SESSIONS, None);
    let quad = run(4, 2, SMOKE_SESSIONS, None);
    let ratio = quad.goodput_pages_per_sec() / solo.goodput_pages_per_sec();
    row(
        "E16",
        &format!(
            "smoke: {SMOKE_SESSIONS} sessions  N=1 {:.1} pg/s  N=4 k=2 {:.1} pg/s  ratio {:.2}",
            solo.goodput_pages_per_sec(),
            quad.goodput_pages_per_sec(),
            ratio
        ),
    );
    let want = (SMOKE_SESSIONS * PAGES) as u64;
    assert_eq!(solo.pages, want, "solo run completes: {solo:?}");
    assert_eq!(quad.pages, want, "quad run completes: {quad:?}");
    // The scaling pin: four members' devices behind one wire — objects
    // 2-way replicated, pages block-spread across each replica set —
    // deliver at least 3x the aggregate goodput of one member, at the
    // same concurrency.
    assert!(ratio >= 3.0, "N=1 -> N=4 goodput ratio {ratio:.2} fell below the 3x pin");
    // The failover pin: one member of the replicated fleet restarts
    // mid-run and every demand page still lands byte-identical (the
    // harness verifies bytes inline), with the orphans replayed onto
    // sibling replicas and no hint-violating resubmission.
    let restart = measure_restart();
    row(
        "E16",
        &format!(
            "smoke: restart row pages {} failovers {} resyncs {} replays {} premature {}",
            restart.pages,
            restart.failovers,
            restart.epoch_resyncs,
            restart.replays,
            restart.premature_busy_retries
        ),
    );
    assert_eq!(restart.pages, want, "no page lost to the restart: {restart:?}");
    assert!(restart.epoch_resyncs >= 1, "the restart was noticed: {restart:?}");
    assert!(restart.failovers > 0, "orphans re-aimed at siblings: {restart:?}");
    assert_eq!(
        restart.premature_busy_retries, 0,
        "no resubmission beat its retry hint: {restart:?}"
    );
    emit_json(&measure_series(), &restart);
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e16_fleet");
    for members in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("members", members), &members, |b, &members| {
            b.iter(|| run(members, members.min(2), SMOKE_SESSIONS, None))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--series") {
        print_series();
        return;
    }
    benches();
}
