//! Experiment E9 — descriptor-driven navigation.
//!
//! "The presentation manager uses the descriptor in order to navigate
//! through various parts of an object during browsing." (§4) The series
//! reports descriptor sizes and codec throughput as the part table grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minos_bench::{fast_criterion, row};
use minos_object::{DataKind, DataLocation, DescriptorEntry, DrivingMode, ObjectDescriptor};
use minos_types::{ByteSpan, ObjectId};

fn descriptor_with(entries: usize) -> ObjectDescriptor {
    ObjectDescriptor {
        object_id: ObjectId::new(7),
        name: "synthetic".into(),
        driving_mode: DrivingMode::Visual,
        attributes: vec![("author".into(), "bench".into())],
        entries: (0..entries)
            .map(|i| DescriptorEntry {
                tag: format!("part-{i}"),
                kind: match i % 3 {
                    0 => DataKind::Text,
                    1 => DataKind::Image,
                    _ => DataKind::Voice,
                },
                location: if i % 4 == 0 {
                    DataLocation::Archiver(ByteSpan::at(i as u64 * 100_000, 50_000))
                } else {
                    DataLocation::Composition(ByteSpan::at(i as u64 * 4_096, 4_096))
                },
            })
            .collect(),
    }
}

fn print_series() {
    row("E9", "entries  encoded_bytes  bytes_per_entry");
    for n in [4usize, 16, 64, 256, 1_024] {
        let bytes = descriptor_with(n).encode();
        row("E9", &format!("{n:>7}  {:>13}  {:>15.1}", bytes.len(), bytes.len() as f64 / n as f64));
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e9_descriptor");
    for n in [16usize, 256] {
        let desc = descriptor_with(n);
        let bytes = desc.encode();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &desc, |b, d| b.iter(|| d.encode()));
        group.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| ObjectDescriptor::decode(bytes).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rebase", n), &desc, |b, d| {
            b.iter(|| d.rebased_for_archive(1 << 30))
        });
        group.bench_with_input(BenchmarkId::new("entry_lookup", n), &desc, |b, d| {
            let tag = format!("part-{}", n - 1);
            b.iter(|| d.entry(&tag).unwrap().location.span())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
