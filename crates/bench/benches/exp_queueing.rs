//! Experiment E7 — server queueing delays.
//!
//! "Performance may be crucial due to queueing delays that may be
//! experienced when several users try to access data from the same
//! device." (§5) The series sweeps concurrent users against the optical
//! device under FCFS and elevator scheduling, and shows the magnetic-class
//! cache flattening repeated access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minos_bench::{fast_criterion, row};
use minos_storage::sched::mean_response;
use minos_storage::{
    simulate_schedule, BlockCache, BlockDevice, MagneticDisk, OpticalDisk, Request, SchedPolicy,
};
use minos_types::{ByteSpan, SimInstant};

fn loaded_optical() -> OpticalDisk {
    let mut d = OpticalDisk::with_capacity(128 << 20);
    d.append(&vec![0u8; 64 << 20]).unwrap();
    d
}

/// `users` users each issuing 4 object reads of 64 KB, arrivals spread over
/// one second — a busy browsing minute compressed.
fn workload(users: u64) -> Vec<Request> {
    (0..users * 4)
        .map(|i| Request {
            id: i,
            arrival: SimInstant::from_micros((i % users) * 1_000_000 / users.max(1)),
            span: ByteSpan::at((i * 7919 * 8192) % (60 << 20), 64 << 10),
        })
        .collect()
}

fn print_series() {
    row("E7", "workload: 4 x 64KB reads per user, arrivals within 1s; optical archiver");
    row("E7", "users  fcfs_mean_response  elevator_mean_response  elevator_gain");
    for users in [1u64, 2, 4, 8, 16, 32] {
        let reqs = workload(users);
        let mut d = loaded_optical();
        let fcfs = mean_response(&simulate_schedule(&mut d, &reqs, SchedPolicy::Fcfs).unwrap());
        let mut d = loaded_optical();
        let elevator =
            mean_response(&simulate_schedule(&mut d, &reqs, SchedPolicy::Elevator).unwrap());
        row(
            "E7",
            &format!(
                "{users:>5}  {fcfs:>18}  {elevator:>22}  {:>12.2}x",
                fcfs.as_secs_f64() / elevator.as_secs_f64().max(1e-9)
            ),
        );
    }

    // Cache configuration: hot-set rereads through a memory cache vs raw
    // optical access (the magnetic-staging effect).
    row("E7", "cache: 32 x 64KB blocks; hot set of 8 objects reread 10 times");
    let mut raw = loaded_optical();
    let mut raw_total = minos_types::SimDuration::ZERO;
    for round in 0..10u64 {
        for i in 0..8u64 {
            let span = ByteSpan::at(i * (1 << 20), 64 << 10);
            let (_, t) = raw.read_at(span).unwrap();
            raw_total += t;
            let _ = round;
        }
    }
    let mut cached = BlockCache::new(loaded_optical(), 64 << 10, 32);
    let mut cached_total = minos_types::SimDuration::ZERO;
    for _ in 0..10u64 {
        for i in 0..8u64 {
            let span = ByteSpan::at(i * (1 << 20), 64 << 10);
            let (_, t) = cached.read_at(span).unwrap();
            cached_total += t;
        }
    }
    row(
        "E7",
        &format!(
            "uncached_total {raw_total}  cached_total {cached_total}  hit_ratio {:.2}  speedup {:.1}x",
            cached.hit_ratio(),
            raw_total.as_secs_f64() / cached_total.as_secs_f64().max(1e-9)
        ),
    );

    // Magnetic vs optical single-stream baseline.
    let mut m = MagneticDisk::with_capacity(128 << 20);
    m.append(&vec![0u8; 64 << 20]).unwrap();
    let (_, tm) = m.read_at(ByteSpan::at(10 << 20, 256 << 10)).unwrap();
    let mut o = loaded_optical();
    let (_, to) = o.read_at(ByteSpan::at(10 << 20, 256 << 10)).unwrap();
    row("E7", &format!("single 256KB read: magnetic {tm}  optical {to}"));
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e7_schedule_simulation");
    for users in [8u64, 32] {
        let reqs = workload(users);
        group.bench_with_input(BenchmarkId::new("fcfs", users), &reqs, |b, reqs| {
            b.iter(|| {
                let mut d = loaded_optical();
                simulate_schedule(&mut d, reqs, SchedPolicy::Fcfs).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("elevator", users), &reqs, |b, reqs| {
            b.iter(|| {
                let mut d = loaded_optical();
                simulate_schedule(&mut d, reqs, SchedPolicy::Elevator).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench
}
criterion_main!(benches);
